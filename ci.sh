#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI OK"
