#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== crash-recovery simulation =="
# `cargo test --workspace` above already ran the sim crate's default sweep
# (every systematic crash point + 200 seeded random schedules). This narrow
# re-run is the fixed-seed smoke a quick pre-push uses: any failure prints
# the exact SIM_SEEDS reproduction command for the offending seed.
SIM_SEEDS=0..8 cargo test -q -p sim --test random_schedules

echo "== golden traces =="
# Explicit drift gate: the committed span trees and the EXPLAIN renders under
# tests/golden/ are a contract — including the access-path surface
# (explain_indexed_join pins the access=probe span note and the per-database
# "access path" cost lines). Regenerate intentionally with UPDATE_GOLDEN=1.
cargo test -q --test t1_trace_golden
cargo test -q --test fault_tolerance recovery_trace_is_golden

echo "== access-path equivalence =="
# Narrow re-run of the index oracle: indexed probes must answer exactly like
# the reference scan, before and after aborted DML (the workspace pass above
# already ran it; this names it so a failure is unmistakable).
cargo test -q -p ldbs --test index_equivalence

echo "== lock-manager stress matrix =="
# The seeded lock/deadlock stress schedules under increasing thread counts:
# invariants (no lost locks, no lost updates, every cycle broken) must hold
# whether contention is light or heavily oversubscribed on this host.
for n in 2 4 8; do
    echo "--  $n worker threads"
    LOCK_STRESS_THREADS=$n cargo test -q -p ldbs --test lock_stress
done

echo "== concurrency oracle =="
# Named re-run of the serializability check: 120 seeded two-session
# schedules, each final state must equal some serial statement order (the
# workspace pass above already ran it; a failure here is unmistakable).
cargo test -q --test concurrency_oracle

echo "== wire differential =="
# The binary codec equivalence gate: the Q1–Q4 + join + fault-schedule suite
# must be observably identical under text and binary framing, and the codec
# property/robustness suites (roundtrips for every proto variant, truncation/
# bit-flip rejection) must hold. The workspace pass above already ran these;
# naming them makes a codec regression unmistakable.
cargo test -q --test wire_differential
cargo test -q -p mdbs --test codec_proptests
cargo test -q -p mdbs --test codec_robustness

echo "== planner oracle =="
# The cost-based planner equivalence gate: for random data, random
# fresh/stale/absent statistics and random predicate shapes, the costed
# distributed plan must return exactly the rows of the statistics-free
# heuristic plan. The ANALYZE lifecycle suite (statement routing, GDD stats
# cache fetch/hit/invalidate, EXPLAIN estimates) rides along.
cargo test -q --test planner_oracle
cargo test -q --test analyze_stats

echo "== aggregate oracle =="
# The aggregate/top-k pushdown equivalence gate: for random data (empty
# groups, all-NULL columns, empty sites, single-site degenerates), a query
# with pushdown on must return exactly the rows of the same query with
# pushdown off AND of an independent plain-Rust reference evaluator.
cargo test -q --test aggregate_oracle

echo "== bench smoke (--test mode) =="
# Every benchmark payload must still execute; no timing sweep. This includes
# b9_cross_join, b10_local_index, b11_concurrency, b12_wire_codec,
# b13_planner and b14_aggregate, whose smoke passes also refresh
# BENCH_cross_join.json, BENCH_local_index.json, BENCH_concurrency.json,
# BENCH_wire_codec.json, BENCH_planner.json and BENCH_aggregate.json (the
# b12, b13 and b14 smokes assert their ≥2x reductions inline).
cargo bench --workspace -- --test

echo "CI OK"
