#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== golden traces =="
# Explicit drift gate: the committed span trees and the EXPLAIN render under
# tests/golden/ are a contract. Regenerate intentionally with UPDATE_GOLDEN=1.
cargo test -q --test t1_trace_golden

echo "== bench smoke (--test mode) =="
# Every benchmark payload must still execute; no timing sweep. This includes
# b9_cross_join, whose smoke pass also refreshes BENCH_cross_join.json.
cargo bench --workspace -- --test

echo "CI OK"
