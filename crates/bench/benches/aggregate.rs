//! Experiment B14 — distributed aggregation and top-k pushdown.
//!
//! A 2-site star join: `db0.fact` holds `fact_rows` rows (join key spread
//! over 50 dimension codes, group key `g = i % 10`), `db1.dim` holds the 50
//! dimension rows. A GROUP BY over the join collapses to at most 10 output
//! groups, so shipping per-group partial states instead of full partials
//! cuts the wire volume roughly by the fact cardinality over the group
//! count. The pure-product top-k ships at most `LIMIT` rows per site
//! instead of both full tables.
//!
//! `write_summary` records the sweep to `BENCH_aggregate.json` and asserts
//! the headline claim: the pushed plans ship at most half the bytes of the
//! ship-everything plans at every size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use mdbs::Federation;
use netsim::Network;
use std::hint::black_box;
use std::time::Instant;

/// Decomposable GROUP BY over the equi-join: 10 output groups whatever the
/// fact cardinality.
const GROUP_QUERY: &str = "SELECT f.g, COUNT(*), SUM(f.v), MIN(d.w)
     FROM db0.fact f, db1.dim d WHERE f.k = d.code GROUP BY f.g";

/// Pure-product top-k: no cross-database predicate, so each site ships at
/// most 10 rows instead of its whole table.
const TOPK_QUERY: &str = "SELECT f.v, d.w FROM db0.fact f, db1.dim d
     ORDER BY f.v DESC, d.w LIMIT 10";

/// Two sites: `db0.fact` with `fact_rows` rows over 50 join keys and 10
/// groups, `db1.dim` with the 50 dimension rows.
fn star_federation(fact_rows: usize) -> Federation {
    let mut fed = Federation::with_network(Network::new());
    let mut e0 = Engine::new("svc0", DbmsProfile::oracle_like());
    e0.create_database("db0").unwrap();
    e0.execute("db0", "CREATE TABLE fact (k INT, g INT, v INT)").unwrap();
    for r in 0..fact_rows {
        e0.execute("db0", &format!("INSERT INTO fact VALUES ({}, {}, {r})", r % 50, r % 10))
            .unwrap();
    }
    let mut e1 = Engine::new("svc1", DbmsProfile::oracle_like());
    e1.create_database("db1").unwrap();
    e1.execute("db1", "CREATE TABLE dim (code INT, w INT)").unwrap();
    for r in 0..50 {
        e1.execute("db1", &format!("INSERT INTO dim VALUES ({r}, {})", r * 3)).unwrap();
    }
    fed.add_service("svc0", "site0", e0).unwrap();
    fed.add_service("svc1", "site1", e1).unwrap();
    fed.execute("IMPORT DATABASE db0 FROM SERVICE svc0").unwrap();
    fed.execute("IMPORT DATABASE db1 FROM SERVICE svc1").unwrap();
    fed.execute("USE db0 db1").unwrap();
    fed
}

fn pushdown_federation(fact_rows: usize, pushed: bool) -> Federation {
    let mut fed = star_federation(fact_rows);
    fed.agg_pushdown = pushed;
    fed
}

/// Sums every `lam.bytes{db=…}` counter: partial/global payload bytes
/// shipped back from the sites.
fn shipped_bytes(fed: &Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes{"))
        .map(|(_, v)| *v)
        .sum()
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("b14_aggregate");
    group.sample_size(10);
    for fact_rows in [1000usize, 10000] {
        for pushed in [true, false] {
            let mut fed = pushdown_federation(fact_rows, pushed);
            let label = if pushed { "pushed" } else { "unpushed" };
            group.bench_with_input(
                BenchmarkId::new(format!("group_by/{label}"), fact_rows),
                &fact_rows,
                |b, _| b.iter(|| black_box(fed.execute(GROUP_QUERY).unwrap())),
            );
        }
    }
    group.finish();
}

/// One full sweep over both query shapes, recorded as JSON; asserts the ≥2×
/// byte reduction that motivates the pushdown.
fn write_summary(_c: &mut Criterion) {
    let mut sections = Vec::new();
    for (name, query) in [("group_by", GROUP_QUERY), ("topk", TOPK_QUERY)] {
        let mut sweep = Vec::new();
        for fact_rows in [1000usize, 10000] {
            let mut bytes = [0u64; 2];
            let mut ms = [0f64; 2];
            let mut rows = [0usize; 2];
            for (slot, pushed) in [(0, true), (1, false)] {
                let mut fed = pushdown_federation(fact_rows, pushed);
                fed.execute(query).unwrap(); // warm connections
                let baseline = shipped_bytes(&fed);
                let t = Instant::now();
                let out = fed.execute(query).unwrap().into_table().unwrap();
                ms[slot] = t.elapsed().as_secs_f64() * 1000.0;
                bytes[slot] = shipped_bytes(&fed) - baseline;
                rows[slot] = out.rows.len();
            }
            assert_eq!(rows[0], rows[1], "pushed and unpushed plans must agree ({name})");
            assert!(
                bytes[0] * 2 <= bytes[1],
                "{name}: pushed plan should ship at most half the bytes: {} vs {} at \
                 {fact_rows} rows",
                bytes[0],
                bytes[1]
            );
            sweep.push(format!(
                "      {{\"fact_rows\": {fact_rows}, \"pushed_bytes\": {}, \
                 \"unpushed_bytes\": {}, \"pushed_ms\": {:.2}, \"unpushed_ms\": {:.2}}}",
                bytes[0], bytes[1], ms[0], ms[1]
            ));
        }
        sections.push(format!("    \"{name}\": [\n{}\n    ]", sweep.join(",\n")));
    }
    let json = format!(
        "{{\n  \"bench\": \"b14_aggregate\",\n  \"pushdown\": {{\n{}\n  }}\n}}\n",
        sections.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_aggregate.json");
    std::fs::write(path, &json).unwrap();
    println!("b14_aggregate: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aggregate, write_summary
}
criterion_main!(benches);
