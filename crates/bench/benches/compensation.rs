//! Experiment B4 — 2PC rollback vs. compensation on the abort path.
//!
//! Both mechanisms undo a vital member after a sibling aborts (the §3.3
//! scenario). 2PC rollback discards a prepared transaction; compensation
//! executes a user-supplied inverse statement against already-committed
//! state. Expected shape: compensation costs an extra statement execution,
//! so its abort path is somewhat slower — the price of admitting
//! autocommit-only participants.

use bench::workloads::uniform_latency;
use criterion::{criterion_group, criterion_main, Criterion};
use ldbs::profile::DbmsProfile;
use mdbs::Federation;
use netsim::Network;
use std::hint::black_box;

/// db0 is the member under test; db1 always fails, forcing the abort path.
fn federation(db0_profile: DbmsProfile) -> Federation {
    let net = Network::new();
    uniform_latency(&net, 1);
    let mut fed = Federation::with_network(net);
    fed.add_service("svc0", "site0", bench::workloads::airline_engine(0, 50, db0_profile)).unwrap();
    fed.add_service(
        "svc1",
        "site1",
        bench::workloads::airline_engine(1, 50, DbmsProfile::oracle_like()),
    )
    .unwrap();
    fed.execute("IMPORT DATABASE db0 FROM SERVICE svc0").unwrap();
    fed.execute("IMPORT DATABASE db1 FROM SERVICE svc1").unwrap();
    fed.engine("svc1").unwrap().lock().failure_policy_mut().fail_writes_to("flights");
    fed.execute("USE db0 VITAL db1 VITAL").unwrap();
    fed
}

fn bench_abort_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_abort_path");
    group.sample_size(10);

    // 2PC member: prepared then rolled back.
    let mut fed_2pc = federation(DbmsProfile::oracle_like());
    group.bench_function("rollback_2pc", |b| {
        b.iter(|| {
            let r = fed_2pc
                .execute("UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'")
                .unwrap()
                .into_update()
                .unwrap();
            assert!(!r.success);
            black_box(r)
        })
    });

    // Autocommit-only member: committed then compensated.
    let mut fed_comp = federation(DbmsProfile::autocommit_only());
    group.bench_function("compensation", |b| {
        b.iter(|| {
            let r = fed_comp
                .execute(
                    "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'
                     COMP db0
                     UPDATE flights SET rate = rate / 1.1 WHERE source = 'Houston'",
                )
                .unwrap()
                .into_update()
                .unwrap();
            assert!(!r.success);
            black_box(r)
        })
    });

    group.finish();
}

fn bench_happy_paths(c: &mut Criterion) {
    // For contrast: the success path with the same profiles (no failures).
    let mut group = c.benchmark_group("b4_success_path");
    group.sample_size(10);

    let build = |profile: DbmsProfile| {
        let net = Network::new();
        uniform_latency(&net, 1);
        let mut fed = Federation::with_network(net);
        fed.add_service("svc0", "site0", bench::workloads::airline_engine(0, 50, profile)).unwrap();
        fed.execute("IMPORT DATABASE db0 FROM SERVICE svc0").unwrap();
        fed.execute("USE db0 VITAL").unwrap();
        fed
    };

    let mut fed_2pc = build(DbmsProfile::oracle_like());
    group.bench_function("prepared_commit", |b| {
        b.iter(|| {
            black_box(
                fed_2pc.execute("UPDATE flights SET rate = rate WHERE source = 'Houston'").unwrap(),
            )
        })
    });

    let mut fed_auto = build(DbmsProfile::autocommit_only());
    group.bench_function("autocommit_with_unused_comp", |b| {
        b.iter(|| {
            black_box(
                fed_auto
                    .execute(
                        "UPDATE flights SET rate = rate WHERE source = 'Houston'
                         COMP db0
                         UPDATE flights SET rate = rate WHERE source = 'Houston'",
                    )
                    .unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_abort_paths, bench_happy_paths
}
criterion_main!(benches);
