//! Experiment B11 — multi-session federation throughput.
//!
//! N independent sessions on one shared federation core each drive a mixed
//! statement stream — two multidatabase selects (Q1-shaped) and one
//! non-vital multidatabase update (Q2-shaped, autocommitted per site) — and
//! we measure aggregate statements/second plus per-statement p50/p99
//! latency. The network carries a uniform 1 ms link latency, the regime the
//! paper's federation actually lives in: a single session spends most of a
//! statement waiting on LAM round trips, so concurrent sessions overlap
//! their waiting and aggregate throughput rises with session count. The
//! acceptance bar is ≥2x qps at 4 sessions vs 1. (With a zero-latency
//! fabric on a single-core host the workload is pure CPU and qps is flat by
//! construction — that configuration measures the scheduler, not the
//! federation.)
//!
//! Vital (2PC) updates are deliberately absent from the mix: under
//! table-granular locks two concurrent vital updates on the same tables
//! form a cross-engine hold-and-wait that only the `lock_wait_timeout`
//! backstop breaks, which measures the timeout, not the federation.
//!
//! `write_summary` records the 1/2/4-session sweep to
//! `BENCH_concurrency.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::Federation;
use netsim::{LatencyModel, Network};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One-way link flight time for every hop in the simulated fabric.
const LINK_LATENCY: Duration = Duration::from_millis(1);

/// The paper federation on a fabric with real flight time.
fn bench_federation() -> Federation {
    let net = Network::new();
    net.set_latency(LatencyModel::uniform(LINK_LATENCY));
    paper_federation_with(net, FederationProfiles::default())
}

/// The mixed per-session statement stream. Every statement carries its own
/// `USE` scope, so sessions need no setup and never share scope state.
const MIX: [&str; 4] = [
    // Q1-shaped: three heterogeneous flight databases, outer-joined columns.
    "USE continental delta united
     SELECT day, ~rate% FROM flight% WHERE sour% = 'Houston'",
    // Q1 §2: two rental databases through a LET alias table.
    "USE avis national
     LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
     SELECT %code, type, ~rate FROM car WHERE status = 'available'",
    // Same shape, different predicate selectivity.
    "USE continental delta united
     SELECT day, ~rate% FROM flight% WHERE dest% = 'San Antonio'",
    // Q2-shaped non-vital update: each site runs and commits independently.
    "USE continental delta united
     UPDATE flight% SET rate% = rate% + 1
     WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
];

/// Runs `iters` passes of the mix on each of `sessions` concurrent session
/// threads against `fed`. Returns (wall seconds, per-statement micros).
fn drive(fed: &Federation, sessions: usize, iters: usize) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let samples = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let mut session = fed.session();
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(iters * MIX.len());
                    for _ in 0..iters {
                        for stmt in MIX {
                            let t = Instant::now();
                            black_box(session.execute(stmt).expect("statement failed"));
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("session thread panicked"));
        }
        all
    });
    (start.elapsed().as_secs_f64(), samples)
}

fn bench_session_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("b11_concurrency");
    group.sample_size(10);
    for sessions in [1usize, 4] {
        let fed = bench_federation();
        group.bench_with_input(BenchmarkId::new("mix", sessions), &sessions, |b, &n| {
            b.iter(|| drive(&fed, n, 2));
        });
    }
    group.finish();
}

/// The recorded sweep: fresh federation per session count, fixed per-session
/// work, aggregate qps and latency quantiles.
fn write_summary(_c: &mut Criterion) {
    const ITERS: usize = 60;
    let mut rows = Vec::new();
    let mut qps_by_sessions = Vec::new();
    for sessions in [1usize, 2, 4] {
        let fed = bench_federation();
        // Warm the catalogs and code paths once.
        drive(&fed, sessions, 2);
        let (wall, mut lat) = drive(&fed, sessions, ITERS);
        lat.sort_unstable();
        let statements = lat.len();
        let qps = statements as f64 / wall;
        qps_by_sessions.push((sessions, qps));
        rows.push(format!(
            "    {{\"sessions\": {sessions}, \"statements\": {statements}, \
             \"wall_s\": {wall:.3}, \"qps\": {qps:.0}, \"p50_us\": {}, \"p99_us\": {}}}",
            obs::quantile(&lat, 0.5),
            obs::quantile(&lat, 0.99),
        ));
    }
    let qps1 = qps_by_sessions[0].1;
    let qps4 = qps_by_sessions.last().unwrap().1;
    let json = format!(
        "{{\n  \"bench\": \"b11_concurrency\",\n  \"mix\": \"3 multidatabase selects + 1 \
         non-vital multidatabase update per pass\",\n  \"sweep\": [\n{}\n  ],\n  \
         \"speedup_4_vs_1\": {:.2}\n}}\n",
        rows.join(",\n"),
        qps4 / qps1
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_concurrency.json");
    std::fs::write(path, &json).unwrap();
    println!("b11_concurrency: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_session_mix, write_summary
}
criterion_main!(benches);
