//! Experiment B9 — the cross-database join fast path.
//!
//! Three questions, matching the three layers of the join optimisation:
//!
//! * does parallel partial dispatch keep the wall clock at ≈1 link latency
//!   regardless of the number of sites (vs. ≈N·L serial)?
//! * does the semi-join reduction ship measurably fewer partial-result bytes
//!   as the per-site row count grows?
//! * what does the 2-site hash equi-join cost end to end as rows scale?
//!
//! Besides the criterion groups, `write_summary` records one machine-readable
//! sweep to `BENCH_cross_join.json` at the repo root so the perf trajectory
//! accumulates across runs.

use bench::workloads::{scaled_federation_on, scaled_use, uniform_latency};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use mdbs::Federation;
use netsim::Network;
use std::hint::black_box;
use std::time::Instant;

/// 2-site equi join: `db0` keeps a selective local predicate so it becomes
/// the semi-join reducer, `db1` ships either everything (off) or only the
/// matching keys (on).
fn two_site_query() -> String {
    "SELECT a.flnu, b.rate FROM db0.flights a, db1.flights b
     WHERE a.flnu = b.flnu AND a.source = 'Houston' ORDER BY a.flnu"
        .to_string()
}

/// N-site chain join with a per-site selective predicate, so partials and
/// the coordinator product stay tiny and the sweep measures dispatch
/// latency, not local join work.
fn chain_query(n: usize) -> String {
    let mut from = Vec::with_capacity(n);
    let mut wher = Vec::new();
    for i in 0..n {
        from.push(format!("db{i}.flights t{i}"));
        wher.push(format!("t{i}.flnu < 3"));
        if i > 0 {
            wher.push(format!("t{}.flnu = t{i}.flnu", i - 1));
        }
    }
    format!(
        "SELECT t0.flnu, t0.rate FROM {} WHERE {} ORDER BY t0.flnu",
        from.join(", "),
        wher.join(" AND ")
    )
}

fn federation(n: usize, rows: usize, latency_ms: u64) -> Federation {
    let net = Network::new();
    if latency_ms > 0 {
        uniform_latency(&net, latency_ms);
    }
    let mut fed = scaled_federation_on(net, n, rows, DbmsProfile::oracle_like());
    fed.execute(&scaled_use(n, 0)).unwrap();
    fed
}

/// Sums every `lam.bytes{db=…}` counter: the partial/global payload bytes
/// shipped back from the sites.
fn shipped_bytes(fed: &Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes{"))
        .map(|(_, v)| *v)
        .sum()
}

fn saved_bytes(fed: &Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes_saved{"))
        .map(|(_, v)| *v)
        .sum()
}

fn bench_rows_sweep(c: &mut Criterion) {
    // 2 sites, hash equi-join at the coordinator, semijoin on vs. off.
    let mut group = c.benchmark_group("b9_cross_join_rows");
    group.sample_size(10);
    for rows in [20usize, 80, 320] {
        for semijoin in [true, false] {
            let mut fed = federation(2, rows, 0);
            fed.semijoin = semijoin;
            let query = two_site_query();
            let label = if semijoin { "semijoin" } else { "full" };
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| black_box(fed.execute(&query).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_site_sweep(c: &mut Criterion) {
    // Growing fan-out under a uniform per-link latency: parallel dispatch
    // should stay ≈1 link latency while serial grows ≈N·L.
    let mut group = c.benchmark_group("b9_cross_join_sites");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        for parallel in [true, false] {
            let mut fed = federation(n, 20, 3);
            fed.parallel = parallel;
            let query = chain_query(n);
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(fed.execute(&query).unwrap()))
            });
        }
    }
    group.finish();
}

/// One full sweep, recorded as JSON so successive runs can be compared.
fn write_summary(_c: &mut Criterion) {
    let mut dispatch = Vec::new();
    for n in [2usize, 4, 8] {
        let mut elapsed = [0f64; 2];
        for (slot, parallel) in [(0, true), (1, false)] {
            let mut fed = federation(n, 20, 3);
            fed.parallel = parallel;
            let query = chain_query(n);
            fed.execute(&query).unwrap(); // warm connections
            let t = Instant::now();
            let out = fed.execute(&query).unwrap();
            elapsed[slot] = t.elapsed().as_secs_f64() * 1000.0;
            black_box(out);
        }
        dispatch.push(format!(
            "    {{\"sites\": {n}, \"parallel_ms\": {:.2}, \"serial_ms\": {:.2}}}",
            elapsed[0], elapsed[1]
        ));
    }

    let mut reduction = Vec::new();
    for rows in [20usize, 80, 320] {
        let mut bytes = [0u64; 2];
        let mut saved = 0u64;
        for (slot, semijoin) in [(0, true), (1, false)] {
            let mut fed = federation(2, rows, 0);
            fed.semijoin = semijoin;
            fed.execute(&two_site_query()).unwrap();
            bytes[slot] = shipped_bytes(&fed);
            if semijoin {
                saved = saved_bytes(&fed);
            }
        }
        reduction.push(format!(
            "    {{\"rows_per_site\": {rows}, \"semijoin_bytes\": {}, \"full_bytes\": {}, \"bytes_saved\": {saved}}}",
            bytes[0], bytes[1]
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"b9_cross_join\",\n  \"dispatch\": [\n{}\n  ],\n  \"semijoin\": [\n{}\n  ]\n}}\n",
        dispatch.join(",\n"),
        reduction.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cross_join.json");
    std::fs::write(path, &json).unwrap();
    println!("b9_cross_join: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rows_sweep, bench_site_sweep, write_summary
}
criterion_main!(benches);
