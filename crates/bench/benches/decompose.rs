//! Experiment B2 — query-graph decomposition vs. join width.
//!
//! Decomposes cross-database joins of growing width (K tables in K
//! databases) into largest local subqueries plus the modified global query.
//! Expected shape: roughly linear in the number of join terms/conjuncts.

use bench::workloads::synthetic_gdd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs::scope::SessionScope;
use mdbs::translate::decompose;
use msql_lang::{parse_statement, QueryBody, Select, Statement};
use std::hint::black_box;

fn scope_over(n: usize) -> SessionScope {
    let mut scope = SessionScope::new();
    let names: Vec<String> = (0..n).map(|i| format!("db{i}")).collect();
    let Statement::Use(u) = parse_statement(&format!("USE {}", names.join(" "))).unwrap() else {
        unreachable!()
    };
    scope.apply_use(&u).unwrap();
    scope
}

/// A chain join over K databases with one local predicate per table:
/// `SELECT t0.flnu, ... FROM db0.flights0 t0, db1.flights0 t1, ...
///  WHERE t0.rate = t1.rate AND ... AND t_i.source = 'Houston' ...`
fn chain_join(k: usize) -> Select {
    let mut from = Vec::new();
    let mut items = Vec::new();
    let mut conjuncts = Vec::new();
    for i in 0..k {
        from.push(format!("db{i}.flights0 t{i}"));
        items.push(format!("t{i}.flnu"));
        conjuncts.push(format!("t{i}.source = 'Houston'"));
        if i > 0 {
            conjuncts.push(format!("t{}.rate = t{i}.rate", i - 1));
        }
    }
    let sql = format!(
        "SELECT {} FROM {} WHERE {}",
        items.join(", "),
        from.join(", "),
        conjuncts.join(" AND ")
    );
    let Statement::Query(q) = parse_statement(&sql).unwrap() else { unreachable!() };
    let QueryBody::Select(sel) = q.body else { unreachable!() };
    sel
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_decompose");
    for k in [2usize, 4, 8, 16] {
        let gdd = synthetic_gdd(k, 1, 8);
        let scope = scope_over(k);
        let sel = chain_join(k);
        group.bench_with_input(BenchmarkId::new("join_width", k), &k, |b, _| {
            b.iter(|| {
                let d = decompose(black_box(&sel), &scope, &gdd).unwrap();
                assert_eq!(d.subqueries.len(), k);
                d
            })
        });
    }
    group.finish();
}

fn bench_decompose_wide_projection(c: &mut Criterion) {
    // Wider tables → more needed columns to route.
    let mut group = c.benchmark_group("b2_decompose_wide");
    for cols in [4usize, 16, 64] {
        let gdd = synthetic_gdd(2, 1, cols);
        let scope = scope_over(2);
        let sql = "SELECT * FROM db0.flights0 a, db1.flights0 b WHERE a.rate = b.rate";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { unreachable!() };
        let QueryBody::Select(sel) = q.body else { unreachable!() };
        group.bench_with_input(BenchmarkId::new("columns", cols), &cols, |b, _| {
            b.iter(|| decompose(black_box(&sel), &scope, &gdd).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decompose, bench_decompose_wide_projection
}
criterion_main!(benches);
