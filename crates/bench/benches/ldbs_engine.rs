//! Experiment B6 — local engine microbenchmarks.
//!
//! The substrate's raw costs: scans, filtered scans, joins, aggregates,
//! point updates and the full 2PC cycle, over table sizes 1k–100k rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use std::hint::black_box;

fn engine_with_rows(rows: usize) -> Engine {
    let mut e = Engine::new("bench", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute(
        "db",
        "CREATE TABLE flights (flnu INT, source CHAR(20), destination CHAR(20), rate FLOAT)",
    )
    .unwrap();
    let cities = ["Houston", "Dallas", "Austin", "El Paso"];
    for r in 0..rows {
        e.execute(
            "db",
            &format!(
                "INSERT INTO flights VALUES ({r}, '{}', '{}', {})",
                cities[r % 4],
                cities[(r + 1) % 4],
                50.0 + (r % 100) as f64
            ),
        )
        .unwrap();
    }
    e
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_scan");
    for rows in [1_000usize, 10_000, 100_000] {
        let mut e = engine_with_rows(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("full_scan", rows), &rows, |b, _| {
            b.iter(|| black_box(e.execute("db", "SELECT flnu FROM flights").unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("filtered_scan", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    e.execute(
                        "db",
                        "SELECT flnu FROM flights WHERE source = 'Houston' AND rate > 75",
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("aggregate", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    e.execute(
                        "db",
                        "SELECT source, COUNT(*), AVG(rate) FROM flights GROUP BY source",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_join");
    group.sample_size(10);
    for rows in [100usize, 300] {
        let mut e = engine_with_rows(rows);
        group.bench_with_input(BenchmarkId::new("self_join_filtered", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    e.execute(
                        "db",
                        "SELECT a.flnu, b.flnu FROM flights a, flights b
                             WHERE a.destination = b.source AND a.flnu < 10",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_dml_and_txn(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_dml");
    let mut e = engine_with_rows(10_000);
    group.bench_function("point_update", |b| {
        b.iter(|| {
            black_box(e.execute("db", "UPDATE flights SET rate = rate WHERE flnu = 5000").unwrap())
        })
    });
    group.bench_function("range_update", |b| {
        b.iter(|| {
            black_box(
                e.execute("db", "UPDATE flights SET rate = rate WHERE source = 'Houston'").unwrap(),
            )
        })
    });
    group.bench_function("insert_delete", |b| {
        b.iter(|| {
            e.execute("db", "INSERT INTO flights VALUES (999999, 'X', 'Y', 1.0)").unwrap();
            e.execute("db", "DELETE FROM flights WHERE flnu = 999999").unwrap();
        })
    });
    group.bench_function("two_phase_commit_cycle", |b| {
        b.iter(|| {
            let txn = e.begin();
            e.execute_in(txn, "db", "UPDATE flights SET rate = rate WHERE flnu = 1").unwrap();
            e.prepare(txn).unwrap();
            e.commit(txn).unwrap();
        })
    });
    group.bench_function("rollback_cycle", |b| {
        b.iter(|| {
            let txn = e.begin();
            e.execute_in(txn, "db", "UPDATE flights SET rate = 0 WHERE flnu < 100").unwrap();
            e.rollback(txn).unwrap();
        })
    });
    group.finish();
}

fn bench_subquery(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_subquery");
    group.sample_size(20);
    let mut e = engine_with_rows(1_000);
    group.bench_function("scalar_min_reservation", |b| {
        b.iter(|| {
            black_box(
                e.execute(
                    "db",
                    "SELECT flnu FROM flights
                     WHERE rate = (SELECT MIN(rate) FROM flights WHERE source = 'Houston')",
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scans, bench_join, bench_dml_and_txn, bench_subquery
}
criterion_main!(benches);
