//! Experiment B10 — local access paths (LDBS secondary indexes).
//!
//! Two questions, matching the two sides of the index trade-off:
//!
//! * how much faster are point / IN / narrow-range lookups through a
//!   secondary index than the reference full scan, as the table grows?
//! * what does incremental index maintenance cost DML, measured as an
//!   insert+delete round trip with and without indexes present?
//!
//! Besides the criterion groups, `write_summary` records one
//! machine-readable sweep to `BENCH_local_index.json` at the repo root; the
//! acceptance bar is a ≥10x indexed point/IN speedup at 10k rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::exec::select::execute_select_with;
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use msql_lang::{parse_statement, QueryBody, Select, Statement};
use std::hint::black_box;
use std::time::Instant;

/// An engine holding `items (k INT, c CHAR(8), v FLOAT)` with `rows` rows,
/// k distinct 0..rows, c cycling through ten categories. With `indexed`, a
/// BTree index on `k` (point + range) and a hash index on `c`.
fn engine(rows: usize, indexed: bool) -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute("db", "CREATE TABLE items (k INT, c CHAR(8), v FLOAT)").unwrap();
    if indexed {
        e.execute("db", "CREATE INDEX items_k ON items (k) USING BTREE").unwrap();
        e.execute("db", "CREATE INDEX items_c ON items (c) USING HASH").unwrap();
    }
    for i in 0..rows {
        e.execute("db", &format!("INSERT INTO items VALUES ({i}, 'c{}', {}.5)", i % 10, i % 97))
            .unwrap();
    }
    e
}

fn parse_select(sql: &str) -> Select {
    let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!("not a query") };
    let QueryBody::Select(sel) = q.body else { panic!("not a select") };
    sel
}

/// The three lookup shapes of the sweep, sized relative to the table.
fn lookup_queries(rows: usize) -> [(&'static str, String); 3] {
    let mid = rows / 2;
    let ins: Vec<String> = (0..8).map(|i| (i * rows / 8 + 3).to_string()).collect();
    [
        ("point", format!("SELECT k, v FROM items WHERE k = {mid}")),
        ("in", format!("SELECT k, v FROM items WHERE k IN ({})", ins.join(", "))),
        ("range", format!("SELECT k, v FROM items WHERE k BETWEEN {mid} AND {}", mid + 20)),
    ]
}

fn bench_lookup_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("b10_local_index_lookup");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let e = engine(rows, true);
        let db = e.database("db").unwrap();
        for (kind, sql) in lookup_queries(rows) {
            let sel = parse_select(&sql);
            for (mode, fast) in [("probe", true), ("scan", false)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{kind}_{mode}"), rows),
                    &rows,
                    |b, _| b.iter(|| black_box(execute_select_with(db, &sel, &[], fast).unwrap())),
                );
            }
        }
    }
    group.finish();
}

fn bench_dml_maintenance(c: &mut Criterion) {
    // Insert+delete round trip: the delete keeps the table (and timing)
    // stable across iterations while both statements maintain the indexes.
    let mut group = c.benchmark_group("b10_local_index_dml");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        for (label, indexed) in [("indexed", true), ("bare", false)] {
            let mut e = engine(rows, indexed);
            let key = rows + 7;
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| {
                    e.execute("db", &format!("INSERT INTO items VALUES ({key}, 'cx', 0.5)"))
                        .unwrap();
                    e.execute("db", &format!("DELETE FROM items WHERE k = {key}")).unwrap();
                })
            });
        }
    }
    group.finish();
}

/// Mean microseconds per execution over `iters` runs (after one warm-up).
fn time_select(e: &Engine, sel: &Select, fast: bool, iters: u32) -> f64 {
    let db = e.database("db").unwrap();
    black_box(execute_select_with(db, sel, &[], fast).unwrap());
    let t = Instant::now();
    for _ in 0..iters {
        black_box(execute_select_with(db, sel, &[], fast).unwrap());
    }
    t.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// One full sweep, recorded as JSON so successive runs can be compared.
fn write_summary(_c: &mut Criterion) {
    let mut lookup = Vec::new();
    for rows in [1_000usize, 10_000] {
        let e = engine(rows, true);
        for (kind, sql) in lookup_queries(rows) {
            let sel = parse_select(&sql);
            let probe = time_select(&e, &sel, true, 200);
            let scan = time_select(&e, &sel, false, 40);
            lookup.push(format!(
                "    {{\"rows\": {rows}, \"kind\": \"{kind}\", \"probe_us\": {probe:.2}, \
                 \"scan_us\": {scan:.2}, \"speedup\": {:.1}}}",
                scan / probe
            ));
        }
    }

    let mut dml = Vec::new();
    for rows in [1_000usize, 10_000] {
        let mut us = [0f64; 2];
        for (slot, indexed) in [(0, true), (1, false)] {
            let mut e = engine(rows, indexed);
            let key = rows + 7;
            let iters = 200u32;
            let t = Instant::now();
            for _ in 0..iters {
                e.execute("db", &format!("INSERT INTO items VALUES ({key}, 'cx', 0.5)")).unwrap();
                e.execute("db", &format!("DELETE FROM items WHERE k = {key}")).unwrap();
            }
            us[slot] = t.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
        }
        dml.push(format!(
            "    {{\"rows\": {rows}, \"indexed_us\": {:.2}, \"bare_us\": {:.2}, \
             \"overhead\": {:.2}}}",
            us[0],
            us[1],
            us[0] / us[1]
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"b10_local_index\",\n  \"lookup\": [\n{}\n  ],\n  \"dml\": [\n{}\n  ]\n}}\n",
        lookup.join(",\n"),
        dml.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_local_index.json");
    std::fs::write(path, &json).unwrap();
    println!("b10_local_index: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lookup_sweep, bench_dml_maintenance, write_summary
}
criterion_main!(benches);
