//! Experiment B5 — multitransactions: function replication and acceptable
//! states.
//!
//! A reservation multitransaction over 2·A databases (A flight candidates,
//! A car candidates) with A acceptable states. Two sweeps:
//!
//! * latency vs. number of alternatives (more subqueries + a longer state
//!   chain);
//! * success rate vs. per-database failure probability, for A ∈ {1, 2, 4} —
//!   the shape the flexible-transaction argument predicts: more replicated
//!   alternatives → markedly higher success rate (reported via eprintln).

use bench::workloads::{airline_engine, scaled_federation_on};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use mdbs::Federation;
use netsim::Network;
use std::hint::black_box;

/// Builds a multitransaction over databases `db0..db{2a-1}`: odd ones are
/// "car" databases, even ones "flight" databases; acceptable state i pairs
/// flight i with car i.
fn mtx_sql(a: usize) -> String {
    let mut queries = Vec::new();
    let flights: Vec<String> = (0..a).map(|i| format!("db{}", 2 * i)).collect();
    let cars: Vec<String> = (0..a).map(|i| format!("db{}", 2 * i + 1)).collect();
    queries.push(format!(
        "USE {}\nUPDATE seats SET sstat = 'TAKEN', client = 'wenders'
         WHERE snu = (SELECT MIN(snu) FROM seats WHERE sstat = 'FREE');",
        flights.join(" ")
    ));
    queries.push(format!(
        "USE {}\nUPDATE seats SET sstat = 'TAKEN', client = 'wenders'
         WHERE snu = (SELECT MIN(snu) FROM seats WHERE sstat = 'FREE');",
        cars.join(" ")
    ));
    let states: Vec<String> = (0..a).map(|i| format!("db{} AND db{}", 2 * i, 2 * i + 1)).collect();
    format!(
        "BEGIN MULTITRANSACTION\n{}\nCOMMIT\n{}\nEND MULTITRANSACTION",
        queries.join("\n"),
        states.join(",\n")
    )
}

fn bench_alternatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_alternatives");
    group.sample_size(10);
    for a in [1usize, 2, 4] {
        let mut fed = scaled_federation_on(Network::new(), 2 * a, 16, DbmsProfile::oracle_like());
        let sql = mtx_sql(a);
        group.bench_with_input(BenchmarkId::new("alternatives", a), &a, |b, _| {
            b.iter(|| {
                let report = fed.execute(&sql).unwrap().into_mtx().unwrap();
                assert!(report.achieved_state.is_some());
                black_box(report)
            })
        });
    }
    group.finish();
}

fn success_rate(a: usize, fail_p: f64, trials: usize) -> f64 {
    let mut successes = 0usize;
    for trial in 0..trials {
        let mut fed = Federation::with_network(Network::new());
        for i in 0..2 * a {
            let mut engine = airline_engine(i, 4, DbmsProfile::oracle_like());
            engine.set_failure_policy(ldbs::failure::FailurePolicy::with_probabilities(
                (trial * 31 + i) as u64,
                fail_p,
                0.0,
            ));
            fed.add_service(&format!("svc{i}"), &format!("site{i}"), engine).unwrap();
            fed.execute(&format!("IMPORT DATABASE db{i} FROM SERVICE svc{i}")).unwrap();
        }
        let report = fed.execute(&mtx_sql(a)).unwrap().into_mtx().unwrap();
        if report.achieved_state.is_some() {
            successes += 1;
        }
    }
    successes as f64 / trials as f64
}

fn bench_success_rate_report(c: &mut Criterion) {
    // Not a timing benchmark: a deterministic sweep reported once, kept here
    // so `cargo bench` regenerates the experiment's numbers.
    for fail_p in [0.2f64, 0.4] {
        for a in [1usize, 2, 4] {
            let rate = success_rate(a, fail_p, 24);
            eprintln!("b5: alternatives={a} failure_p={fail_p}: success rate {:.0}%", rate * 100.0);
        }
    }
    // A token measurement so criterion registers the group.
    let mut group = c.benchmark_group("b5_success_rate");
    group.sample_size(10);
    group.bench_function("single_trial_a2_p02", |b| b.iter(|| black_box(success_rate(2, 0.2, 1))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alternatives, bench_success_rate_report
}
criterion_main!(benches);
