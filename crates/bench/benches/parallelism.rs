//! Experiment B7 — parallel vs. serial subquery execution.
//!
//! The paper closes by arguing that global-query optimisation in a loosely
//! coupled federation "will be related more to data flow control and
//! parallelism in execution of queries at different sites than to individual
//! database operations." This benchmark quantifies that: with per-link
//! latency L and N sites, a parallel task batch costs ≈L while a serial one
//! costs ≈N·L.

use bench::workloads::{scaled_federation_on, scaled_use, uniform_latency};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use netsim::Network;
use std::hint::black_box;

const QUERY: &str = "SELECT flnu, rate FROM flights WHERE source = 'Houston'";

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_parallelism");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        for parallel in [true, false] {
            let net = Network::new();
            uniform_latency(&net, 3);
            let mut fed = scaled_federation_on(net, n, 50, DbmsProfile::oracle_like());
            fed.parallel = parallel;
            fed.execute(&scaled_use(n, 0)).unwrap();
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mt = fed.execute(QUERY).unwrap().into_multitable().unwrap();
                    assert_eq!(mt.tables.len(), n);
                    black_box(mt)
                })
            });
        }
    }
    group.finish();
}

fn bench_latency_sweep(c: &mut Criterion) {
    // Fixed fan-out, growing one-way latency: the parallel/serial gap widens
    // linearly with L.
    let mut group = c.benchmark_group("b7_latency_sweep");
    group.sample_size(10);
    for latency_ms in [1u64, 5, 10] {
        for parallel in [true, false] {
            let net = Network::new();
            uniform_latency(&net, latency_ms);
            let mut fed = scaled_federation_on(net, 4, 50, DbmsProfile::oracle_like());
            fed.parallel = parallel;
            fed.execute(&scaled_use(4, 0)).unwrap();
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{latency_ms}ms")),
                &latency_ms,
                |b, _| b.iter(|| black_box(fed.execute(QUERY).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_vs_serial, bench_latency_sweep
}
criterion_main!(benches);
