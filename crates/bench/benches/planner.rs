//! Experiment B13 — the cost-based distributed planner.
//!
//! A deliberately skewed 2-site equi-join: `db0.big` is large and wide but
//! its local predicates are vacuous (`rate >= 0 AND flnu >= 0`), while
//! `db1.small` is tiny and carries no local predicate at all. The
//! conjunct-counting heuristic therefore picks the *large* side as the
//! semi-join reducer — exactly backwards — and past the fixed key cap gives
//! up on reduction altogether. The costed planner, fed by ANALYZE
//! statistics, reduces from the small side and ships an order of magnitude
//! fewer partial bytes.
//!
//! `write_summary` records the sweep to `BENCH_planner.json` and asserts the
//! headline claim: the costed plan ships at most half the bytes of the
//! heuristic plan on every skew level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use mdbs::Federation;
use netsim::Network;
use std::hint::black_box;
use std::time::Instant;

/// The skewed query: tiny `small` drives the join into wide `big`, whose
/// two vacuous conjuncts bait the heuristic into reducing from `big`.
const QUERY: &str = "SELECT s.k, b.payload FROM db1.small s, db0.big b
     WHERE s.k = b.flnu AND b.rate >= 0 AND b.flnu >= 0 ORDER BY s.k";

/// Two sites: `db0.big` with `big_rows` wide rows (unique join keys), and
/// `db1.small` with 10 rows whose keys hit only the first 10 of `big`.
fn skewed_federation(big_rows: usize) -> Federation {
    let mut fed = Federation::with_network(Network::new());
    let mut e0 = Engine::new("svc0", DbmsProfile::oracle_like());
    e0.create_database("db0").unwrap();
    e0.execute("db0", "CREATE TABLE big (flnu INT, payload CHAR(40), rate FLOAT)").unwrap();
    for r in 0..big_rows {
        e0.execute(
            "db0",
            &format!("INSERT INTO big VALUES ({r}, 'payload-{r:032}', {}.5)", r % 97),
        )
        .unwrap();
    }
    let mut e1 = Engine::new("svc1", DbmsProfile::oracle_like());
    e1.create_database("db1").unwrap();
    e1.execute("db1", "CREATE TABLE small (k INT, tag CHAR(8))").unwrap();
    for r in 0..10 {
        e1.execute("db1", &format!("INSERT INTO small VALUES ({r}, 'tag{r}')")).unwrap();
    }
    fed.add_service("svc0", "site0", e0).unwrap();
    fed.add_service("svc1", "site1", e1).unwrap();
    fed.execute("IMPORT DATABASE db0 FROM SERVICE svc0").unwrap();
    fed.execute("IMPORT DATABASE db1 FROM SERVICE svc1").unwrap();
    fed.execute("USE db0 db1").unwrap();
    fed
}

/// Builds the federation on one of the two planning paths. The costed path
/// ANALYZEs both sites so the coordinator holds fresh statistics.
fn planner_federation(big_rows: usize, costed: bool) -> Federation {
    let mut fed = skewed_federation(big_rows);
    fed.cost_planner = costed;
    if costed {
        fed.execute("ANALYZE db0.big").unwrap();
        fed.execute("ANALYZE db1.small").unwrap();
    }
    fed
}

/// Sums every `lam.bytes{db=…}` counter: partial/global payload bytes
/// shipped back from the sites.
fn shipped_bytes(fed: &Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes{"))
        .map(|(_, v)| *v)
        .sum()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("b13_planner");
    group.sample_size(10);
    for big_rows in [100usize, 400] {
        for costed in [true, false] {
            let mut fed = planner_federation(big_rows, costed);
            let label = if costed { "costed" } else { "heuristic" };
            group.bench_with_input(BenchmarkId::new(label, big_rows), &big_rows, |b, _| {
                b.iter(|| black_box(fed.execute(QUERY).unwrap()))
            });
        }
    }
    group.finish();
}

/// One full sweep, recorded as JSON; asserts the ≥2× byte reduction that
/// motivates the planner.
fn write_summary(_c: &mut Criterion) {
    let mut sweep = Vec::new();
    for big_rows in [100usize, 400, 800] {
        let mut bytes = [0u64; 2];
        let mut ms = [0f64; 2];
        let mut rows = [0usize; 2];
        for (slot, costed) in [(0, true), (1, false)] {
            let mut fed = planner_federation(big_rows, costed);
            fed.execute(QUERY).unwrap(); // warm connections and the stats cache
            let baseline = shipped_bytes(&fed);
            let t = Instant::now();
            let out = fed.execute(QUERY).unwrap().into_table().unwrap();
            ms[slot] = t.elapsed().as_secs_f64() * 1000.0;
            bytes[slot] = shipped_bytes(&fed) - baseline;
            rows[slot] = out.rows.len();
        }
        assert_eq!(rows[0], rows[1], "costed and heuristic plans must agree");
        assert!(
            bytes[0] * 2 <= bytes[1],
            "costed plan should ship at most half the bytes: {} vs {} at {big_rows} rows",
            bytes[0],
            bytes[1]
        );
        sweep.push(format!(
            "    {{\"big_rows\": {big_rows}, \"costed_bytes\": {}, \"heuristic_bytes\": {}, \
             \"costed_ms\": {:.2}, \"heuristic_ms\": {:.2}}}",
            bytes[0], bytes[1], ms[0], ms[1]
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"b13_planner\",\n  \"skewed_semijoin\": [\n{}\n  ]\n}}\n",
        sweep.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");
    std::fs::write(path, &json).unwrap();
    println!("b13_planner: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_planner, write_summary
}
criterion_main!(benches);
