//! Experiment B8 — retry storms on lossy links.
//!
//! The paper's prototype ran over an unreliable campus network (§4.1); this
//! benchmark sweeps the per-link message-drop probability and measures what
//! the bounded retry policy buys: the success rate of a multiple retrieval
//! with and without retries, and the execution-time cost the resends add.

use bench::workloads::{scaled_federation_on, scaled_use};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use mdbs::{Federation, RetryPolicy};
use netsim::Network;
use std::hint::black_box;
use std::time::Duration;

const SITES: usize = 3;
const QUERY: &str = "SELECT flnu, rate FROM flights WHERE source = 'Houston'";

/// A small scaled federation on a seeded network with every link touching a
/// LAM site degraded to drop probability `p`.
fn lossy_federation(seed: u64, p: f64, retries: u32) -> Federation {
    let mut fed =
        scaled_federation_on(Network::with_seed(seed), SITES, 20, DbmsProfile::oracle_like());
    fed.timeout = Duration::from_millis(50);
    fed.retry = RetryPolicy::retries(retries);
    fed.execute(&scaled_use(SITES, 0)).unwrap();
    for i in 0..SITES {
        let site = format!("site{i}");
        fed.network().set_link_drop_probability("*", &site, p);
        fed.network().set_link_drop_probability(&site, "*", p);
    }
    fed
}

/// Restores lossless links (keeps LAM shutdown fast at teardown).
fn heal(fed: &Federation) {
    for i in 0..SITES {
        let site = format!("site{i}");
        fed.network().clear_link_drop_probability("*", &site);
        fed.network().clear_link_drop_probability(&site, "*");
    }
}

/// One trial: true when every database answered.
fn trial(fed: &mut Federation) -> bool {
    match fed.execute(QUERY) {
        Ok(out) => out.into_multitable().map(|mt| mt.tables.len() == SITES).unwrap_or(false),
        Err(_) => false,
    }
}

fn bench_retry_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("b8_retry_storm");
    group.sample_size(10);
    for p in [0.0f64, 0.1, 0.3, 0.5] {
        for max_attempts in [1u32, 5] {
            let mut fed = lossy_federation(0xB8, p, max_attempts);
            // Success rate over a fixed trial count, reported alongside the
            // timing (the paper-facing number: what retries buy).
            const TRIALS: u32 = 20;
            let ok = (0..TRIALS).filter(|_| trial(&mut fed)).count();
            let label = if max_attempts > 1 { "retries5" } else { "noretry" };
            println!(
                "b8_retry_storm/{label}/p={p}: success rate {ok}/{TRIALS} \
                 (dropped={} retries={})",
                fed.network().stats().dropped,
                fed.exec_stats().retries,
            );
            group.bench_with_input(BenchmarkId::new(label, format!("p={p}")), &p, |b, _| {
                b.iter(|| black_box(trial(&mut fed)))
            });
            heal(&fed);
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_retry_storm
}
criterion_main!(benches);
