//! Experiment B1 — translation throughput vs. number of databases in scope.
//!
//! Measures the front half of the §4.3 pipeline: MSQL parsing, and
//! multiple-identifier substitution + disambiguation over GDDs of growing
//! width. Expected shape: parsing is flat; expansion grows linearly with the
//! number of scope databases.

use bench::workloads::synthetic_gdd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs::scope::SessionScope;
use mdbs::translate::{self, Translated};
use msql_lang::{parse_statement, Statement};
use std::hint::black_box;

const QUERY: &str = "UPDATE flights% SET rate = rate * 1.1
    WHERE source = 'Houston' AND destination = 'Dallas'";

fn scope_over(n: usize) -> SessionScope {
    let mut scope = SessionScope::new();
    let names: Vec<String> = (0..n).map(|i| format!("db{i}")).collect();
    let Statement::Use(u) = parse_statement(&format!("USE {}", names.join(" "))).unwrap() else {
        unreachable!()
    };
    scope.apply_use(&u).unwrap();
    scope
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_parse");
    group.bench_function("section2_query", |b| {
        b.iter(|| {
            parse_statement(black_box(
                "USE avis national
                 LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
                 SELECT %code, type, ~rate FROM car WHERE status = 'available'",
            ))
            .unwrap()
        })
    });
    group.bench_function("vital_update", |b| {
        b.iter(|| {
            parse_statement(black_box(
                "USE continental VITAL delta united VITAL
                 UPDATE flight% SET rate% = rate% * 1.1
                 WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
            ))
            .unwrap()
        })
    });
    group.bench_function("multitransaction", |b| {
        b.iter(|| {
            parse_statement(black_box(
                "BEGIN MULTITRANSACTION
                 USE continental delta
                 UPDATE fltab SET sstat = 'TAKEN'
                 WHERE snu = (SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
                 COMMIT continental AND national, delta AND avis
                 END MULTITRANSACTION",
            ))
            .unwrap()
        })
    });
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_expand");
    let Statement::Query(q) = parse_statement(QUERY).unwrap() else { unreachable!() };
    for n in [1usize, 4, 16, 64] {
        let gdd = synthetic_gdd(n, 1, 8);
        let scope = scope_over(n);
        group.bench_with_input(BenchmarkId::new("databases", n), &n, |b, _| {
            b.iter(|| {
                let t = translate::translate_body(black_box(&q.body), &scope, &gdd).unwrap();
                let Translated::PerDb(locals) = t else { unreachable!() };
                assert_eq!(locals.len(), n);
                locals
            })
        });
    }
    group.finish();
}

fn bench_expand_wild_tables(c: &mut Criterion) {
    // Wild table names multiply the substitution space: each database
    // exports `tables` matching tables.
    let mut group = c.benchmark_group("b1_expand_wild_tables");
    let Statement::Query(q) =
        parse_statement("SELECT flnu, rate FROM flights% WHERE source = 'Houston'").unwrap()
    else {
        unreachable!()
    };
    for tables in [1usize, 4, 8] {
        let gdd = synthetic_gdd(4, tables, 8);
        let scope = scope_over(4);
        group.bench_with_input(BenchmarkId::new("matches_per_db", tables), &tables, |b, _| {
            b.iter(|| translate::translate_body(black_box(&q.body), &scope, &gdd).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_expand, bench_expand_wild_tables
}
criterion_main!(benches);
