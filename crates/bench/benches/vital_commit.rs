//! Experiment B3 — vital-set commitment cost.
//!
//! End-to-end latency of a multiple update as the vital set grows: all
//! NON VITAL (pure autocommit tasks), half vital, all VITAL (2PC prepare +
//! decide round for every member). With per-message latency, the vital
//! variants pay the extra commit round; the message counts (printed once
//! per configuration) show ≈2 extra messages per vital member.

use bench::workloads::{scaled_federation_on, scaled_use, uniform_latency};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::profile::DbmsProfile;
use netsim::Network;
use std::hint::black_box;

const UPDATE: &str = "UPDATE flights SET rate = rate WHERE source = 'Houston'";

fn bench_vital_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_vital_fraction");
    group.sample_size(10);
    for n in [3usize, 6] {
        for (label, vital_every) in [("non_vital", 0usize), ("half_vital", 2), ("all_vital", 1)] {
            let net = Network::new();
            uniform_latency(&net, 1);
            let mut fed = scaled_federation_on(net.clone(), n, 50, DbmsProfile::oracle_like());
            fed.execute(&scaled_use(n, vital_every)).unwrap();

            // Report the 2PC message overhead once per configuration.
            net.reset_stats();
            fed.execute(UPDATE).unwrap();
            let msgs = net.stats().messages;
            eprintln!("b3: n={n} {label}: {msgs} messages per statement");

            group.bench_with_input(BenchmarkId::new(format!("{label}_n{n}"), n), &n, |b, _| {
                b.iter(|| black_box(fed.execute(UPDATE).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_vital_under_failures(c: &mut Criterion) {
    // Abort-path latency: with failure probability p the vital set keeps
    // rolling back; the query still terminates quickly.
    let mut group = c.benchmark_group("b3_vital_failures");
    group.sample_size(10);
    for p in [0.0f64, 0.1, 0.3] {
        let net = Network::new();
        let mut fed = scaled_federation_on(net, 4, 50, DbmsProfile::oracle_like());
        fed.execute(&scaled_use(4, 1)).unwrap();
        for i in 0..4 {
            fed.engine(&format!("svc{i}")).unwrap().lock().set_failure_policy(
                ldbs::failure::FailurePolicy::with_probabilities(42 + i as u64, p, 0.0),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("abort_probability", format!("{p}")),
            &p,
            |b, _| b.iter(|| black_box(fed.execute(UPDATE).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vital_fraction, bench_vital_under_failures
}
criterion_main!(benches);
