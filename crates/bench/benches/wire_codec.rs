//! Experiment B12 — the binary columnar wire codec vs. the text proto.
//!
//! Two granularities, matching the two layers of the codec:
//!
//! * payload level: a partial-result `ResultSet` serialized by the line
//!   codec (`wire::encode_result_set`) vs. the columnar layout
//!   (`codec::columnar`) — where dictionary encoding, varint ints and NULL
//!   bitmaps earn their keep;
//! * frame level: the same payload shipped as a complete correlated
//!   `Response::PartialDone`, text framing vs. binary framing — the bytes a
//!   LAM actually puts on the simulated wire.
//!
//! `write_summary` records bytes and encode/decode wall time at 1k and 10k
//! rows to `BENCH_wire_codec.json` and asserts the headline claim: binary
//! ships ≥2x fewer payload bytes than text at 10k-row partials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::value::{DataType, Value};
use mdbs::codec::{self, columnar};
use mdbs::proto::Response;
use mdbs::wire;
use netsim::BufferPool;
use std::hint::black_box;
use std::time::Instant;

const STATUSES: [&str; 3] = ["available", "rented", "maintenance"];
const CITIES: [&str; 5] = ["Houston", "San Antonio", "Dallas", "Austin", "El Paso"];

/// A partial-result shape a site would ship for a cross-database join:
/// sequential keys, a float rate with some NULLs, and two low-cardinality
/// string columns where the dictionary encoding bites.
fn partial_rows(rows: usize) -> ResultSet {
    let columns = vec![
        ColumnMeta { name: "fnu".into(), data_type: DataType::Int },
        ColumnMeta { name: "rate".into(), data_type: DataType::Float },
        ColumnMeta { name: "status".into(), data_type: DataType::Char(12) },
        ColumnMeta { name: "source".into(), data_type: DataType::Char(16) },
    ];
    let rows = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                if i % 7 == 0 { Value::Null } else { Value::Float(40.0 + (i % 13) as f64) },
                Value::Str(STATUSES[i % STATUSES.len()].to_string()),
                Value::Str(CITIES[i % CITIES.len()].to_string()),
            ]
        })
        .collect();
    ResultSet { columns, rows }
}

fn bench_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("b12_wire_codec_payload");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let rs = partial_rows(rows);
        let text = wire::encode_result_set(&rs);
        let binary = columnar::encode_result_set(&rs);
        group.bench_with_input(BenchmarkId::new("encode_text", rows), &rows, |b, _| {
            b.iter(|| black_box(wire::encode_result_set(&rs)))
        });
        group.bench_with_input(BenchmarkId::new("encode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(columnar::encode_result_set(&rs)))
        });
        group.bench_with_input(BenchmarkId::new("decode_text", rows), &rows, |b, _| {
            b.iter(|| black_box(wire::decode_result_set(&text).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("decode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(columnar::decode_result_set(&binary).unwrap()))
        });
    }
    group.finish();
}

/// Marginal framing cost given an already-serialized payload string. The
/// text side is a near-free concatenation; the binary side pays the
/// columnar transcode plus its canonicity check — the compatibility price
/// of keeping the canonical text payload as the in-memory form. The CPU win
/// lives at the payload level above, where a columnar producer sits.
fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("b12_wire_codec_frame");
    group.sample_size(10);
    let pool = BufferPool::default();
    for rows in [1_000usize, 10_000] {
        let resp = partial_response(rows);
        let text = mdbs::proto::encode_with_correlation(7, &resp.encode());
        let binary = codec::encode_response(&pool, Some(7), &resp).into_vec();
        group.bench_with_input(BenchmarkId::new("encode_text", rows), &rows, |b, _| {
            b.iter(|| black_box(mdbs::proto::encode_with_correlation(7, &resp.encode())))
        });
        group.bench_with_input(BenchmarkId::new("encode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(codec::encode_response(&pool, Some(7), &resp)))
        });
        group.bench_with_input(BenchmarkId::new("decode_text", rows), &rows, |b, _| {
            b.iter(|| {
                let (_, body) = mdbs::proto::split_correlation(&text);
                black_box(Response::decode(body).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("decode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(codec::decode_response(&binary).unwrap()))
        });
    }
    group.finish();
}

/// The frame a LAM sends back for a 10k-row partial.
fn partial_response(rows: usize) -> Response {
    let rs = partial_rows(rows);
    Response::PartialDone {
        payload: Some(wire::encode_result_set(&rs)),
        error: None,
        full_rows: rows as u64,
        full_bytes: 0,
        access: Some("scan".into()),
    }
}

/// Wall time for `iters` runs of `f`, in milliseconds.
fn timed<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t.elapsed().as_secs_f64() * 1000.0 / iters as f64
}

/// One machine-readable sweep: bytes and per-op encode/decode time for both
/// formats, payload- and frame-level, recorded to `BENCH_wire_codec.json`.
fn write_summary(_c: &mut Criterion) {
    let pool = BufferPool::default();
    let mut entries = Vec::new();
    for rows in [1_000usize, 10_000] {
        let rs = partial_rows(rows);
        let iters = if rows >= 10_000 { 20 } else { 100 };

        let text_payload = wire::encode_result_set(&rs);
        let binary_payload = columnar::encode_result_set(&rs);
        let enc_text = timed(iters, || wire::encode_result_set(&rs));
        let enc_bin = timed(iters, || columnar::encode_result_set(&rs));
        let dec_text = timed(iters, || wire::decode_result_set(&text_payload).unwrap());
        let dec_bin = timed(iters, || columnar::decode_result_set(&binary_payload).unwrap());

        let resp = partial_response(rows);
        let text_frame = mdbs::proto::encode_with_correlation(7, &resp.encode());
        let binary_frame = codec::encode_response(&pool, Some(7), &resp).into_vec();

        // The headline acceptance claim: ≥2x fewer bytes on the wire.
        assert!(
            text_payload.len() >= 2 * binary_payload.len(),
            "payload at {rows} rows: text {} vs binary {}",
            text_payload.len(),
            binary_payload.len()
        );
        assert!(
            text_frame.len() >= 2 * binary_frame.len(),
            "frame at {rows} rows: text {} vs binary {}",
            text_frame.len(),
            binary_frame.len()
        );

        entries.push(format!(
            "    {{\"rows\": {rows}, \
             \"payload_bytes_text\": {}, \"payload_bytes_binary\": {}, \
             \"frame_bytes_text\": {}, \"frame_bytes_binary\": {}, \
             \"encode_ms_text\": {enc_text:.3}, \"encode_ms_binary\": {enc_bin:.3}, \
             \"decode_ms_text\": {dec_text:.3}, \"decode_ms_binary\": {dec_bin:.3}}}",
            text_payload.len(),
            binary_payload.len(),
            text_frame.len(),
            binary_frame.len(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"b12_wire_codec\",\n  \"sweep\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire_codec.json");
    std::fs::write(path, &json).unwrap();
    println!("b12_wire_codec: summary written to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_payload, bench_frame, write_summary
}
criterion_main!(benches);
