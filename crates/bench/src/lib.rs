//! Shared workload builders and fixtures for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment from
//! EXPERIMENTS.md; this library holds the federation fixtures they share.

pub mod workloads;
