//! Workload builders shared by the benchmark targets.
//!
//! Two families:
//!
//! * the *paper federation* (appendix schemas, five databases) for
//!   fidelity-oriented benchmarks;
//! * *scaled federations* — N identically-shaped airline databases, each on
//!   its own service and site — for the parameter sweeps of experiments
//!   B1–B5 and B7.

use catalog::{GddColumn, GddTable, GlobalDataDictionary};
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use mdbs::Federation;
use msql_lang::TypeName;
use netsim::{LatencyModel, Network};
use std::time::Duration;

/// Builds one airline-like engine: database `db<i>` with a `flights` table
/// holding `rows` seeded rows and a `seats` reservation table.
pub fn airline_engine(index: usize, rows: usize, profile: DbmsProfile) -> Engine {
    let db = format!("db{index}");
    let mut e = Engine::new(format!("svc{index}"), profile);
    e.create_database(&db).unwrap();
    e.execute(
        &db,
        "CREATE TABLE flights (flnu INT, source CHAR(20), destination CHAR(20), rate FLOAT)",
    )
    .unwrap();
    e.execute(&db, "CREATE TABLE seats (snu INT, sstat CHAR(8), client CHAR(20))").unwrap();
    let cities = ["Houston", "Dallas", "Austin", "El Paso"];
    for r in 0..rows {
        let src = cities[r % cities.len()];
        let dst = cities[(r + 1) % cities.len()];
        let rate = 50.0 + (r % 100) as f64;
        e.execute(&db, &format!("INSERT INTO flights VALUES ({r}, '{src}', '{dst}', {rate})"))
            .unwrap();
    }
    for s in 0..8 {
        e.execute(&db, &format!("INSERT INTO seats VALUES ({s}, 'FREE', NULL)")).unwrap();
    }
    e
}

/// A federation of `n` scaled airline databases (`db0..dbN-1` at
/// `site0..siteN-1`), all with the given profile, schemas imported.
pub fn scaled_federation(n: usize, rows: usize, profile: DbmsProfile) -> Federation {
    scaled_federation_on(Network::new(), n, rows, profile)
}

/// Same, on a caller-provided network (latency models, seeds).
pub fn scaled_federation_on(
    net: Network,
    n: usize,
    rows: usize,
    profile: DbmsProfile,
) -> Federation {
    let mut fed = Federation::with_network(net);
    fed.timeout = Duration::from_secs(30);
    for i in 0..n {
        fed.add_service(
            &format!("svc{i}"),
            &format!("site{i}"),
            airline_engine(i, rows, profile.clone()),
        )
        .unwrap();
        fed.execute(&format!("IMPORT DATABASE db{i} FROM SERVICE svc{i}")).unwrap();
    }
    fed
}

/// A `USE` statement over the first `n` scaled databases; `vital_every`
/// designates every k-th database VITAL (0 = none).
pub fn scaled_use(n: usize, vital_every: usize) -> String {
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        if vital_every > 0 && i % vital_every == 0 {
            parts.push(format!("db{i} VITAL"));
        } else {
            parts.push(format!("db{i}"));
        }
    }
    format!("USE {}", parts.join(" "))
}

/// A synthetic GDD with `n` databases, each exporting `tables` tables of
/// `cols` columns — for translator-only benchmarks (no engines, no network).
pub fn synthetic_gdd(n: usize, tables: usize, cols: usize) -> GlobalDataDictionary {
    let mut gdd = GlobalDataDictionary::new();
    for i in 0..n {
        let db = format!("db{i}");
        gdd.register_database(&db, &format!("svc{i}")).unwrap();
        for t in 0..tables {
            let mut columns = vec![
                GddColumn::new("flnu", TypeName::Int),
                GddColumn::new("source", TypeName::Char(20)),
                GddColumn::new("destination", TypeName::Char(20)),
                GddColumn::new("rate", TypeName::Float),
            ];
            for c in 0..cols.saturating_sub(4) {
                columns.push(GddColumn::new(format!("extra{c}"), TypeName::Int));
            }
            gdd.put_table(&db, GddTable::new(format!("flights{t}"), columns)).unwrap();
        }
    }
    gdd
}

/// Installs a uniform latency model on a network.
pub fn uniform_latency(net: &Network, millis: u64) {
    net.set_latency(LatencyModel::uniform(Duration::from_millis(millis)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_federation_builds_and_answers() {
        let mut fed = scaled_federation(3, 10, DbmsProfile::oracle_like());
        fed.execute(&scaled_use(3, 0)).unwrap();
        let mt =
            fed.execute("SELECT COUNT(*) AS n FROM flights").unwrap().into_multitable().unwrap();
        assert_eq!(mt.tables.len(), 3);
        for t in &mt.tables {
            assert_eq!(t.result.rows[0][0], ldbs::value::Value::Int(10));
        }
    }

    #[test]
    fn scaled_use_marks_vitals() {
        assert_eq!(scaled_use(3, 0), "USE db0 db1 db2");
        assert_eq!(scaled_use(3, 1), "USE db0 VITAL db1 VITAL db2 VITAL");
        assert_eq!(scaled_use(4, 2), "USE db0 VITAL db1 db2 VITAL db3");
    }

    #[test]
    fn synthetic_gdd_shape() {
        let gdd = synthetic_gdd(4, 2, 6);
        assert_eq!(gdd.database_names().len(), 4);
        assert_eq!(gdd.tables("db0").unwrap().len(), 2);
        assert_eq!(gdd.table("db0", "flights0").unwrap().columns.len(), 6);
    }
}
