//! The Auxiliary Directory: incorporated services and their capabilities.

use crate::error::CatalogError;
use msql_lang::{CommitCapability, Incorporate};
use std::collections::BTreeMap;

/// One incorporated service (LDBMS), as recorded by `INCORPORATE SERVICE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service name.
    pub name: String,
    /// Network site where the service listens (defaults to the service name
    /// when INCORPORATE gives no `SITE`).
    pub site: String,
    /// `CONNECTMODE CONNECT` — the service hosts multiple databases.
    pub multi_database: bool,
    /// Default commit mode for DML.
    pub commit_mode: CommitCapability,
    /// Override for CREATE statements.
    pub create_mode: Option<CommitCapability>,
    /// Override for INSERT statements.
    pub insert_mode: Option<CommitCapability>,
    /// Override for DROP statements.
    pub drop_mode: Option<CommitCapability>,
}

impl ServiceEntry {
    /// Builds an entry from an INCORPORATE statement.
    pub fn from_incorporate(inc: &Incorporate) -> Self {
        ServiceEntry {
            name: inc.service.to_ascii_lowercase(),
            site: inc.site.clone().unwrap_or_else(|| inc.service.clone()).to_ascii_lowercase(),
            multi_database: inc.multi_database,
            commit_mode: inc.commit_mode,
            create_mode: inc.create_mode,
            insert_mode: inc.insert_mode,
            drop_mode: inc.drop_mode,
        }
    }

    /// True when the service exposes a prepared-to-commit state for DML —
    /// the property the vital-set machinery needs.
    pub fn supports_2pc(&self) -> bool {
        self.commit_mode == CommitCapability::TwoPhase
    }

    /// Effective commit mode for CREATE.
    pub fn create_capability(&self) -> CommitCapability {
        self.create_mode.unwrap_or(self.commit_mode)
    }

    /// Effective commit mode for INSERT.
    pub fn insert_capability(&self) -> CommitCapability {
        self.insert_mode.unwrap_or(self.commit_mode)
    }

    /// Effective commit mode for DROP.
    pub fn drop_capability(&self) -> CommitCapability {
        self.drop_mode.unwrap_or(self.commit_mode)
    }
}

/// The Auxiliary Directory: `service name → entry`.
#[derive(Debug, Clone, Default)]
pub struct AuxiliaryDirectory {
    services: BTreeMap<String, ServiceEntry>,
}

impl AuxiliaryDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        AuxiliaryDirectory::default()
    }

    /// Applies an INCORPORATE statement. Re-incorporating an existing
    /// service replaces its entry (capabilities may have been upgraded).
    pub fn incorporate(&mut self, inc: &Incorporate) -> ServiceEntry {
        let entry = ServiceEntry::from_incorporate(inc);
        self.services.insert(entry.name.clone(), entry.clone());
        entry
    }

    /// Adds a pre-built entry (used by programmatic federation setup).
    pub fn insert(&mut self, entry: ServiceEntry) {
        self.services.insert(entry.name.clone(), entry);
    }

    /// Looks a service up.
    pub fn service(&self, name: &str) -> Result<&ServiceEntry, CatalogError> {
        self.services
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownService(name.to_string()))
    }

    /// Removes a service.
    pub fn remove(&mut self, name: &str) -> Result<ServiceEntry, CatalogError> {
        self.services
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownService(name.to_string()))
    }

    /// All incorporated services, sorted by name.
    pub fn services(&self) -> impl Iterator<Item = &ServiceEntry> {
        self.services.values()
    }

    /// Number of incorporated services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when nothing has been incorporated.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msql_lang::{parse_statement, Statement};

    fn incorporate(sql: &str) -> Incorporate {
        let Statement::Incorporate(inc) = parse_statement(sql).unwrap() else { panic!() };
        inc
    }

    #[test]
    fn incorporate_records_capabilities() {
        let mut ad = AuxiliaryDirectory::new();
        let entry = ad.incorporate(&incorporate(
            "INCORPORATE SERVICE Oracle1 SITE Site1 CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT",
        ));
        assert_eq!(entry.name, "oracle1");
        assert_eq!(entry.site, "site1");
        assert!(entry.supports_2pc());
        assert_eq!(entry.create_capability(), CommitCapability::AutoCommit);
        assert_eq!(entry.insert_capability(), CommitCapability::TwoPhase);
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn site_defaults_to_service_name() {
        let mut ad = AuxiliaryDirectory::new();
        let entry = ad.incorporate(&incorporate(
            "INCORPORATE SERVICE sybase1 CONNECTMODE NOCONNECT COMMITMODE COMMIT",
        ));
        assert_eq!(entry.site, "sybase1");
        assert!(!entry.supports_2pc());
        assert!(!entry.multi_database);
    }

    #[test]
    fn reincorporation_replaces_entry() {
        let mut ad = AuxiliaryDirectory::new();
        ad.incorporate(&incorporate("INCORPORATE SERVICE s CONNECTMODE CONNECT COMMITMODE COMMIT"));
        ad.incorporate(&incorporate(
            "INCORPORATE SERVICE s CONNECTMODE CONNECT COMMITMODE NOCOMMIT",
        ));
        assert!(ad.service("s").unwrap().supports_2pc());
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn unknown_service_is_an_error() {
        let ad = AuxiliaryDirectory::new();
        assert!(matches!(ad.service("ghost"), Err(CatalogError::UnknownService(_))));
    }

    #[test]
    fn remove_service() {
        let mut ad = AuxiliaryDirectory::new();
        ad.incorporate(&incorporate("INCORPORATE SERVICE s CONNECTMODE CONNECT COMMITMODE COMMIT"));
        ad.remove("S").unwrap();
        assert!(ad.is_empty());
    }

    #[test]
    fn services_are_sorted() {
        let mut ad = AuxiliaryDirectory::new();
        for name in ["zeta", "alpha", "mid"] {
            ad.incorporate(&incorporate(&format!(
                "INCORPORATE SERVICE {name} CONNECTMODE CONNECT COMMITMODE COMMIT"
            )));
        }
        let names: Vec<&str> = ad.services().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
