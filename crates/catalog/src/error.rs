//! Catalog errors.

use std::fmt;

/// Errors raised by the dictionaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The service is not incorporated.
    UnknownService(String),
    /// The database is not registered in the GDD.
    UnknownDatabase(String),
    /// The table is not registered in the GDD.
    UnknownTable {
        /// The owning database.
        database: String,
        /// The missing table.
        table: String,
    },
    /// A requested column does not exist in the exported definition.
    UnknownColumn {
        /// The owning table.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A database name collides across services — the paper assumes database
    /// names are unique inside the federation.
    DatabaseNameCollision {
        /// The colliding database name.
        database: String,
        /// The service that already exports it.
        existing_service: String,
    },
    /// A service with that name is already incorporated.
    ServiceExists(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownService(s) => write!(f, "service `{s}` is not incorporated"),
            CatalogError::UnknownDatabase(d) => write!(f, "database `{d}` is not in the GDD"),
            CatalogError::UnknownTable { database, table } => {
                write!(f, "table `{database}.{table}` is not in the GDD")
            }
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "column `{table}.{column}` is not exported")
            }
            CatalogError::DatabaseNameCollision { database, existing_service } => write!(
                f,
                "database name `{database}` already belongs to service `{existing_service}`"
            ),
            CatalogError::ServiceExists(s) => write!(f, "service `{s}` already incorporated"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = CatalogError::UnknownTable { database: "avis".into(), table: "cars".into() };
        assert!(e.to_string().contains("avis.cars"));
    }
}
