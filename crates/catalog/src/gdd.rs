//! The Global Data Dictionary: names visible at the multidatabase level.
//!
//! The GDD stores, per database, the exported table definitions (names,
//! types, widths — §3.1). It answers the two questions the translator asks:
//!
//! * which concrete tables/columns match a *multiple identifier* such as
//!   `flight%` or `%code` within the current query scope;
//! * what is the exported definition of a given table.

use crate::error::CatalogError;
use msql_lang::{TypeName, WildName};
use std::collections::BTreeMap;

/// An exported column: name, type, width (width lives inside
/// [`TypeName::Char`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GddColumn {
    /// Column name (lowercase).
    pub name: String,
    /// Declared type.
    pub type_name: TypeName,
}

impl GddColumn {
    /// Creates a column entry.
    pub fn new(name: impl Into<String>, type_name: TypeName) -> Self {
        GddColumn { name: name.into().to_ascii_lowercase(), type_name }
    }
}

/// An exported table (or view) definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GddTable {
    /// Table name (lowercase).
    pub name: String,
    /// Exported columns in declaration order (may be a subset of the local
    /// definition after a partial IMPORT).
    pub columns: Vec<GddColumn>,
    /// True when the object is a view.
    pub is_view: bool,
}

impl GddTable {
    /// Creates a table entry.
    pub fn new(name: impl Into<String>, columns: Vec<GddColumn>) -> Self {
        GddTable { name: name.into().to_ascii_lowercase(), columns, is_view: false }
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&GddColumn> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().find(|c| c.name == lower)
    }
}

/// One database's exported schema plus the service that hosts it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GddDatabase {
    /// Hosting service name.
    pub service: String,
    /// Exported tables by name.
    pub tables: BTreeMap<String, GddTable>,
}

/// The Global Data Dictionary.
#[derive(Debug, Clone, Default)]
pub struct GlobalDataDictionary {
    databases: BTreeMap<String, GddDatabase>,
}

impl GlobalDataDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        GlobalDataDictionary::default()
    }

    /// Registers a database as hosted by `service`. Database names must be
    /// unique inside the federation (paper §3.1); registering the same
    /// database for the same service is idempotent.
    pub fn register_database(&mut self, database: &str, service: &str) -> Result<(), CatalogError> {
        let db = database.to_ascii_lowercase();
        let svc = service.to_ascii_lowercase();
        if let Some(existing) = self.databases.get(&db) {
            if existing.service != svc {
                return Err(CatalogError::DatabaseNameCollision {
                    database: db,
                    existing_service: existing.service.clone(),
                });
            }
            return Ok(());
        }
        self.databases.insert(db, GddDatabase { service: svc, tables: BTreeMap::new() });
        Ok(())
    }

    /// Removes a database and its exported schema.
    pub fn drop_database(&mut self, database: &str) -> Result<(), CatalogError> {
        self.databases
            .remove(&database.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))
    }

    /// Installs (or replaces — "The IMPORT operation replaces the definition
    /// of previously imported database objects") a table definition.
    pub fn put_table(&mut self, database: &str, table: GddTable) -> Result<(), CatalogError> {
        let db = self
            .databases
            .get_mut(&database.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))?;
        db.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Removes one exported table.
    pub fn drop_table(&mut self, database: &str, table: &str) -> Result<(), CatalogError> {
        let db = self
            .databases
            .get_mut(&database.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))?;
        db.tables.remove(&table.to_ascii_lowercase()).map(|_| ()).ok_or_else(|| {
            CatalogError::UnknownTable { database: database.to_string(), table: table.to_string() }
        })
    }

    /// The service hosting a database.
    pub fn service_of(&self, database: &str) -> Result<&str, CatalogError> {
        self.databases
            .get(&database.to_ascii_lowercase())
            .map(|d| d.service.as_str())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))
    }

    /// True when the database is registered.
    pub fn has_database(&self, database: &str) -> bool {
        self.databases.contains_key(&database.to_ascii_lowercase())
    }

    /// All registered database names, sorted.
    pub fn database_names(&self) -> Vec<&str> {
        self.databases.keys().map(|k| k.as_str()).collect()
    }

    /// The exported tables of a database, sorted by name.
    pub fn tables(&self, database: &str) -> Result<Vec<&GddTable>, CatalogError> {
        self.databases
            .get(&database.to_ascii_lowercase())
            .map(|d| d.tables.values().collect())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))
    }

    /// One exported table definition.
    pub fn table(&self, database: &str, table: &str) -> Result<&GddTable, CatalogError> {
        self.databases
            .get(&database.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownDatabase(database.to_string()))?
            .tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownTable {
                database: database.to_string(),
                table: table.to_string(),
            })
    }

    /// Tables matching a (possibly wild) name within one database.
    pub fn match_tables(
        &self,
        database: &str,
        pattern: &WildName,
    ) -> Result<Vec<&GddTable>, CatalogError> {
        Ok(self.tables(database)?.into_iter().filter(|t| pattern.matches(&t.name)).collect())
    }

    /// Columns of one table matching a (possibly wild) name.
    pub fn match_columns<'a>(
        &'a self,
        table: &'a GddTable,
        pattern: &WildName,
    ) -> Vec<&'a GddColumn> {
        table.columns.iter().filter(|c| pattern.matches(&c.name)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_with_appendix_schemas() -> GlobalDataDictionary {
        // The paper's appendix: avis.cars and national.vehicle.
        let mut gdd = GlobalDataDictionary::new();
        gdd.register_database("avis", "ingres1").unwrap();
        gdd.register_database("national", "oracle1").unwrap();
        gdd.put_table(
            "avis",
            GddTable::new(
                "cars",
                vec![
                    GddColumn::new("code", TypeName::Int),
                    GddColumn::new("cartype", TypeName::Char(16)),
                    GddColumn::new("rate", TypeName::Float),
                    GddColumn::new("carst", TypeName::Char(10)),
                ],
            ),
        )
        .unwrap();
        gdd.put_table(
            "national",
            GddTable::new(
                "vehicle",
                vec![
                    GddColumn::new("vcode", TypeName::Int),
                    GddColumn::new("vty", TypeName::Char(16)),
                    GddColumn::new("vstat", TypeName::Char(10)),
                ],
            ),
        )
        .unwrap();
        gdd
    }

    #[test]
    fn register_and_lookup() {
        let gdd = dict_with_appendix_schemas();
        assert_eq!(gdd.service_of("avis").unwrap(), "ingres1");
        assert_eq!(gdd.table("avis", "cars").unwrap().columns.len(), 4);
        assert!(gdd.table("avis", "vehicle").is_err());
        assert_eq!(gdd.database_names(), vec!["avis", "national"]);
    }

    #[test]
    fn database_name_collision_rejected() {
        let mut gdd = dict_with_appendix_schemas();
        assert!(matches!(
            gdd.register_database("avis", "different_svc"),
            Err(CatalogError::DatabaseNameCollision { .. })
        ));
        // Same service: idempotent.
        gdd.register_database("avis", "ingres1").unwrap();
    }

    #[test]
    fn percent_code_matches_code_and_vcode() {
        // The paper's §2 implicit semantic variable.
        let gdd = dict_with_appendix_schemas();
        let pattern = WildName::new("%code");
        let cars = gdd.table("avis", "cars").unwrap();
        let vehicle = gdd.table("national", "vehicle").unwrap();
        let cars_hits: Vec<&str> =
            gdd.match_columns(cars, &pattern).iter().map(|c| c.name.as_str()).collect();
        let vehicle_hits: Vec<&str> =
            gdd.match_columns(vehicle, &pattern).iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cars_hits, vec!["code"]);
        assert_eq!(vehicle_hits, vec!["vcode"]);
    }

    #[test]
    fn match_tables_with_wildcard() {
        let mut gdd = dict_with_appendix_schemas();
        gdd.register_database("continental", "svc3").unwrap();
        gdd.put_table(
            "continental",
            GddTable::new("flights", vec![GddColumn::new("flnu", TypeName::Int)]),
        )
        .unwrap();
        gdd.put_table(
            "continental",
            GddTable::new("f838", vec![GddColumn::new("seatnu", TypeName::Int)]),
        )
        .unwrap();
        let hits = gdd.match_tables("continental", &WildName::new("flight%")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "flights");
    }

    #[test]
    fn put_table_replaces_definition() {
        let mut gdd = dict_with_appendix_schemas();
        gdd.put_table("avis", GddTable::new("cars", vec![GddColumn::new("code", TypeName::Int)]))
            .unwrap();
        assert_eq!(gdd.table("avis", "cars").unwrap().columns.len(), 1);
    }

    #[test]
    fn drop_table_and_database() {
        let mut gdd = dict_with_appendix_schemas();
        gdd.drop_table("avis", "cars").unwrap();
        assert!(gdd.table("avis", "cars").is_err());
        gdd.drop_database("avis").unwrap();
        assert!(!gdd.has_database("avis"));
        assert!(matches!(gdd.drop_database("avis"), Err(CatalogError::UnknownDatabase(_))));
    }
}
