//! `IMPORT DATABASE` execution.
//!
//! §3.1: *"If the table name is not specified, the information about the
//! structure of all tables designated as public, is imported. If the table
//! name is specified, but column names are not, the whole table definition is
//! imported. Finally, if column names are specified, partial table
//! definitions can be imported. ... The IMPORT operation replaces the
//! definition of previously imported database objects, if necessary."*
//!
//! The exporting service's Local Conceptual Schema is handed in as a slice of
//! [`GddTable`]s (the multidatabase layer fetches it over the network); this
//! module is a pure function from that schema plus the IMPORT statement to
//! GDD updates.

use crate::error::CatalogError;
use crate::gdd::{GddTable, GlobalDataDictionary};
use msql_lang::{Import, ImportItem};

/// Applies an IMPORT statement. `local_schema` is the exporting database's
/// public Local Conceptual Schema. Returns the names of the tables imported.
pub fn apply_import(
    gdd: &mut GlobalDataDictionary,
    import: &Import,
    local_schema: &[GddTable],
) -> Result<Vec<String>, CatalogError> {
    gdd.register_database(&import.database, &import.service)?;
    let find = |name: &str, want_view: bool| -> Result<GddTable, CatalogError> {
        let lower = name.to_ascii_lowercase();
        local_schema.iter().find(|t| t.name == lower && t.is_view == want_view).cloned().ok_or_else(
            || CatalogError::UnknownTable {
                database: import.database.clone(),
                table: name.to_string(),
            },
        )
    };

    let mut imported = Vec::new();
    match &import.item {
        ImportItem::AllPublicTables => {
            for t in local_schema {
                gdd.put_table(&import.database, t.clone())?;
                imported.push(t.name.clone());
            }
        }
        ImportItem::Table { table, columns } => {
            let def = restrict(find(table, false)?, columns)?;
            imported.push(def.name.clone());
            gdd.put_table(&import.database, def)?;
        }
        ImportItem::View { view, columns } => {
            let def = restrict(find(view, true)?, columns)?;
            imported.push(def.name.clone());
            gdd.put_table(&import.database, def)?;
        }
    }
    Ok(imported)
}

/// Restricts a definition to the requested columns (empty = all).
fn restrict(mut table: GddTable, columns: &[String]) -> Result<GddTable, CatalogError> {
    if columns.is_empty() {
        return Ok(table);
    }
    let mut kept = Vec::with_capacity(columns.len());
    for want in columns {
        let lower = want.to_ascii_lowercase();
        match table.columns.iter().find(|c| c.name == lower) {
            Some(c) => kept.push(c.clone()),
            None => {
                return Err(CatalogError::UnknownColumn {
                    table: table.name.clone(),
                    column: want.clone(),
                })
            }
        }
    }
    table.columns = kept;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdd::GddColumn;
    use msql_lang::{parse_statement, Statement, TypeName};

    fn import_stmt(sql: &str) -> Import {
        let Statement::Import(i) = parse_statement(sql).unwrap() else { panic!() };
        i
    }

    fn avis_lcs() -> Vec<GddTable> {
        let mut view = GddTable::new("available_cars", vec![GddColumn::new("code", TypeName::Int)]);
        view.is_view = true;
        vec![
            GddTable::new(
                "cars",
                vec![
                    GddColumn::new("code", TypeName::Int),
                    GddColumn::new("cartype", TypeName::Char(16)),
                    GddColumn::new("rate", TypeName::Float),
                ],
            ),
            GddTable::new("clients", vec![GddColumn::new("name", TypeName::Char(30))]),
            view,
        ]
    }

    #[test]
    fn import_all_public_tables() {
        let mut gdd = GlobalDataDictionary::new();
        let imported = apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1"),
            &avis_lcs(),
        )
        .unwrap();
        assert_eq!(imported.len(), 3);
        assert_eq!(gdd.service_of("avis").unwrap(), "ingres1");
        assert!(gdd.table("avis", "cars").is_ok());
        assert!(gdd.table("avis", "clients").is_ok());
    }

    #[test]
    fn import_single_table() {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars"),
            &avis_lcs(),
        )
        .unwrap();
        assert!(gdd.table("avis", "cars").is_ok());
        assert!(gdd.table("avis", "clients").is_err());
    }

    #[test]
    fn partial_column_import() {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(
            &mut gdd,
            &import_stmt(
                "IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code, rate)",
            ),
            &avis_lcs(),
        )
        .unwrap();
        let t = gdd.table("avis", "cars").unwrap();
        assert_eq!(t.columns.len(), 2);
        assert_eq!(t.columns[0].name, "code");
        assert_eq!(t.columns[1].name, "rate");
    }

    #[test]
    fn import_view() {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 VIEW available_cars"),
            &avis_lcs(),
        )
        .unwrap();
        assert!(gdd.table("avis", "available_cars").unwrap().is_view);
    }

    #[test]
    fn import_replaces_previous_definition() {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars"),
            &avis_lcs(),
        )
        .unwrap();
        assert_eq!(gdd.table("avis", "cars").unwrap().columns.len(), 3);
        apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code)"),
            &avis_lcs(),
        )
        .unwrap();
        assert_eq!(gdd.table("avis", "cars").unwrap().columns.len(), 1);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut gdd = GlobalDataDictionary::new();
        assert!(matches!(
            apply_import(
                &mut gdd,
                &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE ghost"),
                &avis_lcs(),
            ),
            Err(CatalogError::UnknownTable { .. })
        ));
        assert!(matches!(
            apply_import(
                &mut gdd,
                &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (ghost)"),
                &avis_lcs(),
            ),
            Err(CatalogError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn importing_a_view_as_table_fails() {
        let mut gdd = GlobalDataDictionary::new();
        assert!(apply_import(
            &mut gdd,
            &import_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE available_cars"),
            &avis_lcs(),
        )
        .is_err());
    }
}
