//! # catalog — Auxiliary Directory and Global Data Dictionary
//!
//! The two multidatabase-level dictionaries of the paper (§3.1, §4.2):
//!
//! * the **Auxiliary Directory** ([`ad::AuxiliaryDirectory`]) stores, per
//!   service, "the information needed to access the service, including its
//!   name, the address of the service site, the information about the access
//!   protocol and the information about the commit mode for the DML and DDL
//!   statements" — maintained by `INCORPORATE SERVICE`;
//! * the **Global Data Dictionary** ([`gdd::GlobalDataDictionary`]) is "a
//!   repository for the names of the database objects that are visible at the
//!   multidatabase level ... the names of tables together with the names,
//!   types and widths of their columns", used "to detect multiple identifiers
//!   in MSQL queries and to perform the substitution of implicit semantic
//!   variables" — populated by `IMPORT DATABASE`.
//!
//! Neither dictionary knows about the execution engine; `IMPORT` execution
//! is therefore a pure function from an import statement plus the exporting
//! service's local conceptual schema to GDD updates ([`import::apply_import`]).

pub mod ad;
pub mod error;
pub mod gdd;
pub mod import;

pub use ad::{AuxiliaryDirectory, ServiceEntry};
pub use error::CatalogError;
pub use gdd::{GddColumn, GddTable, GlobalDataDictionary};
pub use import::apply_import;
