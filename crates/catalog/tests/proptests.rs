//! Property tests for the dictionaries: IMPORT laws (idempotence,
//! replacement, restriction) over arbitrary Local Conceptual Schemas.

use catalog::{apply_import, GddColumn, GddTable, GlobalDataDictionary};
use msql_lang::{parse_statement, Import, Statement, TypeName};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn lcs_strategy() -> impl Strategy<Value = Vec<GddTable>> {
    proptest::collection::vec((ident(), proptest::collection::vec(ident(), 1..6)), 1..5).prop_map(
        |tables| {
            let mut seen_tables = Vec::new();
            tables
                .into_iter()
                .filter(|(name, _)| {
                    if seen_tables.contains(name) {
                        false
                    } else {
                        seen_tables.push(name.clone());
                        true
                    }
                })
                .map(|(name, cols)| {
                    let mut seen = Vec::new();
                    let columns = cols
                        .into_iter()
                        .filter(|c| {
                            if seen.contains(c) {
                                false
                            } else {
                                seen.push(c.clone());
                                true
                            }
                        })
                        .map(|c| GddColumn::new(c, TypeName::Char(0)))
                        .collect();
                    GddTable::new(name, columns)
                })
                .collect()
        },
    )
}

fn import_all() -> Import {
    let Statement::Import(i) = parse_statement("IMPORT DATABASE db FROM SERVICE svc").unwrap()
    else {
        unreachable!()
    };
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn import_all_is_idempotent(lcs in lcs_strategy()) {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(&mut gdd, &import_all(), &lcs).unwrap();
        let first: Vec<GddTable> =
            gdd.tables("db").unwrap().into_iter().cloned().collect();
        apply_import(&mut gdd, &import_all(), &lcs).unwrap();
        let second: Vec<GddTable> =
            gdd.tables("db").unwrap().into_iter().cloned().collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn import_all_exports_exactly_the_lcs(lcs in lcs_strategy()) {
        let mut gdd = GlobalDataDictionary::new();
        let imported = apply_import(&mut gdd, &import_all(), &lcs).unwrap();
        prop_assert_eq!(imported.len(), lcs.len());
        for t in &lcs {
            let exported = gdd.table("db", &t.name).unwrap();
            prop_assert_eq!(exported, t);
        }
    }

    #[test]
    fn partial_import_restricts_then_full_import_restores(lcs in lcs_strategy()) {
        let table = &lcs[0];
        prop_assume!(!table.columns.is_empty());
        let first_col = table.columns[0].name.clone();
        let mut gdd = GlobalDataDictionary::new();

        let Statement::Import(partial) = parse_statement(&format!(
            "IMPORT DATABASE db FROM SERVICE svc TABLE {} COLUMN ({first_col})",
            table.name
        ))
        .unwrap() else { unreachable!() };
        apply_import(&mut gdd, &partial, &lcs).unwrap();
        prop_assert_eq!(gdd.table("db", &table.name).unwrap().columns.len(), 1);

        let Statement::Import(full) = parse_statement(&format!(
            "IMPORT DATABASE db FROM SERVICE svc TABLE {}",
            table.name
        ))
        .unwrap() else { unreachable!() };
        apply_import(&mut gdd, &full, &lcs).unwrap();
        prop_assert_eq!(gdd.table("db", &table.name).unwrap(), table);
    }

    #[test]
    fn wildcard_matching_over_gdd_is_complete(lcs in lcs_strategy()) {
        let mut gdd = GlobalDataDictionary::new();
        apply_import(&mut gdd, &import_all(), &lcs).unwrap();
        // `%` matches every exported table.
        let all = gdd.match_tables("db", &msql_lang::WildName::new("%")).unwrap();
        prop_assert_eq!(all.len(), lcs.len());
        // Each table's exact name matches exactly itself.
        for t in &lcs {
            let hits = gdd.match_tables("db", &msql_lang::WildName::new(t.name.clone())).unwrap();
            prop_assert_eq!(hits.len(), 1);
            prop_assert_eq!(&hits[0].name, &t.name);
        }
    }
}
