//! Columnar binary encoding for result sets.
//!
//! The text proto ships partials row-at-a-time as escaped strings; here the
//! same [`ResultSet`] is laid out column-wise so the encoder can pick a
//! representation per column:
//!
//! ```text
//! varint ncols
//! per column:  str name · type byte (0 int, 1 float, 2 char + varint width,
//!                                    3 bool, 4 date)
//! varint nrows
//! per column:
//!   encoding byte        0 typed ints (zigzag varints)
//!                        1 typed floats (f64 LE bits)
//!                        2 typed bools (bit-packed)
//!                        3 plain strings
//!                        4 dictionary strings (dict + varint indexes)
//!                        5 mixed (per-value tag byte)
//!   NULL bitmap          ceil(nrows/8) bytes, LSB-first; set bit = non-NULL
//!   values               non-NULL values only, in row order
//! ```
//!
//! Typed encodings drop the per-value tag entirely; the dictionary encoding
//! is chosen over plain strings only when the encoder's size estimate says
//! it is smaller (repeated strings — the common case for type/status
//! columns). No escaping anywhere: strings are length-prefixed.

use super::varint::{write_f64, write_i64, write_str, write_u64, Reader};
use crate::error::MdbsError;
use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::value::{DataType, Value};
use std::collections::HashMap;

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const TYPE_CHAR: u8 = 2;
const TYPE_BOOL: u8 = 3;
const TYPE_DATE: u8 = 4;

const COL_INTS: u8 = 0;
const COL_FLOATS: u8 = 1;
const COL_BOOLS: u8 = 2;
const COL_STRS: u8 = 3;
const COL_DICT: u8 = 4;
const COL_MIXED: u8 = 5;

const MIXED_INT: u8 = 0;
const MIXED_FLOAT: u8 = 1;
const MIXED_STR: u8 = 2;
const MIXED_BOOL: u8 = 3;

/// Encodes a result set into `buf`.
pub fn write_result_set(buf: &mut Vec<u8>, rs: &ResultSet) {
    write_u64(buf, rs.columns.len() as u64);
    for col in &rs.columns {
        write_str(buf, &col.name);
        match col.data_type {
            DataType::Int => buf.push(TYPE_INT),
            DataType::Float => buf.push(TYPE_FLOAT),
            DataType::Char(w) => {
                buf.push(TYPE_CHAR);
                write_u64(buf, u64::from(w));
            }
            DataType::Bool => buf.push(TYPE_BOOL),
            DataType::Date => buf.push(TYPE_DATE),
        }
    }
    write_u64(buf, rs.rows.len() as u64);
    for (c, _) in rs.columns.iter().enumerate() {
        write_column(buf, rs, c);
    }
}

/// Encodes a result set as a standalone byte vector.
pub fn encode_result_set(rs: &ResultSet) -> Vec<u8> {
    let mut buf = Vec::new();
    write_result_set(&mut buf, rs);
    buf
}

fn write_column(buf: &mut Vec<u8>, rs: &ResultSet, c: usize) {
    let values: Vec<&Value> = rs.rows.iter().map(|row| &row[c]).collect();
    let nonnull: Vec<&Value> =
        values.iter().copied().filter(|v| !matches!(v, Value::Null)).collect();
    let encoding = pick_encoding(&nonnull);
    buf.push(encoding);
    // NULL bitmap: LSB-first, a set bit means the row has a value.
    let mut bitmap = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if !matches!(v, Value::Null) {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bitmap);
    match encoding {
        COL_INTS => {
            for v in &nonnull {
                if let Value::Int(i) = v {
                    write_i64(buf, *i);
                }
            }
        }
        COL_FLOATS => {
            for v in &nonnull {
                if let Value::Float(f) = v {
                    write_f64(buf, *f);
                }
            }
        }
        COL_BOOLS => {
            let mut bits = vec![0u8; nonnull.len().div_ceil(8)];
            for (i, v) in nonnull.iter().enumerate() {
                if matches!(v, Value::Bool(true)) {
                    bits[i / 8] |= 1 << (i % 8);
                }
            }
            buf.extend_from_slice(&bits);
        }
        COL_STRS => {
            for v in &nonnull {
                if let Value::Str(s) = v {
                    write_str(buf, s);
                }
            }
        }
        COL_DICT => {
            let (dict, indexes) = build_dict(&nonnull);
            write_u64(buf, dict.len() as u64);
            for entry in &dict {
                write_str(buf, entry);
            }
            for ix in indexes {
                write_u64(buf, ix as u64);
            }
        }
        COL_MIXED => {
            for v in &nonnull {
                match v {
                    Value::Int(i) => {
                        buf.push(MIXED_INT);
                        write_i64(buf, *i);
                    }
                    Value::Float(f) => {
                        buf.push(MIXED_FLOAT);
                        write_f64(buf, *f);
                    }
                    Value::Str(s) => {
                        buf.push(MIXED_STR);
                        write_str(buf, s);
                    }
                    Value::Bool(b) => {
                        buf.push(MIXED_BOOL);
                        buf.push(u8::from(*b));
                    }
                    Value::Null => unreachable!("nulls filtered into the bitmap"),
                }
            }
        }
        other => unreachable!("unknown column encoding {other}"),
    }
}

fn pick_encoding(nonnull: &[&Value]) -> u8 {
    if nonnull.is_empty() {
        return COL_MIXED;
    }
    if nonnull.iter().all(|v| matches!(v, Value::Int(_))) {
        return COL_INTS;
    }
    if nonnull.iter().all(|v| matches!(v, Value::Float(_))) {
        return COL_FLOATS;
    }
    if nonnull.iter().all(|v| matches!(v, Value::Bool(_))) {
        return COL_BOOLS;
    }
    if nonnull.iter().all(|v| matches!(v, Value::Str(_))) {
        let (dict, indexes) = build_dict(nonnull);
        let plain: usize = nonnull
            .iter()
            .map(|v| if let Value::Str(s) = v { varint_len(s.len() as u64) + s.len() } else { 0 })
            .sum();
        let dict_cost: usize = varint_len(dict.len() as u64)
            + dict.iter().map(|s| varint_len(s.len() as u64) + s.len()).sum::<usize>()
            + indexes.iter().map(|&ix| varint_len(ix as u64)).sum::<usize>();
        return if dict_cost < plain { COL_DICT } else { COL_STRS };
    }
    COL_MIXED
}

fn build_dict<'a>(nonnull: &[&'a Value]) -> (Vec<&'a str>, Vec<usize>) {
    let mut dict: Vec<&str> = Vec::new();
    let mut seen: HashMap<&str, usize> = HashMap::new();
    let mut indexes = Vec::with_capacity(nonnull.len());
    for v in nonnull {
        if let Value::Str(s) = v {
            let ix = *seen.entry(s.as_str()).or_insert_with(|| {
                dict.push(s.as_str());
                dict.len() - 1
            });
            indexes.push(ix);
        }
    }
    (dict, indexes)
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decodes a result set from the reader's current position.
pub fn read_result_set(r: &mut Reader) -> Result<ResultSet, MdbsError> {
    let ncols = r.u64()? as usize;
    if ncols > 1 << 16 {
        return Err(MdbsError::Wire(format!("implausible column count {ncols}")));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.string()?;
        let data_type = match r.u8()? {
            TYPE_INT => DataType::Int,
            TYPE_FLOAT => DataType::Float,
            TYPE_CHAR => DataType::Char(u32::try_from(r.u64()?).map_err(|_| {
                MdbsError::Wire(format!("char width overflows u32 at byte {}", r.pos()))
            })?),
            TYPE_BOOL => DataType::Bool,
            TYPE_DATE => DataType::Date,
            other => {
                return Err(MdbsError::Wire(format!(
                    "unknown column type tag {other} at byte {}",
                    r.pos()
                )));
            }
        };
        columns.push(ColumnMeta { name, data_type });
    }
    let nrows = r.u64()? as usize;
    // Each row needs at least one bitmap bit per column; anything claiming
    // more rows than the remaining bytes could hold is corrupt.
    if nrows > r.remaining().saturating_mul(8).saturating_add(65536) {
        return Err(MdbsError::Wire(format!("implausible row count {nrows}")));
    }
    let mut cols_data: Vec<Vec<Value>> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols_data.push(read_column(r, nrows)?);
    }
    let mut rows = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for col in cols_data.iter_mut() {
            row.push(std::mem::replace(&mut col[i], Value::Null));
        }
        rows.push(row);
    }
    Ok(ResultSet { columns, rows })
}

/// Decodes a standalone columnar buffer, requiring exact consumption.
pub fn decode_result_set(bytes: &[u8]) -> Result<ResultSet, MdbsError> {
    let mut r = Reader::new(bytes);
    let rs = read_result_set(&mut r)?;
    r.finish()?;
    Ok(rs)
}

fn read_column(r: &mut Reader, nrows: usize) -> Result<Vec<Value>, MdbsError> {
    let encoding = r.u8()?;
    let bitmap = r.bytes(nrows.div_ceil(8))?.to_vec();
    let present = |i: usize| -> bool { bitmap[i / 8] & (1 << (i % 8)) != 0 };
    let nonnull = (0..nrows).filter(|&i| present(i)).count();
    let mut values: Vec<Value> = Vec::with_capacity(nonnull);
    match encoding {
        COL_INTS => {
            for _ in 0..nonnull {
                values.push(Value::Int(r.i64()?));
            }
        }
        COL_FLOATS => {
            for _ in 0..nonnull {
                values.push(Value::Float(r.f64()?));
            }
        }
        COL_BOOLS => {
            let bits = r.bytes(nonnull.div_ceil(8))?;
            for i in 0..nonnull {
                values.push(Value::Bool(bits[i / 8] & (1 << (i % 8)) != 0));
            }
        }
        COL_STRS => {
            for _ in 0..nonnull {
                values.push(Value::Str(r.string()?));
            }
        }
        COL_DICT => {
            let dict_len = r.u64()? as usize;
            if dict_len > nonnull {
                return Err(MdbsError::Wire(format!(
                    "dictionary larger than column ({dict_len} > {nonnull})"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(r.string()?);
            }
            for _ in 0..nonnull {
                let ix = r.u64()? as usize;
                let entry = dict.get(ix).ok_or_else(|| {
                    MdbsError::Wire(format!("dictionary index {ix} out of range {dict_len}"))
                })?;
                values.push(Value::Str(entry.clone()));
            }
        }
        COL_MIXED => {
            for _ in 0..nonnull {
                let v = match r.u8()? {
                    MIXED_INT => Value::Int(r.i64()?),
                    MIXED_FLOAT => Value::Float(r.f64()?),
                    MIXED_STR => Value::Str(r.string()?),
                    MIXED_BOOL => match r.u8()? {
                        0 => Value::Bool(false),
                        1 => Value::Bool(true),
                        other => {
                            return Err(MdbsError::Wire(format!("bad bool byte {other}")));
                        }
                    },
                    other => {
                        return Err(MdbsError::Wire(format!(
                            "unknown value tag {other} at byte {}",
                            r.pos()
                        )));
                    }
                };
                values.push(v);
            }
        }
        other => {
            return Err(MdbsError::Wire(format!("unknown column encoding {other}")));
        }
    }
    // Interleave NULLs back into row order.
    let mut out = Vec::with_capacity(nrows);
    let mut next = values.into_iter();
    for i in 0..nrows {
        out.push(if present(i) { next.next().expect("counted above") } else { Value::Null });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rs: &ResultSet) {
        let bytes = encode_result_set(rs);
        assert_eq!(&decode_result_set(&bytes).unwrap(), rs);
    }

    fn cols(specs: &[(&str, DataType)]) -> Vec<ColumnMeta> {
        specs.iter().map(|(n, t)| ColumnMeta { name: n.to_string(), data_type: *t }).collect()
    }

    #[test]
    fn typed_columns_roundtrip() {
        roundtrip(&ResultSet {
            columns: cols(&[
                ("code", DataType::Int),
                ("rate", DataType::Float),
                ("ok", DataType::Bool),
            ]),
            rows: vec![
                vec![Value::Int(i64::MIN), Value::Float(-0.0), Value::Bool(true)],
                vec![Value::Int(i64::MAX), Value::Float(1.0 / 3.0), Value::Bool(false)],
                vec![Value::Int(0), Value::Float(f64::INFINITY), Value::Bool(true)],
            ],
        });
    }

    #[test]
    fn nulls_interleave_via_bitmap() {
        roundtrip(&ResultSet {
            columns: cols(&[("a", DataType::Int), ("b", DataType::Char(8))]),
            rows: vec![
                vec![Value::Null, Value::Str("x".into())],
                vec![Value::Int(7), Value::Null],
                vec![Value::Null, Value::Null],
                vec![Value::Int(-7), Value::Str("y|z\n\\".into())],
            ],
        });
    }

    #[test]
    fn repeated_strings_choose_the_dictionary() {
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Str(if i % 2 == 0 { "available" } else { "rented" }.into())])
            .collect();
        let rs = ResultSet { columns: cols(&[("status", DataType::Char(16))]), rows };
        let bytes = encode_result_set(&rs);
        // header ~ name + type; column = enc byte + 13-byte bitmap + dict.
        // Plain would cost 100 * 10+ bytes; the dictionary stays near 150.
        assert!(bytes.len() < 200, "dictionary not chosen: {} bytes", bytes.len());
        assert_eq!(decode_result_set(&bytes).unwrap(), rs);
    }

    #[test]
    fn distinct_strings_stay_plain() {
        let rows: Vec<Vec<Value>> =
            (0..50).map(|i| vec![Value::Str(format!("unique-{i}"))]).collect();
        roundtrip(&ResultSet { columns: cols(&[("s", DataType::Char(16))]), rows });
    }

    #[test]
    fn mixed_type_column_roundtrips() {
        roundtrip(&ResultSet {
            columns: cols(&[("v", DataType::Char(32))]),
            rows: vec![
                vec![Value::Int(1)],
                vec![Value::Str("héllo".into())],
                vec![Value::Bool(false)],
                vec![Value::Float(2.5)],
                vec![Value::Null],
            ],
        });
    }

    #[test]
    fn empty_shapes_roundtrip() {
        roundtrip(&ResultSet { columns: vec![], rows: vec![] });
        roundtrip(&ResultSet { columns: cols(&[("a", DataType::Int)]), rows: vec![] });
        roundtrip(&ResultSet {
            columns: cols(&[("a", DataType::Date)]),
            rows: vec![vec![Value::Null]],
        });
    }

    #[test]
    fn corrupt_buffers_error_cleanly() {
        let rs = ResultSet {
            columns: cols(&[("a", DataType::Int)]),
            rows: vec![vec![Value::Int(5)], vec![Value::Int(6)]],
        };
        let bytes = encode_result_set(&rs);
        for cut in 0..bytes.len() {
            assert!(decode_result_set(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_result_set(&trailing).is_err());
    }

    #[test]
    fn dict_index_out_of_range_rejected() {
        // One column, one row: dict with 1 entry but index 5.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1); // ncols
        write_str(&mut buf, "s");
        buf.push(TYPE_CHAR);
        write_u64(&mut buf, 8);
        write_u64(&mut buf, 1); // nrows
        buf.push(COL_DICT);
        buf.push(0b0000_0001); // bitmap: present
        write_u64(&mut buf, 1); // dict len
        write_str(&mut buf, "only");
        write_u64(&mut buf, 5); // bad index
        assert!(decode_result_set(&buf).is_err());
    }
}
