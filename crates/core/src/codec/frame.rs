//! Binary frames for the engine ↔ LAM protocol.
//!
//! One frame per message, mirroring [`crate::proto`] variant-for-variant:
//!
//! ```text
//! 0xB1 · version 0x01 · flags (bit0 = correlation id follows)
//! [varint correlation id]
//! tag byte · fields
//! ```
//!
//! Requests use tags `0x01..=0x11` (declaration order in `proto.rs`, with
//! later additions appended),
//! responses `0x81..=0x85`. Result-set payloads travel as *payload blocks*:
//! a canonical payload (one produced by `wire::encode_result_set`) ships
//! columnar (`codec::columnar`); any other string — hand-built payloads,
//! unusual whitespace — falls back to a verbatim length-prefixed string, so
//! `decode(encode(x)) == x` holds for every input, bit for bit. Frames are
//! encoded into buffers leased from a [`BufferPool`] and must decode with
//! exact consumption: trailing bytes are an error.

use super::columnar;
use super::varint::{write_str, write_u64, Reader};
use crate::error::MdbsError;
use crate::proto::{Request, Response, TaskMode};
use crate::wire;
use netsim::{BufferPool, PooledBuf};

/// First byte of every binary frame (never a printable ASCII byte, so text
/// and binary bodies cannot be confused).
pub const MAGIC: u8 = 0xB1;
/// Frame grammar version.
pub const VERSION: u8 = 0x01;

const FLAG_CORRELATED: u8 = 0x01;

const REQ_BEGIN: u8 = 0x01;
const REQ_EXEC: u8 = 0x02;
const REQ_PREPARE: u8 = 0x03;
const REQ_TASK: u8 = 0x04;
const REQ_COMMIT: u8 = 0x05;
const REQ_ABORT: u8 = 0x06;
const REQ_RESOLVE: u8 = 0x07;
const REQ_COMPENSATE: u8 = 0x08;
const REQ_PARTIAL: u8 = 0x09;
const REQ_SCHEMA: u8 = 0x0A;
const REQ_LOAD: u8 = 0x0B;
const REQ_DROPTEMP: u8 = 0x0C;
const REQ_LOADMANY: u8 = 0x0D;
const REQ_DROPMANY: u8 = 0x0E;
const REQ_PING: u8 = 0x0F;
const REQ_SHUTDOWN: u8 = 0x10;
const REQ_STATS: u8 = 0x11;
const REQ_PARTIALAGG: u8 = 0x12;

const RESP_TASKDONE: u8 = 0x81;
const RESP_PARTIALDONE: u8 = 0x82;
const RESP_OK: u8 = 0x83;
const RESP_OKPAYLOAD: u8 = 0x84;
const RESP_ERR: u8 = 0x85;
const RESP_PARTIALAGGDONE: u8 = 0x86;

const PAYLOAD_VERBATIM: u8 = 0;
const PAYLOAD_COLUMNAR: u8 = 1;

/// True when the body starts like a binary frame (used by servers to pick a
/// decode path; the `Body` enum already distinguishes, this is a guard for
/// raw byte handling).
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.first() == Some(&MAGIC)
}

fn write_header(buf: &mut Vec<u8>, corr: Option<u64>) {
    buf.push(MAGIC);
    buf.push(VERSION);
    match corr {
        Some(id) => {
            buf.push(FLAG_CORRELATED);
            write_u64(buf, id);
        }
        None => buf.push(0),
    }
}

fn read_header(r: &mut Reader) -> Result<Option<u64>, MdbsError> {
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(MdbsError::Wire(format!("not a binary frame (magic {magic:#04x})")));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(MdbsError::Wire(format!("unsupported frame version {version}")));
    }
    let flags = r.u8()?;
    if flags & !FLAG_CORRELATED != 0 {
        return Err(MdbsError::Wire(format!("unknown frame flags {flags:#04x}")));
    }
    if flags & FLAG_CORRELATED != 0 {
        Ok(Some(r.u64()?))
    } else {
        Ok(None)
    }
}

/// Extracts the correlation id from a frame without decoding the rest —
/// the server's reply-cache check and the client's response matching both
/// need only the id.
pub fn peek_correlation(bytes: &[u8]) -> Option<u64> {
    read_header(&mut Reader::new(bytes)).ok().flatten()
}

/// Payload block: canonical result sets go columnar, everything else ships
/// verbatim so arbitrary strings survive exactly.
fn write_payload(buf: &mut Vec<u8>, payload: &str) {
    if let Ok(rs) = wire::decode_result_set(payload) {
        if wire::encode_result_set(&rs) == payload {
            buf.push(PAYLOAD_COLUMNAR);
            columnar::write_result_set(buf, &rs);
            return;
        }
    }
    buf.push(PAYLOAD_VERBATIM);
    write_str(buf, payload);
}

fn read_payload(r: &mut Reader) -> Result<String, MdbsError> {
    match r.u8()? {
        PAYLOAD_VERBATIM => r.string(),
        PAYLOAD_COLUMNAR => Ok(wire::encode_result_set(&columnar::read_result_set(r)?)),
        other => Err(MdbsError::Wire(format!("unknown payload block tag {other}"))),
    }
}

fn write_opt_str(buf: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            buf.push(1);
            write_str(buf, s);
        }
        None => buf.push(0),
    }
}

fn read_opt_str(r: &mut Reader) -> Result<Option<String>, MdbsError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.string()?)),
        other => Err(MdbsError::Wire(format!("bad presence byte {other}"))),
    }
}

fn write_opt_payload(buf: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            buf.push(1);
            write_payload(buf, s);
        }
        None => buf.push(0),
    }
}

fn read_opt_payload(r: &mut Reader) -> Result<Option<String>, MdbsError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_payload(r)?)),
        other => Err(MdbsError::Wire(format!("bad presence byte {other}"))),
    }
}

fn write_strings(buf: &mut Vec<u8>, items: &[String]) {
    write_u64(buf, items.len() as u64);
    for s in items {
        write_str(buf, s);
    }
}

fn read_strings(r: &mut Reader) -> Result<Vec<String>, MdbsError> {
    let n = r.u64()? as usize;
    if n > r.remaining() {
        return Err(MdbsError::Wire(format!("implausible list length {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.string()?);
    }
    Ok(out)
}

/// Encodes a request frame into a pooled buffer.
pub fn encode_request(pool: &BufferPool, corr: Option<u64>, req: &Request) -> PooledBuf {
    let mut buf = pool.lease();
    write_header(&mut buf, corr);
    match req {
        Request::Begin { name, database } => {
            buf.push(REQ_BEGIN);
            write_str(&mut buf, name);
            write_str(&mut buf, database);
        }
        Request::Exec { task, commands } => {
            buf.push(REQ_EXEC);
            write_str(&mut buf, task);
            write_strings(&mut buf, commands);
        }
        Request::Prepare { task } => {
            buf.push(REQ_PREPARE);
            write_str(&mut buf, task);
        }
        Request::Task { name, mode, database, commands } => {
            buf.push(REQ_TASK);
            write_str(&mut buf, name);
            buf.push(match mode {
                TaskMode::NoCommit => 0,
                TaskMode::Auto => 1,
            });
            write_str(&mut buf, database);
            write_strings(&mut buf, commands);
        }
        Request::Commit { task } => {
            buf.push(REQ_COMMIT);
            write_str(&mut buf, task);
        }
        Request::Abort { task } => {
            buf.push(REQ_ABORT);
            write_str(&mut buf, task);
        }
        Request::Resolve { task, commit } => {
            buf.push(REQ_RESOLVE);
            write_str(&mut buf, task);
            buf.push(u8::from(*commit));
        }
        Request::Compensate { task, database, commands } => {
            buf.push(REQ_COMPENSATE);
            write_str(&mut buf, task);
            write_str(&mut buf, database);
            write_strings(&mut buf, commands);
        }
        Request::Partial { database, sql, baseline } => {
            buf.push(REQ_PARTIAL);
            write_str(&mut buf, database);
            write_str(&mut buf, sql);
            write_opt_str(&mut buf, baseline);
        }
        Request::PartialAgg { database, sql, baseline } => {
            buf.push(REQ_PARTIALAGG);
            write_str(&mut buf, database);
            write_str(&mut buf, sql);
            write_opt_str(&mut buf, baseline);
        }
        Request::Schema { database } => {
            buf.push(REQ_SCHEMA);
            write_str(&mut buf, database);
        }
        Request::Stats { database, table } => {
            buf.push(REQ_STATS);
            write_str(&mut buf, database);
            write_opt_str(&mut buf, table);
        }
        Request::Load { database, table, payload } => {
            buf.push(REQ_LOAD);
            write_str(&mut buf, database);
            write_str(&mut buf, table);
            write_payload(&mut buf, payload);
        }
        Request::DropTemp { database, table } => {
            buf.push(REQ_DROPTEMP);
            write_str(&mut buf, database);
            write_str(&mut buf, table);
        }
        Request::LoadMany { database, parts } => {
            buf.push(REQ_LOADMANY);
            write_str(&mut buf, database);
            write_u64(&mut buf, parts.len() as u64);
            for (table, payload) in parts {
                write_str(&mut buf, table);
                write_payload(&mut buf, payload);
            }
        }
        Request::DropMany { database, tables } => {
            buf.push(REQ_DROPMANY);
            write_str(&mut buf, database);
            write_strings(&mut buf, tables);
        }
        Request::Ping => buf.push(REQ_PING),
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
    }
    buf
}

/// Decodes a request frame: correlation id (if any) plus the request.
pub fn decode_request(bytes: &[u8]) -> Result<(Option<u64>, Request), MdbsError> {
    let mut r = Reader::new(bytes);
    let corr = read_header(&mut r)?;
    let tag = r.u8()?;
    let req = match tag {
        REQ_BEGIN => Request::Begin { name: r.string()?, database: r.string()? },
        REQ_EXEC => Request::Exec { task: r.string()?, commands: read_strings(&mut r)? },
        REQ_PREPARE => Request::Prepare { task: r.string()? },
        REQ_TASK => {
            let name = r.string()?;
            let mode = match r.u8()? {
                0 => TaskMode::NoCommit,
                1 => TaskMode::Auto,
                other => {
                    return Err(MdbsError::Wire(format!("unknown task mode byte {other}")));
                }
            };
            Request::Task { name, mode, database: r.string()?, commands: read_strings(&mut r)? }
        }
        REQ_COMMIT => Request::Commit { task: r.string()? },
        REQ_ABORT => Request::Abort { task: r.string()? },
        REQ_RESOLVE => {
            let task = r.string()?;
            let commit = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(MdbsError::Wire(format!("bad RESOLVE verdict byte {other}")));
                }
            };
            Request::Resolve { task, commit }
        }
        REQ_COMPENSATE => Request::Compensate {
            task: r.string()?,
            database: r.string()?,
            commands: read_strings(&mut r)?,
        },
        REQ_PARTIAL => Request::Partial {
            database: r.string()?,
            sql: r.string()?,
            baseline: read_opt_str(&mut r)?,
        },
        REQ_PARTIALAGG => Request::PartialAgg {
            database: r.string()?,
            sql: r.string()?,
            baseline: read_opt_str(&mut r)?,
        },
        REQ_SCHEMA => Request::Schema { database: r.string()? },
        REQ_STATS => Request::Stats { database: r.string()?, table: read_opt_str(&mut r)? },
        REQ_LOAD => Request::Load {
            database: r.string()?,
            table: r.string()?,
            payload: read_payload(&mut r)?,
        },
        REQ_DROPTEMP => Request::DropTemp { database: r.string()?, table: r.string()? },
        REQ_LOADMANY => {
            let database = r.string()?;
            let n = r.u64()? as usize;
            if n > r.remaining() {
                return Err(MdbsError::Wire(format!("implausible LOADMANY part count {n}")));
            }
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                let table = r.string()?;
                let payload = read_payload(&mut r)?;
                parts.push((table, payload));
            }
            Request::LoadMany { database, parts }
        }
        REQ_DROPMANY => Request::DropMany { database: r.string()?, tables: read_strings(&mut r)? },
        REQ_PING => Request::Ping,
        REQ_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(MdbsError::Wire(format!("unknown request tag {other:#04x}")));
        }
    };
    r.finish()?;
    Ok((corr, req))
}

/// Encodes a response frame into a pooled buffer.
pub fn encode_response(pool: &BufferPool, corr: Option<u64>, resp: &Response) -> PooledBuf {
    let mut buf = pool.lease();
    write_header(&mut buf, corr);
    match resp {
        Response::TaskDone { status, affected, payload, error } => {
            buf.push(RESP_TASKDONE);
            write_u64(&mut buf, u64::from(u32::from(*status)));
            write_u64(&mut buf, *affected);
            write_opt_str(&mut buf, error);
            write_opt_payload(&mut buf, payload);
        }
        Response::PartialDone { payload, error, full_rows, full_bytes, access } => {
            buf.push(RESP_PARTIALDONE);
            write_u64(&mut buf, *full_rows);
            write_u64(&mut buf, *full_bytes);
            write_opt_str(&mut buf, access);
            write_opt_str(&mut buf, error);
            write_opt_payload(&mut buf, payload);
        }
        Response::PartialAggDone { payload, error, groups, full_rows, full_bytes } => {
            buf.push(RESP_PARTIALAGGDONE);
            write_u64(&mut buf, *groups);
            write_u64(&mut buf, *full_rows);
            write_u64(&mut buf, *full_bytes);
            write_opt_str(&mut buf, error);
            write_opt_payload(&mut buf, payload);
        }
        Response::Ok => buf.push(RESP_OK),
        Response::OkPayload { payload } => {
            buf.push(RESP_OKPAYLOAD);
            write_str(&mut buf, payload);
        }
        Response::Err { message } => {
            buf.push(RESP_ERR);
            write_str(&mut buf, message);
        }
    }
    buf
}

/// Decodes a response frame: correlation id (if any) plus the response.
pub fn decode_response(bytes: &[u8]) -> Result<(Option<u64>, Response), MdbsError> {
    let mut r = Reader::new(bytes);
    let corr = read_header(&mut r)?;
    let tag = r.u8()?;
    let resp = match tag {
        RESP_TASKDONE => {
            let code = r.u64()?;
            let status = u32::try_from(code)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| MdbsError::Wire(format!("bad status char code {code}")))?;
            Response::TaskDone {
                status,
                affected: r.u64()?,
                error: read_opt_str(&mut r)?,
                payload: read_opt_payload(&mut r)?,
            }
        }
        RESP_PARTIALDONE => Response::PartialDone {
            full_rows: r.u64()?,
            full_bytes: r.u64()?,
            access: read_opt_str(&mut r)?,
            error: read_opt_str(&mut r)?,
            payload: read_opt_payload(&mut r)?,
        },
        RESP_PARTIALAGGDONE => Response::PartialAggDone {
            groups: r.u64()?,
            full_rows: r.u64()?,
            full_bytes: r.u64()?,
            error: read_opt_str(&mut r)?,
            payload: read_opt_payload(&mut r)?,
        },
        RESP_OK => Response::Ok,
        RESP_OKPAYLOAD => Response::OkPayload { payload: r.string()? },
        RESP_ERR => Response::Err { message: r.string()? },
        other => {
            return Err(MdbsError::Wire(format!("unknown response tag {other:#04x}")));
        }
    };
    r.finish()?;
    Ok((corr, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufferPool {
        BufferPool::new(8)
    }

    fn roundtrip_request(corr: Option<u64>, req: Request) {
        let frame = encode_request(&pool(), corr, &req);
        assert_eq!(peek_correlation(&frame), corr);
        let (got_corr, got) = decode_request(&frame).unwrap();
        assert_eq!(got_corr, corr);
        assert_eq!(got, req);
    }

    fn roundtrip_response(corr: Option<u64>, resp: Response) {
        let frame = encode_response(&pool(), corr, &resp);
        assert_eq!(peek_correlation(&frame), corr);
        let (got_corr, got) = decode_response(&frame).unwrap();
        assert_eq!(got_corr, corr);
        assert_eq!(got, resp);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        roundtrip_request(Some(42), Request::Begin { name: "G1".into(), database: "avis".into() });
        roundtrip_request(
            None,
            Request::Exec { task: "G1".into(), commands: vec!["UPDATE cars SET rate = 1".into()] },
        );
        roundtrip_request(Some(0), Request::Prepare { task: "G1".into() });
        roundtrip_request(
            Some(u64::MAX),
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "continental".into(),
                commands: vec!["SELECT 'multi\nline | literal' FROM flights".into()],
            },
        );
        roundtrip_request(
            Some(7),
            Request::Task {
                name: "T".into(),
                mode: TaskMode::Auto,
                database: "d".into(),
                commands: vec![],
            },
        );
        roundtrip_request(Some(1), Request::Commit { task: "T1".into() });
        roundtrip_request(Some(2), Request::Abort { task: "T1".into() });
        roundtrip_request(Some(3), Request::Resolve { task: "T1".into(), commit: true });
        roundtrip_request(Some(4), Request::Resolve { task: "T1".into(), commit: false });
        roundtrip_request(
            Some(5),
            Request::Compensate {
                task: "T1".into(),
                database: "continental".into(),
                commands: vec!["UPDATE flights SET rate = rate / 1.1".into()],
            },
        );
        roundtrip_request(
            Some(6),
            Request::Partial {
                database: "avis".into(),
                sql: "SELECT code FROM cars".into(),
                baseline: Some("SELECT code\nFROM cars".into()),
            },
        );
        roundtrip_request(
            Some(6),
            Request::Partial { database: "avis".into(), sql: "SELECT 1".into(), baseline: None },
        );
        roundtrip_request(
            Some(18),
            Request::PartialAgg {
                database: "avis".into(),
                sql: "SELECT cartype AS b_c_cartype, COUNT(*) AS agg_cnt FROM cars \
                      GROUP BY cartype"
                    .into(),
                baseline: Some("SELECT code\nFROM cars".into()),
            },
        );
        roundtrip_request(
            Some(19),
            Request::PartialAgg {
                database: "avis".into(),
                sql: "SELECT COUNT(*) AS agg_cnt FROM cars".into(),
                baseline: None,
            },
        );
        roundtrip_request(Some(8), Request::Schema { database: "avis".into() });
        roundtrip_request(Some(16), Request::Stats { database: "avis".into(), table: None });
        roundtrip_request(
            Some(17),
            Request::Stats { database: "avis".into(), table: Some("cars".into()) },
        );
        roundtrip_request(
            Some(9),
            Request::Load {
                database: "avis".into(),
                table: "part_national".into(),
                payload: "COLS code:int\nR I:1\n".into(),
            },
        );
        roundtrip_request(
            Some(10),
            Request::DropTemp { database: "avis".into(), table: "t".into() },
        );
        roundtrip_request(
            Some(11),
            Request::LoadMany {
                database: "avis".into(),
                parts: vec![
                    ("part_national".into(), "COLS code:int\nR I:1\n".into()),
                    ("part_avis".into(), "COLS rate:float\nR F:39.5\nR F:25.0\n".into()),
                    ("part_weird".into(), "not a result set at all".into()),
                    ("part_empty".into(), String::new()),
                ],
            },
        );
        roundtrip_request(Some(12), Request::LoadMany { database: "a".into(), parts: vec![] });
        roundtrip_request(
            Some(13),
            Request::DropMany { database: "avis".into(), tables: vec!["p1".into(), "p2".into()] },
        );
        roundtrip_request(Some(14), Request::DropMany { database: "a".into(), tables: vec![] });
        roundtrip_request(Some(15), Request::Ping);
        roundtrip_request(None, Request::Shutdown);
    }

    #[test]
    fn every_response_variant_roundtrips() {
        roundtrip_response(Some(42), Response::Ok);
        roundtrip_response(None, Response::OkPayload { payload: "TABLE t x:int\n".into() });
        roundtrip_response(
            Some(1),
            Response::Err { message: "lock conflict | details\nline2".into() },
        );
        roundtrip_response(
            Some(2),
            Response::TaskDone { status: 'P', affected: 3, payload: None, error: None },
        );
        roundtrip_response(
            Some(3),
            Response::TaskDone {
                status: 'C',
                affected: 0,
                payload: Some("COLS code:int\nR I:1\n".into()),
                error: None,
            },
        );
        roundtrip_response(
            Some(4),
            Response::TaskDone {
                status: 'A',
                affected: 0,
                payload: None,
                error: Some("simulated deadlock".into()),
            },
        );
        roundtrip_response(
            Some(5),
            Response::PartialDone {
                payload: Some("COLS code:int|status:char(16)\nR I:1|S:available\n".into()),
                error: None,
                full_rows: 12,
                full_bytes: 340,
                access: Some("probe".into()),
            },
        );
        roundtrip_response(
            Some(6),
            Response::PartialDone {
                payload: None,
                error: Some("unknown table | details\nline2".into()),
                full_rows: 0,
                full_bytes: 0,
                access: None,
            },
        );
        roundtrip_response(
            Some(7),
            Response::PartialAggDone {
                payload: Some("COLS b_c_cartype:char(16)|agg_cnt:int\nR S:bus|I:3\n".into()),
                error: None,
                groups: 1,
                full_rows: 40,
                full_bytes: 900,
            },
        );
        roundtrip_response(
            Some(8),
            Response::PartialAggDone {
                payload: None,
                error: Some("unknown column | details\nline2".into()),
                groups: 0,
                full_rows: 0,
                full_bytes: 0,
            },
        );
    }

    #[test]
    fn non_canonical_payloads_ship_verbatim_and_survive() {
        // Trailing blank line: decodes as a result set but does not re-encode
        // to itself, so the frame must carry it verbatim.
        for payload in
            ["COLS code:int\nR I:1\n\n", "COLS code:int\n\nR I:1\n", "plain text", "R |||"]
        {
            roundtrip_response(
                Some(9),
                Response::TaskDone {
                    status: 'C',
                    affected: 0,
                    payload: Some(payload.to_string()),
                    error: None,
                },
            );
        }
    }

    #[test]
    fn canonical_payloads_ship_columnar() {
        let rows: String = (0..100).map(|i| format!("R I:{i}|S:available\n")).collect();
        let payload = format!("COLS code:int|status:char(16)\n{rows}");
        let frame = encode_response(
            &pool(),
            Some(1),
            &Response::PartialDone {
                payload: Some(payload.clone()),
                error: None,
                full_rows: 0,
                full_bytes: 0,
                access: None,
            },
        );
        assert!(
            frame.len() < payload.len() / 2,
            "columnar frame {} not smaller than text payload {}",
            frame.len(),
            payload.len()
        );
    }

    #[test]
    fn bad_frames_rejected() {
        let frame = encode_request(&pool(), Some(1), &Request::Ping);
        // Wrong magic.
        let mut bad = frame.clone().into_vec();
        bad[0] = b'@';
        assert!(decode_request(&bad).is_err());
        // Wrong version.
        let mut bad = frame.clone().into_vec();
        bad[1] = 9;
        assert!(decode_request(&bad).is_err());
        // Unknown flags.
        let mut bad = frame.clone().into_vec();
        bad[2] = 0xF0;
        assert!(decode_request(&bad).is_err());
        // Trailing garbage.
        let mut bad = frame.clone().into_vec();
        bad.push(0);
        assert!(decode_request(&bad).is_err());
        // Unknown tag.
        let mut bad = frame.clone().into_vec();
        *bad.last_mut().unwrap() = 0x7F;
        assert!(decode_request(&bad).is_err());
        // A request frame is not a response frame.
        assert!(decode_response(&frame).is_err());
        // Empty body.
        assert!(decode_request(&[]).is_err());
        assert!(peek_correlation(&[]).is_none());
    }

    #[test]
    fn frames_reuse_pooled_buffers() {
        let pool = pool();
        drop(encode_request(&pool, Some(1), &Request::Ping));
        assert_eq!(pool.idle(), 1);
        drop(encode_request(&pool, Some(2), &Request::Ping));
        assert_eq!(pool.reuses(), 1);
    }
}
