//! Binary wire codec: a negotiated alternative to the text proto.
//!
//! The line-oriented text format in [`crate::proto`] / [`crate::wire`]
//! remains the default — and the debug and golden-trace format. This module
//! adds a compact binary frame grammar ([`frame`]) over LEB128 varints
//! ([`varint`]) with columnar result-set payloads ([`columnar`]), encoded
//! into buffers leased from a [`netsim::BufferPool`].
//!
//! **Negotiation.** The client picks the format per connection
//! ([`crate::lamclient::LamClient::set_wire_format`], threaded down from
//! `Session.wire_format`); the LAM server simply mirrors whatever format a
//! request arrived in, so mixed-format clients coexist and the bootstrap
//! `PING` (sent before negotiation applies) always travels as text.
//! Correlation-id framing and the at-most-once reply cache behave
//! identically under both formats — the differential harness
//! (`tests/wire_differential.rs`) proves results, `ExecStats` and metrics
//! match modulo byte counters.

pub mod columnar;
pub mod frame;
pub mod varint;

pub use frame::{
    decode_request, decode_response, encode_request, encode_response, peek_correlation,
};

/// Which encoding a client uses for LAM requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Line-oriented text (`proto.rs` / `wire.rs`) — the default, the debug
    /// format, and the format golden traces pin.
    #[default]
    Text,
    /// Length-prefixed binary frames with columnar payloads.
    Binary,
}

impl WireFormat {
    /// Metric-label form (`wire.encode_us{format=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            WireFormat::Text => "text",
            WireFormat::Binary => "binary",
        }
    }
}
