//! Binary primitives: LEB128 varints, zigzag integers, length-prefixed
//! strings, and a bounds-checked [`Reader`].
//!
//! Every decoder is strict: truncation, non-minimal ("overlong") varints and
//! invalid UTF-8 all produce [`MdbsError::Wire`] with the byte offset, and
//! never panic — the robustness test suite fuzzes these paths with mutated
//! frames.

use crate::error::MdbsError;

/// Appends `v` as an LEB128 varint (7 value bits per byte, high bit set on
/// continuation bytes). Always minimal: at most 10 bytes, no trailing zero
/// groups.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a signed integer, zigzag-mapped so small magnitudes of either
/// sign stay short.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Maps a signed integer onto an unsigned one: 0, -1, 1, -2 → 0, 1, 2, 3.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Reverses [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an `f64` as its little-endian bit pattern (exact roundtrip,
/// including negative zero and NaN payloads).
pub fn write_f64(buf: &mut Vec<u8>, f: f64) {
    buf.extend_from_slice(&f.to_bits().to_le_bytes());
}

/// A sequential, bounds-checked reader over a frame.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset (for error messages).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, MdbsError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| MdbsError::Wire(format!("truncated frame at byte {}", self.pos)))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], MdbsError> {
        if self.remaining() < n {
            return Err(MdbsError::Wire(format!(
                "truncated frame: need {n} bytes at byte {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads an LEB128 varint, rejecting truncated, overlong (non-minimal)
    /// and overflowing encodings.
    pub fn u64(&mut self) -> Result<u64, MdbsError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        loop {
            let byte = self.u8()?;
            if shift == 63 && (byte & 0x7f) > 1 {
                return Err(MdbsError::Wire(format!("varint overflows u64 at byte {start}")));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift > 0 {
                    return Err(MdbsError::Wire(format!("overlong varint at byte {start}")));
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(MdbsError::Wire(format!(
                    "varint longer than 10 bytes at byte {start}"
                )));
            }
        }
    }

    /// Reads a zigzag-encoded signed integer.
    pub fn i64(&mut self) -> Result<i64, MdbsError> {
        Ok(unzigzag(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, MdbsError> {
        let start = self.pos;
        let len = self.u64()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MdbsError::Wire(format!("invalid UTF-8 in string at byte {start}")))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, MdbsError> {
        let bytes = self.bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Asserts the frame was consumed exactly — trailing bytes mean a
    /// corrupt or mismatched frame, never silence.
    pub fn finish(self) -> Result<(), MdbsError> {
        if self.remaining() != 0 {
            return Err(MdbsError::Wire(format!(
                "{} trailing bytes after frame at byte {}",
                self.remaining(),
                self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_across_the_range() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.u64().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn zigzag_roundtrips_signed_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -12345, 12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(Reader::new(&buf).i64().unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 0x80 0x00 decodes to 0 but is not the minimal encoding.
        let err = Reader::new(&[0x80, 0x00]).u64().unwrap_err();
        assert!(err.to_string().contains("overlong"), "{err}");
        // Eleven continuation bytes cannot fit in a u64.
        let long = [0x80u8; 11];
        assert!(Reader::new(&long).u64().is_err());
        // A 10-byte varint whose top byte sets bits beyond 64 overflows.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        assert!(Reader::new(&buf).u64().is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        assert!(Reader::new(&[]).u8().is_err());
        assert!(Reader::new(&[0x80]).u64().is_err());
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        assert!(Reader::new(&buf[..3]).string().is_err());
    }

    #[test]
    fn string_roundtrips_unicode_and_rejects_bad_utf8() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo|wörld\n\\");
        assert_eq!(Reader::new(&buf).string().unwrap(), "héllo|wörld\n\\");
        let bad = [2u8, 0xff, 0xfe];
        assert!(Reader::new(&bad).string().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 7);
        buf.push(0xAA);
        let mut r = Reader::new(&buf);
        r.u64().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn f64_roundtrips_exact_bits() {
        for f in [0.0f64, -0.0, 1.25, f64::MAX, f64::MIN_POSITIVE, f64::INFINITY] {
            let mut buf = Vec::new();
            write_f64(&mut buf, f);
            assert_eq!(Reader::new(&buf).f64().unwrap().to_bits(), f.to_bits());
        }
    }
}
