//! Unified error type for the multidatabase layer.

use std::fmt;

/// Errors raised by the multidatabase system.
#[derive(Debug, Clone, PartialEq)]
pub enum MdbsError {
    /// MSQL parse error.
    Parse(String),
    /// Catalog (AD/GDD) error.
    Catalog(String),
    /// The query references a database that is not in the current scope.
    NotInScope(String),
    /// The current scope is empty but the statement needs one.
    EmptyScope,
    /// No pertinent substitution exists for the query in any scope database.
    NotPertinent(String),
    /// A semantic variable is unusable (wrong arity, no binding for a scope
    /// database, ...).
    BadSemanticVariable(String),
    /// A VITAL database's service does not support 2PC and no COMP clause
    /// was given — the condition under which the paper's prototype "raises
    /// an error condition and refuses to process the query" (§3.3).
    VitalWithoutCompensation {
        /// The offending database.
        database: String,
    },
    /// A COMP clause names a database that is not in scope or not vital.
    BadCompClause(String),
    /// DOL translation/execution error.
    Dol(String),
    /// Network error talking to a LAM.
    Net(String),
    /// The LAM at a site is gone for good (terminal fault: its server died
    /// or its site was deregistered). Unlike [`MdbsError::Net`] timeouts,
    /// retrying cannot help; callers should fail fast or degrade.
    LamUnavailable {
        /// The unreachable site.
        site: String,
    },
    /// A second-phase COMMIT was sent but every acknowledgement was lost and
    /// the retry budget is exhausted: the subtransaction may or may not have
    /// committed at the site. Unlike [`MdbsError::Net`], the caller must not
    /// assume failure — the outcome is unknown until recovery re-asks the
    /// LAM (`RESOLVE`), which answers from its transaction state.
    InDoubt {
        /// The site whose acknowledgement was lost.
        site: String,
        /// The in-doubt task.
        task: String,
    },
    /// A LAM reported a local database error.
    Local {
        /// The service that failed.
        service: String,
        /// The underlying error.
        message: String,
    },
    /// A malformed wire message.
    Wire(String),
    /// Multitransaction error (e.g. acceptable state names unknown database).
    Mtx(String),
    /// Statement not supported at this level.
    Unsupported(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for MdbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdbsError::Parse(m) => write!(f, "MSQL parse error: {m}"),
            MdbsError::Catalog(m) => write!(f, "catalog error: {m}"),
            MdbsError::NotInScope(db) => {
                write!(f, "database `{db}` is not in the current USE scope")
            }
            MdbsError::EmptyScope => write!(f, "no USE scope is active"),
            MdbsError::NotPertinent(m) => {
                write!(f, "query is not pertinent to any database in scope: {m}")
            }
            MdbsError::BadSemanticVariable(m) => write!(f, "bad semantic variable: {m}"),
            MdbsError::VitalWithoutCompensation { database } => write!(
                f,
                "database `{database}` is VITAL but its service supports only automatic \
                 commit; provide a COMP clause (paper §3.3)"
            ),
            MdbsError::BadCompClause(m) => write!(f, "bad COMP clause: {m}"),
            MdbsError::Dol(m) => write!(f, "DOL error: {m}"),
            MdbsError::Net(m) => write!(f, "network error: {m}"),
            MdbsError::LamUnavailable { site } => {
                write!(f, "LAM at site `{site}` is unavailable (terminal fault)")
            }
            MdbsError::InDoubt { site, task } => write!(
                f,
                "task `{task}` is in doubt at site `{site}`: the commit acknowledgement was \
                 lost and the retry budget is exhausted; route to recovery (RESOLVE)"
            ),
            MdbsError::Local { service, message } => {
                write!(f, "local error at `{service}`: {message}")
            }
            MdbsError::Wire(m) => write!(f, "wire protocol error: {m}"),
            MdbsError::Mtx(m) => write!(f, "multitransaction error: {m}"),
            MdbsError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
            MdbsError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for MdbsError {}

impl From<msql_lang::ParseError> for MdbsError {
    fn from(e: msql_lang::ParseError) -> Self {
        MdbsError::Parse(e.to_string())
    }
}

impl From<catalog::CatalogError> for MdbsError {
    fn from(e: catalog::CatalogError) -> Self {
        MdbsError::Catalog(e.to_string())
    }
}

impl From<dol::DolError> for MdbsError {
    fn from(e: dol::DolError) -> Self {
        match e {
            // Preserve the in-doubt distinction across the DOL boundary so
            // callers can route to recovery instead of presuming abort.
            dol::DolError::InDoubt { service, task } => MdbsError::InDoubt { site: service, task },
            other => MdbsError::Dol(other.to_string()),
        }
    }
}

impl From<netsim::NetError> for MdbsError {
    fn from(e: netsim::NetError) -> Self {
        MdbsError::Net(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: MdbsError = netsim::NetError::UnknownSite("x".into()).into();
        assert!(e.to_string().contains("x"));
        let e: MdbsError = dol::DolError::UnknownTask("T9".into()).into();
        assert!(e.to_string().contains("T9"));
    }

    #[test]
    fn vital_without_compensation_cites_paper() {
        let e = MdbsError::VitalWithoutCompensation { database: "continental".into() };
        assert!(e.to_string().contains("COMP"));
        assert!(e.to_string().contains("continental"));
    }
}
