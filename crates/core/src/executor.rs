//! Plan execution and outcome reporting.
//!
//! The executor drives generated DOL programs through [`dol::DolEngine`]
//! with [`crate::lamclient::LamFactory`] services, then shapes the raw task
//! statuses/results into user-facing reports:
//!
//! * retrievals become [`Multitable`]s (one table per database, §2);
//! * cross-database joins are executed by shipping partial results to the
//!   coordinator (the "partial results are collected in one database,
//!   acting as the coordinator" flow of §4.1) and return a single table;
//! * updates and multitransactions report per-database termination states
//!   and the DOL return code.

use crate::codec::WireFormat;
use crate::error::MdbsError;
use crate::lamclient::{decode_task_result, LamClient, LamFactory, PartialResult};
use crate::merge;
use crate::multitable::{Multitable, MultitableEntry};
use crate::planner::{self, Estimate, PlannerContext};
use crate::proto::{Request, Response, TaskMode};
use crate::retry::{shared_stats, ExecStats, RetryPolicy, SharedExecStats};
use crate::translate::{
    DbRoute, DbSubquery, Decomposition, GeneratedPlan, PushdownPlan, MTX_FAILED,
};
use crate::wal::{Wal, WalObserver, WalRecord};
use crate::wire;
use dol::{DolEngine, DolOutcome, TaskStatus};
use ldbs::engine::ResultSet;
use ldbs::eval::value_literal;
use ldbs::value::Value;
use msql_lang::printer::print_select;
use msql_lang::{BinaryOp, ColumnRef, Expr, Literal, Select, SelectItem};
use netsim::{FaultKind, Network};
use obs::{labeled, ExplainReport, MetricsRegistry, Span, SpanCtx};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Default per-edge cap on the distinct key values shipped as a semi-join
/// `IN (…)` filter. This is the *no-statistics fallback*: when the cost
/// planner has fresh estimates for both ends of an edge, the decision is an
/// estimated-bytes comparison instead and the cap does not apply.
pub const DEFAULT_SEMIJOIN_CAP: usize = 256;

/// Per-database outcome of a modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbOutcome {
    /// The database.
    pub database: String,
    /// Its scope key.
    pub key: String,
    /// Terminal status of its subquery.
    pub status: TaskStatus,
    /// Rows affected (0 when the subquery aborted).
    pub affected: u64,
    /// Local error, if the subquery failed.
    pub error: Option<String>,
    /// Network attempts spent on the subquery (0 = its LAM was never
    /// reached, 1 = no retries).
    pub attempts: u32,
    /// The last network fault seen executing the subquery, if any.
    pub fault: Option<FaultKind>,
}

impl DbOutcome {
    /// An outcome with no network telemetry attached.
    pub fn new(
        database: String,
        key: String,
        status: TaskStatus,
        affected: u64,
        error: Option<String>,
    ) -> Self {
        DbOutcome { database, key, status, affected, error, attempts: 0, fault: None }
    }
}

/// Outcome of a vital multiple update (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// True when all vital subqueries committed.
    pub success: bool,
    /// The DOL return code.
    pub return_code: i32,
    /// Per-database outcomes, in plan order.
    pub outcomes: Vec<DbOutcome>,
    /// Communication accounting for this statement (retries, faults,
    /// degraded subqueries).
    pub stats: ExecStats,
}

/// Outcome of a multitransaction (§3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtxReport {
    /// Index of the achieved acceptable state (0 = preferred), or `None`
    /// when the multitransaction failed.
    pub achieved_state: Option<usize>,
    /// The DOL return code.
    pub return_code: i32,
    /// Per-database outcomes.
    pub outcomes: Vec<DbOutcome>,
    /// Communication accounting for this statement.
    pub stats: ExecStats,
}

/// The result of executing one MSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum MsqlOutcome {
    /// A multiple retrieval: a set of tables.
    Multitable(Multitable),
    /// A cross-database join: a single table evaluated at the coordinator.
    Table(ResultSet),
    /// A (vital) multiple update.
    Update(UpdateReport),
    /// A multitransaction.
    Mtx(MtxReport),
    /// Scope/dictionary/DDL administration.
    Admin(String),
    /// An `EXPLAIN`ed statement: the traced profile of its execution.
    Explain(Box<ExplainReport>),
}

impl MsqlOutcome {
    /// Unwraps a multitable outcome.
    pub fn into_multitable(self) -> Result<Multitable, MdbsError> {
        match self {
            MsqlOutcome::Multitable(mt) => Ok(mt),
            other => Err(MdbsError::Internal(format!("expected a multitable, got {other:?}"))),
        }
    }

    /// Unwraps a single-table outcome.
    pub fn into_table(self) -> Result<ResultSet, MdbsError> {
        match self {
            MsqlOutcome::Table(rs) => Ok(rs),
            other => Err(MdbsError::Internal(format!("expected a table, got {other:?}"))),
        }
    }

    /// Unwraps an update report.
    pub fn into_update(self) -> Result<UpdateReport, MdbsError> {
        match self {
            MsqlOutcome::Update(u) => Ok(u),
            other => Err(MdbsError::Internal(format!("expected an update report, got {other:?}"))),
        }
    }

    /// Unwraps a multitransaction report.
    pub fn into_mtx(self) -> Result<MtxReport, MdbsError> {
        match self {
            MsqlOutcome::Mtx(m) => Ok(m),
            other => Err(MdbsError::Internal(format!("expected an mtx report, got {other:?}"))),
        }
    }

    /// Unwraps an EXPLAIN report.
    pub fn into_explain(self) -> Result<ExplainReport, MdbsError> {
        match self {
            MsqlOutcome::Explain(r) => Ok(*r),
            other => Err(MdbsError::Internal(format!("expected an explain report, got {other:?}"))),
        }
    }
}

/// Executes generated plans against the federation's network.
pub struct Executor {
    /// The shared network.
    pub net: Network,
    /// Whether DOL task batches run in parallel (one thread per service).
    pub parallel: bool,
    /// Per-request timeout.
    pub timeout: Duration,
    /// Transient-fault retry policy for every LAM request this executor
    /// issues.
    pub retry: RetryPolicy,
    /// Session-level accounting: every run merges its counters here.
    pub stats: SharedExecStats,
    /// Graceful degradation: treat an unreachable LAM at OPEN time as a
    /// failed (but reported) subquery instead of failing the whole plan —
    /// the §3.2 vital semantics then decide the statement's fate.
    pub tolerate_unreachable: bool,
    /// Semi-join reduction of cross-database joins: ship the reducer's
    /// distinct join-key values to the other sites as `IN (…)` filters so
    /// only matching rows cross the wire.
    pub semijoin: bool,
    /// Per-edge cap on the distinct key values shipped as an `IN (…)`
    /// filter; an edge whose key set exceeds it falls back to full shipping.
    pub semijoin_cap: usize,
    /// Aggregate/top-k pushdown of cross-database joins: when the
    /// decomposition proved the query's aggregates decomposable (or it is a
    /// pure-product top-k), each site computes partial aggregates (or a
    /// site-local top-k) and the MDBS layer merges them, instead of shipping
    /// full partials to a coordinator. Off — or an ineligible query — takes
    /// the classic coordinator path, byte-for-byte.
    pub agg_pushdown: bool,
    /// Where execution spans hang (disabled unless the federation is
    /// tracing the statement).
    pub trace: SpanCtx,
    /// Metrics sink shared with the federation.
    pub metrics: MetricsRegistry,
    /// Encoding every LAM request travels in: line-oriented text (the
    /// default and the golden-trace format) or binary columnar frames.
    pub wire_format: WireFormat,
    /// Site statistics for cost-based planning of cross-database joins.
    /// `None` (or a context lacking a table) keeps the heuristic data-flow
    /// decisions, byte-for-byte.
    pub planner: Option<PlannerContext>,
    /// Durable multitransaction log. When set, every plan that carries
    /// recovery material logs its lifecycle (BEGIN, first-phase outcomes,
    /// the settle decision, resolutions, END) so
    /// [`crate::Federation::recover`] can finish interrupted statements.
    pub wal: Option<Wal>,
}

impl Executor {
    /// An executor with default policies (no retries, fail fast on
    /// unreachable services).
    pub fn new(net: Network, parallel: bool, timeout: Duration) -> Self {
        Executor {
            net,
            parallel,
            timeout,
            retry: RetryPolicy::default(),
            stats: shared_stats(),
            tolerate_unreachable: false,
            semijoin: true,
            semijoin_cap: DEFAULT_SEMIJOIN_CAP,
            agg_pushdown: true,
            trace: SpanCtx::disabled(),
            metrics: MetricsRegistry::new(),
            wire_format: WireFormat::default(),
            planner: None,
            wal: None,
        }
    }

    /// Runs the program, returning the DOL outcome plus this run's own
    /// communication accounting (also merged into the session stats).
    fn run_program(&self, plan: &GeneratedPlan) -> Result<(DolOutcome, ExecStats), MdbsError> {
        let run_stats = shared_stats();
        let factory = LamFactory {
            net: self.net.clone(),
            timeout: self.timeout,
            retry: self.retry.clone(),
            stats: SharedExecStats::clone(&run_stats),
            metrics: self.metrics.clone(),
            tolerate_unreachable: self.tolerate_unreachable,
            wire_format: self.wire_format,
        };
        let mut engine =
            if self.parallel { DolEngine::new(&factory) } else { DolEngine::serial(&factory) };
        engine.trace = self.trace.clone();
        // Log the multitransaction BEGIN (tasks, states, oracle, the
        // presumed-abort compensation set) before anything executes, and
        // install the observer that records every later transition.
        let logged = match (&self.wal, &plan.recovery) {
            (Some(wal), Some(recovery)) => {
                let mtx_id = wal.next_mtx_id();
                wal.append(&WalRecord::Begin {
                    mtx_id,
                    tasks: recovery.tasks.clone(),
                    states: recovery.states.clone(),
                    oracle: recovery.oracle.clone(),
                    abort_compensate: recovery.abort_compensate.clone(),
                })
                .map_err(MdbsError::from)?;
                engine.observer = Some(Arc::new(WalObserver::new(
                    wal.clone(),
                    mtx_id,
                    recovery.decisions.clone(),
                )));
                Some((wal.clone(), mtx_id))
            }
            _ => None,
        };
        let result = engine.execute(&plan.program);
        // Merge the run's accounting even when the program failed — the
        // faults that sank it are exactly what the session stats must show.
        let snapshot = run_stats.lock().clone();
        self.stats.lock().merge(&snapshot);
        let out = result?;
        // END only on success: any error (including a simulated crash) leaves
        // the image open so recovery re-resolves it.
        if let Some((wal, mtx_id)) = logged {
            wal.append(&WalRecord::End { mtx_id }).map_err(MdbsError::from)?;
        }
        Ok((out, snapshot))
    }

    fn outcomes(
        &self,
        plan: &GeneratedPlan,
        out: &DolOutcome,
        stats: &ExecStats,
    ) -> Vec<DbOutcome> {
        plan.tasks
            .iter()
            .map(|t| {
                let status = out.status(&t.task).unwrap_or(TaskStatus::Error);
                let affected = out
                    .task_results
                    .get(&t.task)
                    .and_then(|r| decode_task_result(r).ok())
                    .map(|(a, _)| a)
                    .unwrap_or(0);
                let telemetry = stats.task(&t.task);
                DbOutcome {
                    database: t.database.clone(),
                    key: t.key.clone(),
                    status,
                    affected,
                    error: out.error(&t.task).map(str::to_string),
                    attempts: telemetry.map(|m| m.attempts).unwrap_or(0),
                    fault: telemetry.and_then(|m| m.fault),
                }
            })
            .collect()
    }

    /// Counts non-vital subqueries that failed while the statement as a
    /// whole survived — the §3.2 "tolerated" losses — into both the run
    /// snapshot and the session stats.
    fn count_degraded(&self, plan: &GeneratedPlan, outcomes: &[DbOutcome], stats: &mut ExecStats) {
        let degraded = plan
            .tasks
            .iter()
            .zip(outcomes)
            .filter(|(t, o)| {
                !t.vital && !matches!(o.status, TaskStatus::Committed | TaskStatus::Prepared)
            })
            .count() as u64;
        if degraded > 0 {
            stats.degraded += degraded;
            self.stats.lock().degraded += degraded;
        }
    }

    /// Runs a retrieval plan, assembling a multitable from the per-database
    /// partial results. A database whose task failed contributes no table;
    /// if every database failed the query fails.
    pub fn run_retrieval(&self, plan: &GeneratedPlan) -> Result<Multitable, MdbsError> {
        let (out, _stats) = self.run_program(plan)?;
        let mut tables = Vec::new();
        let mut last_error: Option<String> = None;
        for t in &plan.tasks {
            match out.status(&t.task) {
                Some(TaskStatus::Committed) => {
                    let result = out.task_results.get(&t.task).ok_or_else(|| {
                        MdbsError::Internal(format!("task {} lost its result", t.task))
                    })?;
                    let (_, payload) = decode_task_result(result)?;
                    let rs = match payload {
                        Some(p) => wire::decode_result_set(&p)?,
                        None => ResultSet::default(),
                    };
                    tables.push(MultitableEntry { database: t.database.clone(), result: rs });
                }
                _ => {
                    last_error = Some(format!("retrieval failed at `{}`", t.database));
                }
            }
        }
        if tables.is_empty() {
            if let Some(e) = last_error {
                return Err(MdbsError::Local { service: "retrieval".into(), message: e });
            }
        }
        Ok(Multitable { tables })
    }

    /// Runs a vital update plan.
    pub fn run_update(&self, plan: &GeneratedPlan) -> Result<UpdateReport, MdbsError> {
        let (out, mut stats) = self.run_program(plan)?;
        let outcomes = self.outcomes(plan, &out, &stats);
        let success = out.dolstatus == 0;
        if success {
            self.count_degraded(plan, &outcomes, &mut stats);
        }
        Ok(UpdateReport { success, return_code: out.dolstatus, outcomes, stats })
    }

    /// Runs a multitransaction plan. `n_states` is the number of acceptable
    /// states (to map the DOL return code back to a state index).
    pub fn run_mtx(&self, plan: &GeneratedPlan, n_states: usize) -> Result<MtxReport, MdbsError> {
        let (out, mut stats) = self.run_program(plan)?;
        let achieved_state = if out.dolstatus >= 0
            && (out.dolstatus as usize) < n_states
            && out.dolstatus != MTX_FAILED
        {
            Some(out.dolstatus as usize)
        } else {
            None
        };
        let outcomes = self.outcomes(plan, &out, &stats);
        if achieved_state.is_some() {
            self.count_degraded(plan, &outcomes, &mut stats);
        }
        Ok(MtxReport { achieved_state, return_code: out.dolstatus, outcomes, stats })
    }

    /// Executes a decomposed cross-database join: runs each local subquery,
    /// ships the partial results to the coordinator, evaluates the modified
    /// global query there, and cleans up the temporaries.
    ///
    /// Two data-flow optimisations apply (§5 argues multidatabase
    /// optimisation is about exactly this — data flow control and
    /// parallelism across sites, not individual database operations):
    ///
    /// * **Semi-join reduction** (when [`Self::semijoin`] and the
    ///   decomposition carries equi-join edges): one *reducer* subquery runs
    ///   first, its distinct join-key values are injected into the other
    ///   subqueries as `IN (…)` filters, and only matching rows cross the
    ///   wire. An edge whose key set exceeds [`Self::semijoin_cap`] falls
    ///   back to full shipping.
    /// * **Parallel partial dispatch** (when [`Self::parallel`]): the
    ///   remaining subqueries run concurrently, one scoped thread per LAM,
    ///   so N sites cost ≈1 round trip instead of N.
    pub fn run_cross_db(
        &self,
        dec: &Decomposition,
        routes: &HashMap<String, DbRoute>,
    ) -> Result<ResultSet, MdbsError> {
        let join_span = self.trace.child("join");

        // Resolve every route up front so a missing one fails before any
        // subquery is dispatched.
        let sub_routes: Vec<&DbRoute> = dec
            .subqueries
            .iter()
            .map(|sub| {
                routes.get(&sub.database).ok_or_else(|| {
                    MdbsError::Catalog(format!("no route for database `{}`", sub.database))
                })
            })
            .collect::<Result<_, _>>()?;

        // Cost-based planning: estimates exist only when the planner context
        // holds fresh statistics for *every* table of *every* subquery — a
        // single unanalyzed table keeps the whole join on the heuristics.
        let estimates: Option<Vec<Estimate>> = self
            .planner
            .as_ref()
            .and_then(|ctx| dec.subqueries.iter().map(|s| ctx.estimate_subquery(s)).collect());
        if estimates.is_some() {
            self.metrics.counter_add("planner.costed_joins", 1);
        }

        // Aggregate/top-k pushdown: when decomposition proved the query
        // eligible, skip the coordinator flow entirely — each site computes
        // its partial aggregates (or local top-k) and the merge happens
        // here, at the MDBS layer. Any ineligible query carries
        // `pushdown: None` and continues on the classic path unchanged.
        if self.agg_pushdown {
            if let Some(plan) = &dec.pushdown {
                return self.run_pushdown(dec, plan, &sub_routes, estimates.as_deref(), &join_span);
            }
        }

        // 1. Semi-join reduction: run the reducer, harvest its join keys.
        let n = dec.subqueries.len();
        let mut results: Vec<Option<PartialResult>> = vec![None; n];
        let mut filters: Vec<Vec<Expr>> = vec![Vec::new(); n];
        let mut keys_shipped = 0u64;
        if self.semijoin && n > 1 && !dec.join_keys.is_empty() {
            let reducer = match &estimates {
                Some(est) => pick_reducer_costed(dec, est),
                None => pick_reducer(dec),
            };
            let sub = &dec.subqueries[reducer];
            let est_rows = estimates.as_ref().map(|e| e[reducer].rows.round() as u64);
            let result = self.dispatch_partial(
                sub,
                sub_routes[reducer],
                &[],
                false,
                est_rows,
                &join_span.ctx(),
            )?;
            let rs = wire::decode_result_set(&result.payload)?;
            for key in &dec.join_keys {
                let (Some(own), Some(other)) =
                    (key.side_in(&sub.database), key.side_opposite(&sub.database))
                else {
                    continue;
                };
                let Some(col) = rs.columns.iter().position(|c| c.name == own.part_column) else {
                    continue;
                };
                let mut values: Vec<Value> = rs
                    .rows
                    .iter()
                    .map(|r| r[col].clone())
                    .filter(|v| !matches!(v, Value::Null))
                    .collect();
                values.sort_by(|a, b| a.total_cmp(b));
                values.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
                let Some(target) = dec.subqueries.iter().position(|s| s.database == other.database)
                else {
                    continue;
                };
                // Reduce-or-not: costed when both ends have estimates (an
                // empty key set always reduces — the filter is free and
                // prunes everything), the fixed cap otherwise.
                if !values.is_empty() {
                    let ship = match (&estimates, &self.planner) {
                        (Some(est), Some(ctx)) => {
                            // Ship iff the bytes the filter prunes from the
                            // target's partial exceed the key list's own
                            // bytes. `min(1, keys/NDV)` of the target's rows
                            // survive a k-key filter under uniformity.
                            let key_bytes: f64 = values.iter().map(planner::value_width).sum();
                            let survives = ctx
                                .join_key_ndv(
                                    &dec.subqueries[target],
                                    other.binding.as_str(),
                                    other.column.as_str(),
                                )
                                .map_or(1.0, |ndv| {
                                    if ndv == 0 {
                                        0.0
                                    } else {
                                        (values.len() as f64 / ndv as f64).min(1.0)
                                    }
                                });
                            let benefit = est[target].bytes * (1.0 - survives);
                            let ship = benefit > key_bytes;
                            let verdict = if ship {
                                "planner.edges_reduced"
                            } else {
                                "planner.edges_skipped"
                            };
                            self.metrics.counter_add(verdict, 1);
                            ship
                        }
                        _ => values.len() <= self.semijoin_cap,
                    };
                    if !ship {
                        continue; // predicted (or presumed) too expensive — full shipping
                    }
                }
                let filter = if values.is_empty() {
                    // No key can match; keep the subquery's shape (the
                    // coordinator still needs its column metadata) but let
                    // it ship zero rows.
                    Expr::Binary {
                        left: Box::new(Expr::Literal(Literal::Int(0))),
                        op: BinaryOp::Eq,
                        right: Box::new(Expr::Literal(Literal::Int(1))),
                    }
                } else {
                    keys_shipped += values.len() as u64;
                    Expr::InList {
                        expr: Box::new(Expr::Column(ColumnRef::with_table(
                            other.binding.as_str(),
                            other.column.as_str(),
                        ))),
                        list: values.iter().map(|v| Expr::Literal(value_literal(v))).collect(),
                        negated: false,
                    }
                };
                filters[target].push(filter);
            }
            results[reducer] = Some(result);
        }

        // 2. Dispatch the remaining subqueries — concurrently when allowed.
        // The unreduced baseline is measured (never shipped) only under
        // tracing, where the savings feed the EXPLAIN report.
        let measure = join_span.is_enabled();
        let pending: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();
        let dispatched: Vec<(usize, Result<PartialResult, MdbsError>)> =
            if self.parallel && pending.len() > 1 {
                let ctx = join_span.ctx();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = pending
                        .iter()
                        .map(|&i| {
                            let ctx = ctx.clone();
                            let sub = &dec.subqueries[i];
                            let route = sub_routes[i];
                            let extra = filters[i].as_slice();
                            let est = estimates.as_ref().map(|e| e[i].rows.round() as u64);
                            scope.spawn(move || {
                                (i, self.dispatch_partial(sub, route, extra, measure, est, &ctx))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("partial dispatch thread panicked"))
                        .collect()
                })
            } else {
                pending
                    .iter()
                    .map(|&i| {
                        let sub = &dec.subqueries[i];
                        (
                            i,
                            self.dispatch_partial(
                                sub,
                                sub_routes[i],
                                &filters[i],
                                measure,
                                estimates.as_ref().map(|e| e[i].rows.round() as u64),
                                &join_span.ctx(),
                            ),
                        )
                    })
                    .collect()
            };
        let mut first_err: Option<(usize, MdbsError)> = None;
        for (i, r) in dispatched {
            match r {
                Ok(p) => results[i] = Some(p),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let partials: Vec<(String, PartialResult)> = dec
            .subqueries
            .iter()
            .zip(results)
            .map(|(sub, r)| (sub.part_table.clone(), r.expect("every subquery dispatched")))
            .collect();

        // 3. Name the strategy and total savings on the join span/metrics.
        // The coordinator's LDBS hash-joins a two-table Q' on its equi keys;
        // anything else enumerates the (filtered) cross product.
        let reduced = filters.iter().any(|f| !f.is_empty());
        let base = if n == 2 && !dec.join_keys.is_empty() { "hash" } else { "product" };
        let strategy = if reduced { format!("semijoin+{base}") } else { base.to_string() };
        let bytes_saved: u64 =
            partials.iter().map(|(_, p)| p.full_bytes.saturating_sub(p.payload.len() as u64)).sum();
        join_span.note("strategy", &strategy);
        join_span.note("keys_shipped", keys_shipped);
        join_span.note("bytes_saved", bytes_saved);
        if estimates.is_some() {
            join_span.note("planner", "costed");
        }
        self.metrics.counter_add(&labeled("join.strategy", "strategy", &strategy), 1);
        self.metrics.counter_add("join.keys_shipped", keys_shipped);
        let route = routes.get(&dec.coordinator).ok_or_else(|| {
            MdbsError::Catalog(format!("no route for coordinator `{}`", dec.coordinator))
        })?;
        // 4. Collect the partial results at the coordinator.
        let mut coord = LamClient::connect_with(
            &self.net,
            &route.site,
            &dec.coordinator,
            self.timeout,
            self.retry.clone(),
            SharedExecStats::clone(&self.stats),
        )?;
        coord.set_wire_format(self.wire_format);
        {
            let span = join_span.child(format!("lam:collect:{}", dec.coordinator));
            span.note("db", &dec.coordinator);
            span.note("partials", partials.len());
            // One batched round trip: collection stays ≈1 link latency no
            // matter how many sites contributed partials.
            coord.load_partials(
                partials.iter().map(|(t, p)| (t.clone(), p.payload.clone())).collect(),
            )?;
        }

        // 5. Evaluate the modified global query Q' and clean up. With
        // estimates, its FROM list is greedily reordered by ascending
        // estimated partial cardinality, so the coordinator's join builds
        // its smallest intermediates first. A wildcard projection expands
        // in FROM order, so reordering would permute columns — skip it.
        let span = join_span.child(format!("lam:global:{}", dec.coordinator));
        span.note("db", &dec.coordinator);
        let wildcard = dec
            .global_query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)));
        let sql = match &estimates {
            Some(est) if n > 1 && !wildcard => {
                let mut global = dec.global_query.clone();
                let est_of = |tref: &msql_lang::TableRef| {
                    dec.subqueries
                        .iter()
                        .position(|s| s.part_table == tref.table.as_str())
                        .map_or(f64::MAX, |i| est[i].rows)
                };
                global.from.sort_by(|a, b| est_of(a).total_cmp(&est_of(b)));
                if global.from != dec.global_query.from {
                    let order: Vec<&str> = global.from.iter().map(|t| t.table.as_str()).collect();
                    span.note("join_order", order.join(","));
                }
                print_select(&global)
            }
            _ => print_select(&dec.global_query),
        };
        let req = Request::Task {
            name: "QGLOBAL".into(),
            mode: TaskMode::Auto,
            database: dec.coordinator.clone(),
            commands: vec![sql],
        };
        let (resp, attempts, _faults) = coord.call_traced(&req, &span);
        span.note("attempts", attempts);
        let _ = coord.drop_temps(partials.iter().map(|(t, _)| t.clone()).collect());
        match resp? {
            Response::TaskDone { status: 'C', payload: Some(p), .. } => {
                span.note("bytes", p.len());
                let rs = wire::decode_result_set(&p)?;
                span.note("rows", rs.rows.len());
                Ok(rs)
            }
            Response::TaskDone { status: 'C', payload: None, .. } => Ok(ResultSet::default()),
            Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: dec.coordinator.clone(),
                message: error.unwrap_or_else(|| "global query failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Connects to one subquery's LAM and evaluates it there, with `extra`
    /// conjuncts (semi-join filters) ANDed onto its WHERE clause. When
    /// filters were injected and `measure` is set, the LAM also measures the
    /// unreduced subquery so the span/metrics can report bytes saved.
    /// `est_rows` is the planner's pre-reduction row estimate, noted on the
    /// partial span so EXPLAIN can show estimated vs. actual.
    fn dispatch_partial(
        &self,
        sub: &DbSubquery,
        route: &DbRoute,
        extra: &[Expr],
        measure: bool,
        est_rows: Option<u64>,
        ctx: &SpanCtx,
    ) -> Result<PartialResult, MdbsError> {
        let mut client = LamClient::connect_with(
            &self.net,
            &route.site,
            &sub.database,
            self.timeout,
            self.retry.clone(),
            SharedExecStats::clone(&self.stats),
        )?;
        client.set_metrics(self.metrics.clone());
        client.set_wire_format(self.wire_format);
        let span = ctx.child(format!("lam:partial:{}", sub.database));
        if let Some(est) = est_rows {
            span.note("est_rows", est);
        }
        let sql = if extra.is_empty() {
            print_select(&sub.select)
        } else {
            span.note("reduced", "semijoin");
            print_select(&with_conjuncts(&sub.select, extra))
        };
        let baseline = (measure && !extra.is_empty()).then(|| print_select(&sub.select));
        let result = client.run_partial(&sql, baseline.as_deref(), &span)?;
        if let Some(access) = &result.access {
            span.note("access", access);
        }
        if result.full_bytes > 0 {
            let saved = result.full_bytes.saturating_sub(result.payload.len() as u64);
            span.note("saved", saved);
            self.metrics.counter_add(&labeled("lam.bytes_saved", "db", &sub.database), saved);
        }
        Ok(result)
    }

    /// Executes an aggregate/top-k pushdown plan: every site evaluates its
    /// rewritten subquery (partial aggregates grouped by join + group keys,
    /// or a site-local top-k), the reduced partials cross the wire, and the
    /// merge happens here at the MDBS layer — no coordinator round trips.
    /// Under tracing, each site also measures (never ships) its *unpushed*
    /// subquery so EXPLAIN can show the pushdown's savings.
    fn run_pushdown(
        &self,
        dec: &Decomposition,
        plan: &PushdownPlan,
        sub_routes: &[&DbRoute],
        estimates: Option<&[Estimate]>,
        join_span: &Span,
    ) -> Result<ResultSet, MdbsError> {
        let (kind, site_sql): (&str, Vec<String>) = match plan {
            PushdownPlan::Aggregate(p) => {
                ("agg", p.sites.iter().map(|s| print_select(&s.select)).collect())
            }
            PushdownPlan::TopK(p) => {
                ("topk", p.sites.iter().map(|s| print_select(&s.select)).collect())
            }
        };
        let measure = join_span.is_enabled();
        let n = dec.subqueries.len();
        let dispatched: Vec<(usize, Result<PartialResult, MdbsError>)> = if self.parallel && n > 1 {
            let ctx = join_span.ctx();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let ctx = ctx.clone();
                        let sub = &dec.subqueries[i];
                        let sql = site_sql[i].as_str();
                        let est = estimates.map(|e| e[i].rows.round() as u64);
                        scope.spawn(move || {
                            (
                                i,
                                self.dispatch_pushed(
                                    sub,
                                    sub_routes[i],
                                    sql,
                                    kind,
                                    measure,
                                    est,
                                    &ctx,
                                ),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pushed dispatch thread panicked"))
                    .collect()
            })
        } else {
            (0..n)
                .map(|i| {
                    (
                        i,
                        self.dispatch_pushed(
                            &dec.subqueries[i],
                            sub_routes[i],
                            &site_sql[i],
                            kind,
                            measure,
                            estimates.map(|e| e[i].rows.round() as u64),
                            &join_span.ctx(),
                        ),
                    )
                })
                .collect()
        };
        let mut results: Vec<Option<PartialResult>> = vec![None; n];
        let mut first_err: Option<(usize, MdbsError)> = None;
        for (i, r) in dispatched {
            match r {
                Ok(p) => results[i] = Some(p),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let partials: Vec<PartialResult> =
            results.into_iter().map(|r| r.expect("every site dispatched")).collect();
        let parts: Vec<ResultSet> = partials
            .iter()
            .map(|p| wire::decode_result_set(&p.payload))
            .collect::<Result<_, _>>()?;

        let shipped: u64 = parts.iter().map(|p| p.rows.len() as u64).sum();
        let bytes_saved: u64 =
            partials.iter().map(|p| p.full_bytes.saturating_sub(p.payload.len() as u64)).sum();
        self.metrics.counter_add("agg.pushdown", 1);
        let merged = match plan {
            PushdownPlan::Aggregate(p) => {
                let rs = merge::merge_aggregate(p, &parts)?;
                self.metrics.counter_add("agg.groups_merged", rs.rows.len() as u64);
                rs
            }
            PushdownPlan::TopK(p) => {
                self.metrics.counter_add("topk.rows_shipped", shipped);
                merge::merge_topk(p, &parts)?
            }
        };
        join_span.note("strategy", format!("{kind}-pushdown"));
        join_span.note("keys_shipped", 0u64);
        join_span.note("bytes_saved", bytes_saved);
        if estimates.is_some() {
            join_span.note("planner", "costed");
        }
        self.metrics
            .counter_add(&labeled("join.strategy", "strategy", &format!("{kind}-pushdown")), 1);
        Ok(merged)
    }

    /// Connects to one site's LAM and evaluates its *pushed* (pre-aggregated
    /// or top-k-limited) subquery there. `est_rows` is the planner's
    /// estimate for the site's *unpushed* partial, noted on the span so
    /// EXPLAIN can contrast shipped rows against what full shipping would
    /// have cost; when `measure` is set the LAM also measures (never ships)
    /// the unpushed subquery for the same comparison.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_pushed(
        &self,
        sub: &DbSubquery,
        route: &DbRoute,
        sql: &str,
        kind: &str,
        measure: bool,
        est_rows: Option<u64>,
        ctx: &SpanCtx,
    ) -> Result<PartialResult, MdbsError> {
        let mut client = LamClient::connect_with(
            &self.net,
            &route.site,
            &sub.database,
            self.timeout,
            self.retry.clone(),
            SharedExecStats::clone(&self.stats),
        )?;
        client.set_metrics(self.metrics.clone());
        client.set_wire_format(self.wire_format);
        let span = ctx.child(format!("lam:partial:{}", sub.database));
        if let Some(est) = est_rows {
            span.note("est_rows", est);
        }
        span.note("pushed", kind);
        let baseline = measure.then(|| print_select(&sub.select));
        let result = client.run_partial_agg(sql, baseline.as_deref(), &span)?;
        if result.full_rows > 0 {
            span.note("full_rows", result.full_rows);
        }
        if result.full_bytes > 0 {
            let saved = result.full_bytes.saturating_sub(result.payload.len() as u64);
            span.note("saved", saved);
            self.metrics.counter_add(&labeled("lam.bytes_saved", "db", &sub.database), saved);
        }
        Ok(result)
    }
}

/// Chooses the semi-join reducer: among the subqueries on at least one join
/// edge, the one whose WHERE clause carries the most pushed-down local
/// conjuncts — a cheap proxy for selectivity — ties broken by plan order.
fn pick_reducer(dec: &Decomposition) -> usize {
    let mut best = 0usize;
    let mut best_score = -1i64;
    for (i, sub) in dec.subqueries.iter().enumerate() {
        if !dec.join_keys.iter().any(|k| k.side_in(&sub.database).is_some()) {
            continue;
        }
        let score = conjunct_count(sub.select.where_clause.as_ref()) as i64;
        if score > best_score {
            best = i;
            best_score = score;
        }
    }
    best
}

/// Chooses the semi-join reducer from the planner's estimates: among the
/// subqueries on at least one join edge, the one with the smallest estimated
/// partial — the most selective site reduces, whatever its conjunct count —
/// ties broken by plan order.
fn pick_reducer_costed(dec: &Decomposition, est: &[Estimate]) -> usize {
    let mut best = 0usize;
    let mut best_rows = f64::MAX;
    for (i, sub) in dec.subqueries.iter().enumerate() {
        if !dec.join_keys.iter().any(|k| k.side_in(&sub.database).is_some()) {
            continue;
        }
        if est[i].rows < best_rows {
            best = i;
            best_rows = est[i].rows;
        }
    }
    best
}

/// Counts the AND-ed conjuncts of a WHERE clause (0 when absent).
fn conjunct_count(e: Option<&Expr>) -> usize {
    fn walk(e: &Expr) -> usize {
        match e {
            Expr::Binary { left, op: BinaryOp::And, right } => walk(left) + walk(right),
            _ => 1,
        }
    }
    e.map_or(0, walk)
}

/// ANDs extra conjuncts onto a subquery's WHERE clause.
fn with_conjuncts(sel: &Select, extra: &[Expr]) -> Select {
    let mut out = sel.clone();
    let mut clause = out.where_clause.take();
    for e in extra {
        clause = Some(match clause {
            Some(w) => {
                Expr::Binary { left: Box::new(w), op: BinaryOp::And, right: Box::new(e.clone()) }
            }
            None => e.clone(),
        });
    }
    out.where_clause = clause;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_unwrappers_reject_wrong_kind() {
        let admin = MsqlOutcome::Admin("ok".into());
        assert!(admin.clone().into_multitable().is_err());
        assert!(admin.clone().into_update().is_err());
        assert!(admin.clone().into_mtx().is_err());
        assert!(admin.into_table().is_err());
        let mt = MsqlOutcome::Multitable(Multitable::default());
        assert!(mt.into_multitable().is_ok());
    }
}
