//! The public facade: a loosely coupled federation executing extended MSQL.
//!
//! Since the concurrency split, the facade is layered the way the paper's
//! server is ("the server handles multiple user sessions"):
//!
//! * [`FederationCore`] — the shared, thread-safe substrate: the network,
//!   both dictionaries, the LAM handles, the trigger registry, the logical
//!   clock and the metrics registry. One per federation, behind an `Arc`.
//! * [`Session`] — one user's execution context: scope, deferred-commit
//!   global transaction, per-session accounting, tracing and WAL. Cheap to
//!   create ([`Session::session`]), `Send`, and independent — N threads run
//!   N sessions against the same core at once.
//! * [`Federation`] — the primary session plus ownership of the core, kept
//!   as the single-user entry point. It derefs to its [`Session`], so all
//!   pre-split code compiles unchanged.

use crate::codec::WireFormat;
use crate::error::MdbsError;
use crate::executor::{DbOutcome, Executor, MsqlOutcome, UpdateReport, DEFAULT_SEMIJOIN_CAP};
use crate::gtxn::GlobalTransaction;
use crate::lam::{spawn_lam_with, LamConfig, LamHandle};
use crate::lamclient::{LamClient, LamFactory};
use crate::planner::PlannerContext;
use crate::retry::{shared_stats, ExecStats, RetryPolicy, SharedExecStats};
use crate::scope::SessionScope;
use crate::translate::{
    self, multitransaction_plan, retrieval_plan, update_plan, DbRoute, Decomposition, MtxQueryPlan,
    Translated,
};
use crate::wal::{Wal, WalDecision, WalRecord};
use catalog::{
    apply_import, AuxiliaryDirectory, GddColumn, GddTable, GlobalDataDictionary, ServiceEntry,
};
use ldbs::profile::StatementClass;
use ldbs::Engine;
use msql_lang::printer::print;
use msql_lang::{
    CreateIndex, CreateTable, DropIndex, DropTable, MsqlQuery, Multitransaction, QueryBody,
    Statement,
};
use netsim::Network;
use obs::{
    labeled, ExplainReport, LogicalClock, MetricsRegistry, MetricsSnapshot, Span, SpanCtx,
    SpanTree, Tracer, WireSummary,
};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many times a session transparently re-runs a statement whose every
/// subtransaction aborted as a deadlock victim. Victims are chosen so the
/// surviving transaction makes progress, so a bounded retry almost always
/// succeeds; past the bound the retriable error surfaces to the caller.
const DEADLOCK_RETRIES: u32 = 4;

/// One registered interdatabase trigger.
#[derive(Debug, Clone)]
struct TriggerDef {
    name: String,
    database: msql_lang::WildName,
    table: msql_lang::WildName,
    event: msql_lang::TriggerEvent,
    action: Statement,
}

/// The shared substrate of a federation: everything that is one-per-server
/// rather than one-per-user. All mutable pieces sit behind their own locks,
/// so concurrent sessions only serialize on catalog *changes*, never on
/// statement execution.
pub struct FederationCore {
    net: Network,
    ad: RwLock<AuxiliaryDirectory>,
    gdd: RwLock<GlobalDataDictionary>,
    lams: RwLock<HashMap<String, LamHandle>>,
    /// Interdatabase triggers (MSQL §2), fired after committed
    /// modifications in immediate (non-deferred) mode.
    triggers: RwLock<Vec<TriggerDef>>,
    /// Deterministic logical clock, shared with the network probe and every
    /// statement tracer (no wall time: identical runs read identical ticks).
    clock: LogicalClock,
    /// Shared metrics registry: the network probe, LAM clients and the
    /// executor all write here; [`Session::metrics`] reads it back.
    metrics: MetricsRegistry,
    /// The GDD's statistics tier: per database, the site statistics its LAM
    /// exported over the `STATS` exchange. Filled lazily the first time a
    /// cross-database join touches the database, invalidated by DDL and
    /// `ANALYZE` against it.
    site_stats: RwLock<HashMap<String, Vec<crate::wire::SiteTableStats>>>,
    /// Next session id (the primary session is 0).
    session_seq: AtomicU64,
}

/// One user session on a federation: private scope, deferred-commit state,
/// accounting, tracing and WAL, plus an `Arc` to the shared core. `Send`, so
/// sessions move to worker threads; create them with [`Session::session`].
pub struct Session {
    /// Pending vital subqueries in deferred-commit mode. Declared before
    /// `core` so a drop-time rollback still finds live LAM threads.
    gtxn: GlobalTransaction,
    /// §3.2.2 deferred-commit mode: vital subqueries stay prepared across
    /// statements until a synchronization point.
    deferred: bool,
    scope: SessionScope,
    /// Recursion guard for cascading triggers.
    trigger_depth: u32,
    /// Run DOL task batches in parallel (default true).
    pub parallel: bool,
    /// Per-request network timeout.
    pub timeout: Duration,
    /// Transient-fault retry policy for every LAM request (default: a
    /// single attempt, faults surface immediately).
    pub retry: RetryPolicy,
    /// Tunables for the LAM server threads this federation spawns
    /// (control timeout, poll interval, dedup cache size).
    pub lam_config: LamConfig,
    /// Graceful degradation: tolerate services unreachable at OPEN time,
    /// letting the §3.2 vital semantics decide the statement's fate
    /// (default false: an unreachable service fails the plan at OPEN).
    pub tolerate_unreachable: bool,
    /// Semi-join reduction of cross-database joins (default true): ship the
    /// reducer's distinct join-key values to the other sites as `IN (…)`
    /// filters so only matching rows cross the wire.
    pub semijoin: bool,
    /// Per-edge cap on the distinct key values shipped as a semi-join
    /// filter; beyond it the edge falls back to full shipping. Applies only
    /// when the cost planner has no estimates for the edge — with fresh
    /// statistics the decision is an estimated-bytes comparison instead.
    pub semijoin_cap: usize,
    /// Cost-based planning of cross-database joins (default true): when the
    /// coordinator holds fresh `ANALYZE` statistics for every table a join
    /// reads, estimated row/byte counts pick the semi-join reducer, decide
    /// each reduction edge by predicted benefit and order the modified
    /// global query by ascending estimated cardinality. Databases without
    /// statistics keep the heuristic path unchanged.
    pub cost_planner: bool,
    /// Aggregate/top-k pushdown of cross-database joins (default true):
    /// when decomposition proves a 2-site query's aggregates decomposable
    /// (or it is a pure-product top-k), each site pre-aggregates (or limits)
    /// locally and the MDBS layer merges the reduced partials. Off — or any
    /// ineligible query — executes the classic ship-everything coordinator
    /// plan, byte-for-byte.
    pub agg_pushdown: bool,
    /// Encoding LAM requests travel in (default [`WireFormat::Text`], the
    /// debug and golden-trace format). [`WireFormat::Binary`] switches this
    /// session's clients to length-prefixed columnar frames; the servers
    /// mirror whatever format each request arrives in, so sessions with
    /// different settings coexist on one federation.
    pub wire_format: WireFormat,
    /// Session-level communication accounting.
    stats: SharedExecStats,
    /// The tracer of the statement currently executing (None between
    /// statements; trigger actions reuse the active tracer).
    trace: Option<Tracer>,
    /// Where spans opened by long-lived components (executor, DOL engine)
    /// hang while a statement runs.
    trace_ctx: SpanCtx,
    /// Raw span forest of the most recently completed top-level statement.
    last_trace: Option<SpanTree>,
    /// Durable multitransaction log (None until [`Session::enable_wal`]
    /// or [`Session::set_wal`]). When present, the executor records every
    /// settle-bearing statement's lifecycle and [`Session::recover`] can
    /// finish statements a crashed coordinator left behind.
    wal: Option<Wal>,
    /// This session's id (0 = the primary session; span notes and labeled
    /// metrics carry it for every spawned session).
    id: u64,
    core: Arc<FederationCore>,
}

// Sessions are handed to worker threads; keep that a compile-time guarantee.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

/// A running federation: the shared core plus its primary session. Derefs to
/// [`Session`], so single-user code uses it exactly as before the split.
pub struct Federation {
    session: Session,
}

impl Deref for Federation {
    type Target = Session;
    fn deref(&self) -> &Session {
        &self.session
    }
}

impl DerefMut for Federation {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

/// Collapses statement text to a deterministic one-line span label.
fn text_note(text: &str) -> String {
    let flat = text.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() > 72 {
        let cut: String = flat.chars().take(72).collect();
        format!("{cut}...")
    } else {
        flat
    }
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Federation {
    /// Creates an empty federation on a fresh (zero-latency) network.
    pub fn new() -> Self {
        Federation::with_network(Network::new())
    }

    /// Creates a federation on an existing network (latency/failure models
    /// installed by the caller).
    pub fn with_network(net: Network) -> Self {
        let clock = LogicalClock::new();
        let metrics = MetricsRegistry::new();
        net.attach_probe(clock.clone(), metrics.clone());
        let core = Arc::new(FederationCore {
            net,
            ad: RwLock::new(AuxiliaryDirectory::new()),
            gdd: RwLock::new(GlobalDataDictionary::new()),
            lams: RwLock::new(HashMap::new()),
            triggers: RwLock::new(Vec::new()),
            clock,
            metrics,
            site_stats: RwLock::new(HashMap::new()),
            session_seq: AtomicU64::new(1),
        });
        Federation { session: Session::with_core(core, 0) }
    }
}

impl Session {
    fn with_core(core: Arc<FederationCore>, id: u64) -> Session {
        Session {
            gtxn: GlobalTransaction::default(),
            deferred: false,
            scope: SessionScope::new(),
            trigger_depth: 0,
            parallel: true,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            lam_config: LamConfig::default(),
            tolerate_unreachable: false,
            semijoin: true,
            semijoin_cap: DEFAULT_SEMIJOIN_CAP,
            cost_planner: true,
            agg_pushdown: true,
            wire_format: WireFormat::default(),
            stats: shared_stats(),
            trace: None,
            trace_ctx: SpanCtx::disabled(),
            last_trace: None,
            wal: None,
            id,
            core,
        }
    }

    /// Opens a new independent session on the same federation core: fresh
    /// scope, fresh accounting, no WAL, configuration copied from this
    /// session. The handle is `Send` — move it to a worker thread and run
    /// statements concurrently with every other session.
    pub fn session(&self) -> Session {
        let id = self.core.session_seq.fetch_add(1, Ordering::Relaxed);
        let mut s = Session::with_core(Arc::clone(&self.core), id);
        s.parallel = self.parallel;
        s.timeout = self.timeout;
        s.retry = self.retry.clone();
        s.lam_config = self.lam_config.clone();
        s.tolerate_unreachable = self.tolerate_unreachable;
        s.semijoin = self.semijoin;
        s.semijoin_cap = self.semijoin_cap;
        s.cost_planner = self.cost_planner;
        s.agg_pushdown = self.agg_pushdown;
        s.wire_format = self.wire_format;
        s
    }

    /// This session's id (0 for the federation's primary session).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The federation's logical clock. It advances on observable events only
    /// (span open/close, simulated network traffic), so latencies read off it
    /// are deterministic.
    pub fn clock(&self) -> &LogicalClock {
        &self.core.clock
    }

    /// Observability snapshot: every counter/gauge/histogram accumulated so
    /// far (network traffic, per-LAM calls and payloads, per-phase
    /// latencies), with each service's local engine statistics scraped into
    /// `ldbs.*{service=...}` gauges at call time.
    pub fn metrics(&self) -> MetricsSnapshot {
        for (service, lam) in self.core.lams.read().iter() {
            let stats = lam.engine.lock().stats();
            let gauge = |name: &str, value: u64| {
                self.core.metrics.gauge_set(&labeled(name, "service", service), value as i64);
            };
            gauge("ldbs.statements", stats.statements);
            gauge("ldbs.commits", stats.commits);
            gauge("ldbs.aborts", stats.aborts);
            gauge("ldbs.prepares", stats.prepares);
            gauge("ldbs.rows_scanned", stats.rows_scanned);
            gauge("ldbs.index_hits", stats.index_hits);
            gauge("lam.served", lam.stats.served.load(std::sync::atomic::Ordering::Relaxed));
            gauge("lam.replayed", lam.stats.replayed.load(std::sync::atomic::Ordering::Relaxed));
        }
        self.core.metrics.snapshot()
    }

    /// The live metrics registry (to reset between phases or to share with
    /// external components).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    /// The normalized span tree of the most recently completed top-level
    /// statement, or `None` before the first statement runs.
    pub fn last_trace(&self) -> Option<SpanTree> {
        self.last_trace.clone().map(|mut t| {
            t.normalize();
            t
        })
    }

    /// A snapshot of the session's communication accounting (attempts,
    /// retries, faults, degraded subqueries) across every statement
    /// executed so far.
    pub fn exec_stats(&self) -> ExecStats {
        self.stats.lock().clone()
    }

    /// The shared network (to install latency models or read traffic stats).
    pub fn network(&self) -> &Network {
        &self.core.net
    }

    /// The Global Data Dictionary (a read guard: concurrent sessions read
    /// in parallel, catalog changes briefly exclude them).
    pub fn gdd(&self) -> RwLockReadGuard<'_, GlobalDataDictionary> {
        self.core.gdd.read()
    }

    /// The Auxiliary Directory (a read guard).
    pub fn ad(&self) -> RwLockReadGuard<'_, AuxiliaryDirectory> {
        self.core.ad.read()
    }

    /// The current session scope.
    pub fn scope(&self) -> &SessionScope {
        &self.scope
    }

    /// The shared engine of a service (tests and fixtures seed data and
    /// inject failures through this).
    pub fn engine(&self, service: &str) -> Option<Arc<Mutex<Engine>>> {
        self.core.lams.read().get(&service.to_ascii_lowercase()).map(|l| Arc::clone(&l.engine))
    }

    /// Registers a service: spawns its LAM at `site` and records an
    /// Auxiliary Directory entry derived from the engine's capability
    /// profile (equivalent to the INCORPORATE statement an administrator
    /// would issue).
    pub fn add_service(
        &mut self,
        service: &str,
        site: &str,
        engine: Engine,
    ) -> Result<(), MdbsError> {
        let service = service.to_ascii_lowercase();
        let mut lams = self.core.lams.write();
        if lams.contains_key(&service) {
            return Err(MdbsError::Catalog(format!("service `{service}` already added")));
        }
        let profile = engine.profile.clone();
        let lam = spawn_lam_with(&self.core.net, &service, site, engine, self.lam_config.clone())?;
        self.core.ad.write().insert(ServiceEntry {
            name: service.clone(),
            site: site.to_string(),
            multi_database: profile.multi_database,
            commit_mode: profile.capability_for(StatementClass::Dml),
            create_mode: Some(profile.capability_for(StatementClass::Create)),
            insert_mode: Some(profile.capability_for(StatementClass::Insert)),
            drop_mode: Some(profile.capability_for(StatementClass::Drop)),
        });
        lams.insert(service, lam);
        Ok(())
    }

    /// Creates a database on a service and registers it in the GDD.
    pub fn create_database(&mut self, service: &str, database: &str) -> Result<(), MdbsError> {
        let service = service.to_ascii_lowercase();
        let lams = self.core.lams.read();
        let lam = lams
            .get(&service)
            .ok_or_else(|| MdbsError::Catalog(format!("unknown service `{service}`")))?;
        lam.engine
            .lock()
            .create_database(database)
            .map_err(|e| MdbsError::Local { service: service.clone(), message: e.to_string() })?;
        drop(lams);
        self.core.gdd.write().register_database(database, &service)?;
        Ok(())
    }

    /// Builds the `database → route` map the planner and executor need.
    fn routes(&self) -> Result<HashMap<String, DbRoute>, MdbsError> {
        let gdd = self.core.gdd.read();
        let ad = self.core.ad.read();
        let mut out = HashMap::new();
        for db in gdd.database_names() {
            let service = gdd.service_of(db)?;
            let entry = ad.service(service)?;
            out.insert(
                db.to_string(),
                DbRoute {
                    database: db.to_string(),
                    site: entry.site.clone(),
                    supports_2pc: entry.supports_2pc(),
                },
            );
        }
        Ok(out)
    }

    fn executor(&self) -> Executor {
        Executor {
            net: self.core.net.clone(),
            parallel: self.parallel,
            timeout: self.timeout,
            retry: self.retry.clone(),
            stats: SharedExecStats::clone(&self.stats),
            tolerate_unreachable: self.tolerate_unreachable,
            semijoin: self.semijoin,
            semijoin_cap: self.semijoin_cap,
            agg_pushdown: self.agg_pushdown,
            trace: self.trace_ctx.clone(),
            metrics: self.core.metrics.clone(),
            wire_format: self.wire_format,
            planner: None,
            wal: self.wal.clone(),
        }
    }

    /// Enables an in-memory write-ahead log and returns its handle. The
    /// handle is the log's "disk": it stays valid after this session (or
    /// a statement running on it) dies, so a successor coordinator can be
    /// built around the same log and [`Session::recover`] from it.
    pub fn enable_wal(&mut self) -> Wal {
        let wal = Wal::in_memory();
        self.set_wal(wal.clone());
        wal
    }

    /// Installs an existing log — file-backed, or carried over from a
    /// crashed coordinator.
    pub fn set_wal(&mut self, wal: Wal) {
        wal.attach_metrics(self.core.metrics.clone());
        self.wal = Some(wal);
    }

    /// The installed write-ahead log, if any.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Finishes every multitransaction the log shows as interrupted: for
    /// each un-ended image, replays the logged decision (or presumes abort
    /// when the coordinator died before deciding) and re-resolves every
    /// unresolved task via `RESOLVE` — committing or rolling back prepared
    /// subtransactions and compensating autocommitted ones. Idempotent and
    /// re-enterable: every resolution is logged as it lands, so a crash
    /// *during* recovery just leaves less for the next pass.
    pub fn recover(&mut self) -> Result<RecoveryReport, MdbsError> {
        let Some(wal) = self.wal.clone() else {
            return Ok(RecoveryReport::default());
        };
        let tracer = Tracer::new(self.core.clock.clone());
        let root = tracer.root("recovery");
        let started = self.core.clock.now();
        self.core.metrics.counter_add("recovery.runs", 1);
        let result = self.recover_images(&wal, &root);
        if let Err(e) = &result {
            root.note("error", text_note(&e.to_string()));
        }
        root.end();
        self.core.metrics.observe("phase.recovery", self.core.clock.now().saturating_sub(started));
        self.last_trace = Some(SpanTree::from_records(&tracer.records()));
        result
    }

    fn recover_images(&mut self, wal: &Wal, root: &Span) -> Result<RecoveryReport, MdbsError> {
        let mut report = RecoveryReport::default();
        for image in wal.replay()? {
            if image.ended {
                continue;
            }
            let span = root.child("recover-mtx");
            span.note("mtx", image.mtx_id.to_string());
            self.core.metrics.counter_add("recovery.mtx", 1);
            // The decision rules the settle phase. No decision record means
            // the coordinator died first: presume abort (§3.4 semantics —
            // prepared tasks roll back, autocommitted ones are compensated).
            let (commit_set, compensate_set, achieved_state) = match &image.decision {
                Some(WalDecision::Commit { state, commit, compensate }) => {
                    span.note("decision", format!("commit-state-{state}"));
                    (commit.clone(), compensate.clone(), Some(*state as usize))
                }
                Some(WalDecision::Abort { compensate }) => {
                    span.note("decision", "abort");
                    (Vec::new(), compensate.clone(), None)
                }
                None => {
                    span.note("decision", "presumed-abort");
                    self.core.metrics.counter_add("recovery.presumed_abort", 1);
                    (Vec::new(), image.abort_compensate.clone(), None)
                }
            };
            let mut statuses: HashMap<String, dol::TaskStatus> = image
                .resolved
                .iter()
                .map(|(task, &code)| (task.clone(), status_from_code(code)))
                .collect();
            for task in &image.tasks {
                if image.resolved.contains_key(&task.name) {
                    continue;
                }
                let tspan = span.child("resolve");
                tspan.note("task", &task.name);
                let should_commit = commit_set.contains(&task.name);
                // A task logged 'C' is settled at its LAM already — no RPC
                // needed unless it must be compensated below.
                let code = if image.prepared.get(&task.name) == Some(&'C') {
                    'C'
                } else {
                    let client = self.connect(&task.site, &task.database)?;
                    client.resolve_task_outcome(&task.name, should_commit, &tspan)?
                };
                self.core.metrics.counter_add("recovery.resolved", 1);
                // An autocommitted task that the decision excludes is undone
                // semantically (§3.3). Idempotent at the LAM ('K' memory).
                let code = if code == 'C' && !should_commit && compensate_set.contains(&task.name) {
                    let client = self.connect(&task.site, &task.database)?;
                    client.compensate_commands(&task.name, &task.compensation, &tspan)?;
                    self.core.metrics.counter_add("recovery.compensated", 1);
                    'K'
                } else {
                    code
                };
                tspan.note("status", code.to_string());
                tspan.end();
                wal.append(&WalRecord::TaskResolved {
                    mtx_id: image.mtx_id,
                    task: task.name.clone(),
                    status: code,
                })?;
                statuses.insert(task.name.clone(), status_from_code(code));
            }
            wal.append(&WalRecord::End { mtx_id: image.mtx_id })?;
            span.end();
            report.recovered.push(RecoveredMtx {
                mtx_id: image.mtx_id,
                achieved_state,
                presumed_abort: image.decision.is_none(),
                statuses,
                states: image.states,
                oracle: image.oracle,
            });
        }
        Ok(report)
    }

    /// A LAM client for direct (non-DOL) traffic, wired to the
    /// federation's retry policy and accounting.
    fn connect(&self, site: &str, database: &str) -> Result<LamClient, MdbsError> {
        let mut client = LamClient::connect_with(
            &self.core.net,
            site,
            database,
            self.timeout,
            self.retry.clone(),
            SharedExecStats::clone(&self.stats),
        )?;
        client.set_metrics(self.core.metrics.clone());
        client.set_wire_format(self.wire_format);
        Ok(client)
    }

    /// Parses and executes a raw DOL program against the federation's
    /// services — the paper's intermediate language, exposed directly for
    /// hand-written evaluation plans and tooling. `OPEN <database> AT
    /// <site>` statements resolve against the live network.
    pub fn execute_dol(&mut self, program: &str) -> Result<dol::DolOutcome, MdbsError> {
        let parsed = dol::parse_program(program)?;
        let factory = LamFactory {
            net: self.core.net.clone(),
            timeout: self.timeout,
            retry: self.retry.clone(),
            stats: SharedExecStats::clone(&self.stats),
            metrics: self.core.metrics.clone(),
            tolerate_unreachable: self.tolerate_unreachable,
            wire_format: self.wire_format,
        };
        let mut engine = if self.parallel {
            dol::DolEngine::new(&factory)
        } else {
            dol::DolEngine::serial(&factory)
        };
        engine.trace = self.trace_ctx.clone();
        Ok(engine.execute(&parsed)?)
    }

    /// Switches §3.2.2 deferred-commit mode on or off. In deferred mode,
    /// vital subqueries stay prepared across statements and are resolved
    /// together at the next synchronization point (`COMMIT`, `ROLLBACK`, a
    /// `USE` scope change, or session end). Turning the mode off is itself a
    /// synchronization point.
    pub fn set_deferred_commit(&mut self, deferred: bool) -> Option<UpdateReport> {
        let report =
            if !deferred && !self.gtxn.is_empty() { Some(self.gtxn.resolve(false)) } else { None };
        self.deferred = deferred;
        report
    }

    /// Number of vital subqueries currently pending in the global
    /// transaction (deferred-commit mode).
    pub fn pending_vital_subqueries(&self) -> usize {
        self.gtxn.len()
    }

    /// True when the statement's result is an all-aborted deadlock outcome
    /// the session may transparently re-run: nothing committed, nothing is
    /// held open, and at least one subtransaction was a deadlock victim.
    fn retriable_deadlock(&self, result: &Result<MsqlOutcome, MdbsError>) -> bool {
        if self.deferred || self.trigger_depth > 0 {
            return false;
        }
        match result {
            Err(e) => e.to_string().contains("deadlock victim"),
            Ok(MsqlOutcome::Update(r)) => {
                !r.success
                    && r.outcomes.iter().all(|o| o.status != dol::TaskStatus::Committed)
                    && r.outcomes
                        .iter()
                        .any(|o| o.error.as_deref().is_some_and(|e| e.contains("deadlock victim")))
            }
            _ => false,
        }
    }

    /// Parses and executes one MSQL statement. The parse itself runs under
    /// the statement's root span, so traces show the full lifecycle.
    pub fn execute(&mut self, msql: &str) -> Result<MsqlOutcome, MdbsError> {
        let mut attempts = 0;
        loop {
            let result = self.traced_statement(text_note(msql), |fed, span| {
                let started = fed.core.clock.now();
                let parse = span.child("parse");
                let stmt = match msql_lang::parse_statement(msql) {
                    Ok(stmt) => stmt,
                    Err(e) => {
                        parse.note("error", "syntax");
                        return Err(MdbsError::Parse(e.display_with_source(msql)));
                    }
                };
                parse.end();
                fed.core
                    .metrics
                    .observe("phase.parse", fed.core.clock.now().saturating_sub(started));
                fed.dispatch_statement(&stmt, span)
            });
            if attempts < DEADLOCK_RETRIES && self.retriable_deadlock(&result) {
                attempts += 1;
                self.core.metrics.counter_add("session.deadlock_retries", 1);
                continue;
            }
            return result;
        }
    }

    /// Runs `f` under a per-statement root span. A top-level call starts a
    /// fresh tracer and captures the finished span forest into
    /// [`Session::last_trace`]; a nested call (a trigger action, an
    /// EXPLAIN target) hangs a `statement` span under the active context.
    fn traced_statement<F>(&mut self, label: String, f: F) -> Result<MsqlOutcome, MdbsError>
    where
        F: FnOnce(&mut Session, &Span) -> Result<MsqlOutcome, MdbsError>,
    {
        let nested = self.trace.is_some();
        let span = if nested {
            self.trace_ctx.child("statement")
        } else {
            let tracer = Tracer::new(self.core.clock.clone());
            let root = tracer.root("statement");
            self.trace = Some(tracer);
            root
        };
        if !label.is_empty() {
            span.note("text", label);
        }
        // Label spawned sessions' spans and metrics; the primary session
        // (id 0) stays unlabeled so single-user traces are unchanged.
        if self.id != 0 {
            span.note("session", self.id.to_string());
        }
        let prev_ctx = std::mem::replace(&mut self.trace_ctx, span.ctx());
        let started = self.core.clock.now();
        let result = f(self, &span);
        self.trace_ctx = prev_ctx;
        if let Err(e) = &result {
            span.note("error", text_note(&e.to_string()));
        }
        span.end();
        self.core.metrics.observe("phase.statement", self.core.clock.now().saturating_sub(started));
        if self.id != 0 {
            self.core
                .metrics
                .counter_add(&labeled("session.statements", "session", &self.id.to_string()), 1);
        }
        if !nested {
            if let Some(tracer) = self.trace.take() {
                self.last_trace = Some(SpanTree::from_records(&tracer.records()));
            }
        }
        result
    }

    /// Executes the statement with full tracing, then returns the measured
    /// profile — span tree plus per-LAM cost table — instead of the
    /// statement's own outcome. EXPLAIN *runs* its target (the paper's
    /// simulated costs are observed, not estimated).
    pub fn explain(&mut self, stmt: &Statement) -> Result<MsqlOutcome, MdbsError> {
        let text = print(stmt);
        // Snapshot the wire byte counters around the run so the report can
        // show what this statement alone put on the wire per format.
        let text_before = self.core.metrics.counter("net.bytes_text");
        let binary_before = self.core.metrics.counter("net.bytes_binary");
        self.execute_statement(stmt)?;
        let tree = self.last_trace().unwrap_or_default();
        let mut report = ExplainReport::from_tree(text, tree);
        // Populated only when binary frames actually shipped: the text
        // default renders byte-identically to pre-codec reports, which the
        // golden traces pin.
        let bytes_binary = self.core.metrics.counter("net.bytes_binary") - binary_before;
        if bytes_binary > 0 {
            report.wire = Some(WireSummary {
                format: self.wire_format.label().to_string(),
                bytes_text: self.core.metrics.counter("net.bytes_text") - text_before,
                bytes_binary,
            });
        }
        Ok(MsqlOutcome::Explain(Box::new(report)))
    }

    /// Parses and executes a script, returning one outcome per statement.
    pub fn execute_script(&mut self, msql: &str) -> Result<Vec<MsqlOutcome>, MdbsError> {
        let script = msql_lang::parse_script(msql)
            .map_err(|e| MdbsError::Parse(e.display_with_source(msql)))?;
        let mut out = Vec::with_capacity(script.statements.len());
        for stmt in &script.statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Executes a pre-parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<MsqlOutcome, MdbsError> {
        if let Statement::Explain(inner) = stmt {
            return self.explain(inner);
        }
        let mut attempts = 0;
        loop {
            let result = self.traced_statement(text_note(&print(stmt)), |fed, span| {
                fed.dispatch_statement(stmt, span)
            });
            if attempts < DEADLOCK_RETRIES && self.retriable_deadlock(&result) {
                attempts += 1;
                self.core.metrics.counter_add("session.deadlock_retries", 1);
                continue;
            }
            return result;
        }
    }

    /// The statement dispatcher proper, running under `span`.
    fn dispatch_statement(
        &mut self,
        stmt: &Statement,
        span: &Span,
    ) -> Result<MsqlOutcome, MdbsError> {
        match stmt {
            Statement::Use(u) => {
                // A scope change is a synchronization point (§3.2.2).
                if self.deferred && !self.gtxn.is_empty() {
                    let report = self.gtxn.resolve(false);
                    self.scope.apply_use(u)?;
                    return Ok(MsqlOutcome::Update(report));
                }
                self.scope.apply_use(u)?;
                Ok(MsqlOutcome::Admin(format!(
                    "scope: {}",
                    self.scope
                        .databases
                        .iter()
                        .map(|d| if d.vital {
                            format!("{} VITAL", d.key())
                        } else {
                            d.key().to_string()
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                )))
            }
            Statement::Let(l) => {
                self.scope.apply_let(l)?;
                Ok(MsqlOutcome::Admin(format!(
                    "{} semantic variable(s) declared",
                    l.variables.len()
                )))
            }
            Statement::Incorporate(inc) => {
                let entry = self.core.ad.write().incorporate(inc).clone();
                Ok(MsqlOutcome::Admin(format!(
                    "service `{}` incorporated at site `{}`",
                    entry.name, entry.site
                )))
            }
            Statement::Import(imp) => {
                let entry = self.core.ad.read().service(&imp.service)?.clone();
                let client = self.connect(&entry.site, &imp.database)?;
                let schema = client.fetch_schema()?;
                let imported = apply_import(&mut self.core.gdd.write(), imp, &schema)?;
                Ok(MsqlOutcome::Admin(format!(
                    "imported {} object(s) from `{}`: {}",
                    imported.len(),
                    imp.database,
                    imported.join(", ")
                )))
            }
            Statement::Query(q) => self.execute_query(q, span),
            Statement::Multitransaction(m) => self.execute_multitransaction(m, span),
            Statement::Explain(inner) => {
                // Already inside a trace (this EXPLAIN arrived as text or as
                // a trigger action): run the target as a nested statement,
                // then report on the spans collected so far.
                let text = print(inner);
                let text_before = self.core.metrics.counter("net.bytes_text");
                let binary_before = self.core.metrics.counter("net.bytes_binary");
                self.execute_statement(inner)?;
                let records = self.trace.as_ref().map(|t| t.records()).unwrap_or_default();
                let mut tree = SpanTree::from_records(&records);
                tree.normalize();
                let mut report = ExplainReport::from_tree(text, tree);
                // Same rule as `Session::explain`: the wire summary appears
                // only when binary frames actually shipped.
                let bytes_binary = self.core.metrics.counter("net.bytes_binary") - binary_before;
                if bytes_binary > 0 {
                    report.wire = Some(WireSummary {
                        format: self.wire_format.label().to_string(),
                        bytes_text: self.core.metrics.counter("net.bytes_text") - text_before,
                        bytes_binary,
                    });
                }
                Ok(MsqlOutcome::Explain(Box::new(report)))
            }
            Statement::CreateTable(ct) => self.execute_create_table(ct),
            Statement::DropTable(dt) => self.execute_drop_table(dt),
            Statement::Analyze(target) => self.execute_analyze(target.as_ref()),
            Statement::CreateIndex(ci) => self.execute_create_index(ci),
            Statement::DropIndex(di) => self.execute_drop_index(di),
            Statement::CreateDatabase(_) | Statement::DropDatabase(_) => {
                Err(MdbsError::Unsupported(
                    "CREATE/DROP DATABASE must name a service; use \
                     Federation::create_database(service, name)"
                        .into(),
                ))
            }
            Statement::CreateTrigger(t) => {
                let mut triggers = self.core.triggers.write();
                if triggers.iter().any(|existing| existing.name == t.name) {
                    return Err(MdbsError::Catalog(format!("trigger `{}` already exists", t.name)));
                }
                triggers.push(TriggerDef {
                    name: t.name.clone(),
                    database: t.database.clone(),
                    table: t.table.clone(),
                    event: t.event,
                    action: (*t.action).clone(),
                });
                Ok(MsqlOutcome::Admin(format!(
                    "trigger `{}` created on {}.{} AFTER {}",
                    t.name,
                    t.database,
                    t.table,
                    t.event.name()
                )))
            }
            Statement::DropTrigger(name) => {
                let mut triggers = self.core.triggers.write();
                let before = triggers.len();
                triggers.retain(|t| &t.name != name);
                if triggers.len() == before {
                    return Err(MdbsError::Catalog(format!("unknown trigger `{name}`")));
                }
                Ok(MsqlOutcome::Admin(format!("trigger `{name}` dropped")))
            }
            Statement::Commit => {
                if self.deferred && !self.gtxn.is_empty() {
                    return Ok(MsqlOutcome::Update(self.gtxn.resolve(false)));
                }
                Ok(MsqlOutcome::Admin(
                    "synchronization point: nothing pending (each MSQL statement commits or \
                     aborts its vital set when it terminates, §3.2.2)"
                        .into(),
                ))
            }
            Statement::Rollback => {
                if self.deferred && !self.gtxn.is_empty() {
                    return Ok(MsqlOutcome::Update(self.gtxn.resolve(true)));
                }
                Ok(MsqlOutcome::Admin("synchronization point: nothing pending to roll back".into()))
            }
        }
    }

    fn execute_query(&mut self, q: &MsqlQuery, span: &Span) -> Result<MsqlOutcome, MdbsError> {
        // USE/LET attached to the query update the session scope, which then
        // persists (interactive MSQL behaviour).
        if let Some(u) = &q.use_clause {
            self.scope.apply_use(u)?;
        }
        for l in &q.lets {
            self.scope.apply_let(l)?;
        }
        // Inter-database data transfer (an MSQL §2 capability): INSERT INTO
        // a table of one database from a SELECT over other databases.
        if let QueryBody::Insert(ins) = &q.body {
            if let Some(target) = self.transfer_target(ins)? {
                return self.execute_data_transfer(ins, &target);
            }
        }
        let routes = self.routes()?;
        let translate_started = self.core.clock.now();
        let translated = {
            let gdd = self.core.gdd.read();
            translate::translate_body_traced(&q.body, &self.scope, &gdd, span)?
        };
        self.core
            .metrics
            .observe("phase.translate", self.core.clock.now().saturating_sub(translate_started));
        match translated {
            Translated::PerDb(locals) => match &q.body {
                QueryBody::Select(_) => {
                    if !q.comps.is_empty() {
                        return Err(MdbsError::BadCompClause(
                            "COMP applies to modification statements".into(),
                        ));
                    }
                    let plan = {
                        let pg = span.child("plangen");
                        pg.note("shape", "retrieval");
                        let plan = retrieval_plan(&locals, &routes)?;
                        pg.note("tasks", plan.tasks.len());
                        plan
                    };
                    let started = self.core.clock.now();
                    let mt = self.executor().run_retrieval(&plan)?;
                    self.core
                        .metrics
                        .observe("phase.execute", self.core.clock.now().saturating_sub(started));
                    Ok(MsqlOutcome::Multitable(mt))
                }
                _ => {
                    let comps = self.comp_map(q, &locals)?;
                    if self.deferred {
                        return self.run_deferred_update(&locals, &comps, &routes);
                    }
                    let plan = {
                        let pg = span.child("plangen");
                        pg.note("shape", "update");
                        let plan = update_plan(&locals, &comps, &routes)?;
                        pg.note("tasks", plan.tasks.len());
                        plan
                    };
                    let started = self.core.clock.now();
                    let report = self.executor().run_update(&plan)?;
                    self.core
                        .metrics
                        .observe("phase.execute", self.core.clock.now().saturating_sub(started));
                    // Fire interdatabase triggers for committed subqueries.
                    let mut events = Vec::new();
                    for (local, outcome) in locals.iter().zip(&report.outcomes) {
                        if outcome.status != dol::TaskStatus::Committed || outcome.affected == 0 {
                            continue;
                        }
                        if let Statement::Query(inner) = &local.statement {
                            let (event, table) = match &inner.body {
                                QueryBody::Update(u) => {
                                    (msql_lang::TriggerEvent::Update, u.table.table.clone())
                                }
                                QueryBody::Insert(i) => {
                                    (msql_lang::TriggerEvent::Insert, i.table.table.clone())
                                }
                                QueryBody::Delete(d) => {
                                    (msql_lang::TriggerEvent::Delete, d.table.table.clone())
                                }
                                QueryBody::Select(_) => continue,
                            };
                            events.push((local.database.clone(), table, event));
                        }
                    }
                    self.fire_triggers(&events)?;
                    Ok(MsqlOutcome::Update(report))
                }
            },
            Translated::CrossDb(dec) => {
                let started = self.core.clock.now();
                let rs = self.run_cross_db_costed(&dec, &routes)?;
                self.core
                    .metrics
                    .observe("phase.execute", self.core.clock.now().saturating_sub(started));
                Ok(MsqlOutcome::Table(rs))
            }
        }
    }

    /// Validates COMP clauses against the locals and renders their
    /// compensating statements as SQL.
    fn comp_map(
        &self,
        q: &MsqlQuery,
        locals: &[translate::LocalQuery],
    ) -> Result<HashMap<String, Vec<String>>, MdbsError> {
        let mut out: HashMap<String, Vec<String>> = HashMap::new();
        for comp in &q.comps {
            let name = comp.database.as_str();
            let Some(scope_db) = self.scope.resolve(name) else {
                return Err(MdbsError::BadCompClause(format!(
                    "`{name}` is not in the current scope"
                )));
            };
            let key = scope_db.key().to_string();
            if !locals.iter().any(|l| l.key == key) {
                return Err(MdbsError::BadCompClause(format!(
                    "`{name}` has no pertinent subquery to compensate"
                )));
            }
            let sql = match comp.statement.as_ref() {
                Statement::Query(inner) => print(&Statement::Query(inner.clone())),
                other => print(other),
            };
            out.entry(key).or_default().push(sql);
        }
        Ok(out)
    }

    /// Detects an inter-database transfer: an `INSERT ... SELECT` whose
    /// explicitly qualified target database differs from every database the
    /// source SELECT reads. Returns the target database name.
    fn transfer_target(&self, ins: &msql_lang::Insert) -> Result<Option<String>, MdbsError> {
        let Some(tq) = &ins.table.database else { return Ok(None) };
        let msql_lang::InsertSource::Select(sel) = &ins.source else { return Ok(None) };
        let gdd = self.core.gdd.read();
        let target = match self.scope.resolve(tq.as_str()) {
            Some(d) => d.database.clone(),
            None if gdd.has_database(tq.as_str()) => tq.as_str().to_string(),
            None => return Err(MdbsError::NotInScope(tq.as_str().to_string())),
        };
        // Does the source read the target database? Then it is a local
        // insert-select, handled by the ordinary pipeline.
        for tref in &sel.from {
            let owner = match &tref.database {
                Some(q) => self.scope.resolve(q.as_str()).map(|d| d.database.clone()),
                None => {
                    let mut found = None;
                    for d in &self.scope.databases {
                        if gdd.table(&d.database, tref.table.as_str()).is_ok() {
                            found = Some(d.database.clone());
                            break;
                        }
                    }
                    found
                }
            };
            if owner.as_deref() == Some(target.as_str()) {
                return Ok(None);
            }
        }
        Ok(Some(target))
    }

    /// Executes an inter-database transfer: evaluates the source SELECT
    /// (single database or cross-database join), then ships the rows to the
    /// target as batched multi-row INSERTs.
    fn execute_data_transfer(
        &mut self,
        ins: &msql_lang::Insert,
        target: &str,
    ) -> Result<MsqlOutcome, MdbsError> {
        let msql_lang::InsertSource::Select(sel) = &ins.source else {
            return Err(MdbsError::Internal("transfer without a SELECT source".into()));
        };
        let routes = self.routes()?;
        // 1. Evaluate the source.
        let translated = {
            let gdd = self.core.gdd.read();
            translate::translate_body(&QueryBody::Select((**sel).clone()), &self.scope, &gdd)?
        };
        let rows = match translated {
            Translated::PerDb(locals) => {
                let sources: Vec<&str> = locals.iter().map(|l| l.database.as_str()).collect();
                if sources.len() != 1 {
                    return Err(MdbsError::Unsupported(format!(
                        "the transfer source must resolve to a single database; it is \
                         pertinent to {sources:?} — qualify the source tables"
                    )));
                }
                let plan = retrieval_plan(&locals, &routes)?;
                let mt = self.executor().run_retrieval(&plan)?;
                mt.tables.into_iter().next().map(|t| t.result).unwrap_or_default()
            }
            Translated::CrossDb(dec) => self.run_cross_db_costed(&dec, &routes)?,
        };

        // 2. Ship the rows as batched INSERT statements.
        let route = routes
            .get(target)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{target}`")))?;
        let columns: Vec<msql_lang::WildName> = ins.columns.clone();
        let mut commands = Vec::new();
        for chunk in rows.rows.chunks(64) {
            let values: Vec<Vec<msql_lang::Expr>> = chunk
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|v| msql_lang::Expr::Literal(ldbs::eval::value_literal(v)))
                        .collect()
                })
                .collect();
            let insert = msql_lang::Insert {
                table: msql_lang::TableRef {
                    database: None,
                    table: ins.table.table.clone(),
                    alias: None,
                },
                columns: columns.clone(),
                source: msql_lang::InsertSource::Values(values),
            };
            commands.push(print(&Statement::Query(MsqlQuery {
                use_clause: None,
                lets: Vec::new(),
                body: QueryBody::Insert(insert),
                comps: Vec::new(),
            })));
        }
        let transferred = rows.rows.len() as u64;
        if !commands.is_empty() {
            let client = self.connect(&route.site, target)?;
            let span = self.trace_ctx.child(format!("transfer:{target}"));
            span.note("db", target);
            span.note("rows", transferred);
            let req = crate::proto::Request::Task {
                name: "TRANSFER".into(),
                mode: crate::proto::TaskMode::Auto,
                database: target.to_string(),
                commands,
            };
            let (resp, attempts, _faults) = client.call_traced(&req, &span);
            span.note("attempts", attempts);
            match resp? {
                crate::proto::Response::TaskDone { status: 'C', .. } => {}
                crate::proto::Response::TaskDone { error, .. } => {
                    return Err(MdbsError::Local {
                        service: target.to_string(),
                        message: error.unwrap_or_else(|| "transfer failed".into()),
                    })
                }
                other => return Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
            }
        }
        Ok(MsqlOutcome::Update(crate::executor::UpdateReport {
            success: true,
            return_code: 0,
            outcomes: vec![crate::executor::DbOutcome::new(
                target.to_string(),
                target.to_string(),
                dol::TaskStatus::Committed,
                transferred,
                None,
            )],
            stats: Default::default(),
        }))
    }

    /// Deferred-mode execution of a modification: vital subqueries are held
    /// open by the global transaction; non-vital ones autocommit
    /// immediately, as always.
    fn run_deferred_update(
        &mut self,
        locals: &[translate::LocalQuery],
        comps: &HashMap<String, Vec<String>>,
        routes: &HashMap<String, DbRoute>,
    ) -> Result<MsqlOutcome, MdbsError> {
        let mut outcomes = Vec::with_capacity(locals.len());
        for l in locals {
            let route = routes
                .get(&l.database)
                .ok_or_else(|| MdbsError::Catalog(format!("no route for `{}`", l.database)))?;
            let sql = print(&l.statement);
            if l.vital {
                let compensation = comps.get(&l.key).cloned().unwrap_or_default();
                if !route.supports_2pc && compensation.is_empty() {
                    return Err(MdbsError::VitalWithoutCompensation { database: l.key.clone() });
                }
                let client = self.connect(&route.site, &l.database)?;
                let (status, affected) = self.gtxn.execute_held(
                    client,
                    &l.key,
                    &l.database,
                    sql,
                    route.supports_2pc,
                    compensation,
                )?;
                outcomes.push(DbOutcome::new(
                    l.database.clone(),
                    l.key.clone(),
                    status,
                    affected,
                    None,
                ));
            } else {
                let client = self.connect(&route.site, &l.database)?;
                let resp = client.call(crate::proto::Request::Task {
                    name: format!("NV_{}", l.key),
                    mode: crate::proto::TaskMode::Auto,
                    database: l.database.clone(),
                    commands: vec![sql],
                })?;
                let (status, affected, error) = match resp {
                    crate::proto::Response::TaskDone { status: 'C', affected, .. } => {
                        (dol::TaskStatus::Committed, affected, None)
                    }
                    crate::proto::Response::TaskDone { error, .. } => {
                        (dol::TaskStatus::Aborted, 0, error)
                    }
                    other => return Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
                };
                outcomes.push(DbOutcome::new(
                    l.database.clone(),
                    l.key.clone(),
                    status,
                    affected,
                    error,
                ));
            }
        }
        // Interim report: success means the global transaction can still
        // commit; vital members show their held (Prepared/Committed) status.
        let committable = self.gtxn.all_committable();
        Ok(MsqlOutcome::Update(UpdateReport {
            success: committable,
            return_code: if committable { 0 } else { 1 },
            outcomes,
            stats: Default::default(),
        }))
    }

    /// Fires the interdatabase triggers matching the given
    /// `(database, table, event)` occurrences. Cascades are bounded to depth
    /// 4; a failing action fails the calling statement (the local updates
    /// have already committed — exactly the loose coupling the paper's
    /// compensation machinery exists for).
    fn fire_triggers(
        &mut self,
        events: &[(String, msql_lang::WildName, msql_lang::TriggerEvent)],
    ) -> Result<usize, MdbsError> {
        if events.is_empty() || self.trigger_depth >= 4 {
            return Ok(0);
        }
        let mut actions = Vec::new();
        {
            let triggers = self.core.triggers.read();
            for (db, table, event) in events {
                for t in triggers.iter() {
                    if t.event == *event
                        && t.database.matches(db)
                        && t.table.matches(table.as_str())
                    {
                        actions.push(t.action.clone());
                    }
                }
            }
        }
        if actions.is_empty() {
            return Ok(0);
        }
        // Actions run in their own scope (they usually start with USE);
        // the interrupted session scope is restored afterwards. Their nested
        // statement spans hang under one `triggers` span.
        let span = self.trace_ctx.child("triggers");
        span.note("actions", actions.len());
        let prev_ctx = std::mem::replace(&mut self.trace_ctx, span.ctx());
        let saved_scope = self.scope.clone();
        self.trigger_depth += 1;
        let run = (|| {
            for action in &actions {
                self.execute_statement(action)?;
            }
            Ok(actions.len())
        })();
        self.trigger_depth -= 1;
        self.scope = saved_scope;
        self.trace_ctx = prev_ctx;
        span.end();
        run
    }

    fn execute_multitransaction(
        &mut self,
        m: &Multitransaction,
        span: &Span,
    ) -> Result<MsqlOutcome, MdbsError> {
        let routes = self.routes()?;
        // Each component query manages its own scope; the session scope is
        // untouched by the block.
        let mut working = self.scope.clone();
        let mut queries = Vec::with_capacity(m.queries.len());
        for q in &m.queries {
            if let Some(u) = &q.use_clause {
                working.apply_use(u)?;
            }
            for l in &q.lets {
                working.apply_let(l)?;
            }
            let translated = {
                let gdd = self.core.gdd.read();
                translate::translate_body_traced(&q.body, &working, &gdd, span)?
            };
            let locals = match translated {
                Translated::PerDb(locals) => locals,
                Translated::CrossDb(_) => {
                    return Err(MdbsError::Mtx(
                        "cross-database joins are not allowed inside a multitransaction".into(),
                    ))
                }
            };
            // COMP validation against this component's scope.
            let mut comps: HashMap<String, Vec<String>> = HashMap::new();
            for comp in &q.comps {
                let name = comp.database.as_str();
                let Some(scope_db) = working.resolve(name) else {
                    return Err(MdbsError::BadCompClause(format!(
                        "`{name}` is not in the component query's scope"
                    )));
                };
                let sql = print(comp.statement.as_ref());
                comps.entry(scope_db.key().to_string()).or_default().push(sql);
            }
            queries.push(MtxQueryPlan { locals, comps });
        }
        let states: Vec<Vec<String>> = m
            .acceptable_states
            .iter()
            .map(|s| s.databases.iter().map(|d| d.as_str().to_string()).collect())
            .collect();
        let plan = {
            let pg = span.child("plangen");
            pg.note("shape", "multitransaction");
            pg.note("queries", queries.len());
            pg.note("states", states.len());
            let plan = multitransaction_plan(&queries, &states, &routes)?;
            pg.note("tasks", plan.tasks.len());
            plan
        };
        let started = self.core.clock.now();
        let report = self.executor().run_mtx(&plan, states.len())?;
        self.core.metrics.observe("phase.execute", self.core.clock.now().saturating_sub(started));
        Ok(MsqlOutcome::Mtx(report))
    }

    fn execute_create_table(&mut self, ct: &CreateTable) -> Result<MsqlOutcome, MdbsError> {
        let database = self.ddl_target(&ct.table)?;
        let routes = self.routes()?;
        let route = routes
            .get(&database)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{database}`")))?;
        // Ship the CREATE with the qualifier stripped.
        let mut local = ct.clone();
        local.table.database = None;
        let client = self.connect(&route.site, &database)?;
        let resp = client.call(crate::proto::Request::Task {
            name: "DDL".into(),
            mode: crate::proto::TaskMode::Auto,
            database: database.clone(),
            commands: vec![print(&Statement::CreateTable(local))],
        })?;
        match resp {
            crate::proto::Response::TaskDone { status: 'C', .. } => {
                // Export the new table to the multidatabase level.
                let columns = ct
                    .columns
                    .iter()
                    .map(|c| GddColumn::new(c.name.clone(), c.type_name))
                    .collect();
                self.core
                    .gdd
                    .write()
                    .put_table(&database, GddTable::new(ct.table.table.as_str(), columns))?;
                // DDL invalidates whatever statistics were cached for the
                // database — the next costed join re-pulls them.
                self.core.site_stats.write().remove(&database);
                Ok(MsqlOutcome::Admin(format!(
                    "table `{}` created in `{database}`",
                    ct.table.table
                )))
            }
            crate::proto::Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: database,
                message: error.unwrap_or_else(|| "CREATE TABLE failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    fn execute_drop_table(&mut self, dt: &DropTable) -> Result<MsqlOutcome, MdbsError> {
        let database = self.ddl_target(&dt.table)?;
        let routes = self.routes()?;
        let route = routes
            .get(&database)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{database}`")))?;
        let mut local = dt.clone();
        local.table.database = None;
        let client = self.connect(&route.site, &database)?;
        let resp = client.call(crate::proto::Request::Task {
            name: "DDL".into(),
            mode: crate::proto::TaskMode::Auto,
            database: database.clone(),
            commands: vec![print(&Statement::DropTable(local))],
        })?;
        match resp {
            crate::proto::Response::TaskDone { status: 'C', .. } => {
                let _ = self.core.gdd.write().drop_table(&database, dt.table.table.as_str());
                self.core.site_stats.write().remove(&database);
                Ok(MsqlOutcome::Admin(format!(
                    "table `{}` dropped from `{database}`",
                    dt.table.table
                )))
            }
            crate::proto::Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: database,
                message: error.unwrap_or_else(|| "DROP TABLE failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Ships an ANALYZE to the owning LAM (a qualified target names its
    /// database; a bare `ANALYZE` requires a single-database scope), then
    /// invalidates the coordinator's cached statistics for that database so
    /// the next costed join re-pulls the fresh snapshot.
    fn execute_analyze(
        &mut self,
        target: Option<&msql_lang::TableRef>,
    ) -> Result<MsqlOutcome, MdbsError> {
        let database = match target {
            Some(t) => self.ddl_target(t)?,
            None => match self.scope.databases.as_slice() {
                [only] => only.database.clone(),
                [] => return Err(MdbsError::EmptyScope),
                _ => {
                    return Err(MdbsError::Unsupported(
                        "ANALYZE over a multi-database scope is ambiguous; name the table \
                         or narrow the scope"
                            .into(),
                    ))
                }
            },
        };
        let routes = self.routes()?;
        let route = routes
            .get(&database)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{database}`")))?;
        // Ship the ANALYZE with the qualifier stripped.
        let local = Statement::Analyze(target.map(|t| {
            let mut t = t.clone();
            t.database = None;
            t
        }));
        let client = self.connect(&route.site, &database)?;
        let resp = client.call(crate::proto::Request::Task {
            name: "ANALYZE".into(),
            mode: crate::proto::TaskMode::Auto,
            database: database.clone(),
            commands: vec![print(&local)],
        })?;
        match resp {
            crate::proto::Response::TaskDone { status: 'C', affected, .. } => {
                self.core.site_stats.write().remove(&database);
                Ok(MsqlOutcome::Admin(format!("analyzed {affected} table(s) in `{database}`")))
            }
            crate::proto::Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: database,
                message: error.unwrap_or_else(|| "ANALYZE failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Builds the statistics context for one decomposition: per involved
    /// database, the cached site statistics, pulled over the `STATS`
    /// exchange on first use. Failures degrade rather than fail — a
    /// database whose statistics cannot be fetched simply contributes no
    /// estimates, which keeps its decisions heuristic. `None` when the
    /// session has the cost planner off or nothing usable was found.
    fn planner_context(
        &self,
        dec: &Decomposition,
        routes: &HashMap<String, DbRoute>,
    ) -> Option<PlannerContext> {
        if !self.cost_planner {
            return None;
        }
        let mut ctx = PlannerContext::default();
        let mut dbs: Vec<&str> = dec.subqueries.iter().map(|s| s.database.as_str()).collect();
        dbs.sort_unstable();
        dbs.dedup();
        for db in dbs {
            let cached = self.core.site_stats.read().get(db).cloned();
            let tables = match cached {
                Some(t) => {
                    self.core.metrics.counter_add("planner.stats_cache_hits", 1);
                    t
                }
                None => {
                    let Some(route) = routes.get(db) else { continue };
                    let Ok(client) = self.connect(&route.site, db) else { continue };
                    match client.fetch_stats() {
                        Ok(t) => {
                            self.core.metrics.counter_add("planner.stats_fetches", 1);
                            self.core.site_stats.write().insert(db.to_string(), t.clone());
                            t
                        }
                        Err(_) => {
                            self.core.metrics.counter_add("planner.stats_fetch_errors", 1);
                            continue;
                        }
                    }
                }
            };
            ctx.insert_db(db, tables);
        }
        if ctx.is_empty() {
            None
        } else {
            Some(ctx)
        }
    }

    /// Runs a cross-database decomposition with the cost planner's context
    /// attached (when the session has it enabled and statistics exist).
    fn run_cross_db_costed(
        &self,
        dec: &Decomposition,
        routes: &HashMap<String, DbRoute>,
    ) -> Result<ldbs::engine::ResultSet, MdbsError> {
        let mut ex = self.executor();
        ex.planner = self.planner_context(dec, routes);
        ex.run_cross_db(dec, routes)
    }

    /// Ships a CREATE INDEX to the owning LAM. Indexes are a local access
    /// path, not a multidatabase object, so nothing is registered in the GDD.
    fn execute_create_index(&mut self, ci: &CreateIndex) -> Result<MsqlOutcome, MdbsError> {
        let database = self.ddl_target(&ci.table)?;
        let routes = self.routes()?;
        let route = routes
            .get(&database)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{database}`")))?;
        let mut local = ci.clone();
        local.table.database = None;
        let client = self.connect(&route.site, &database)?;
        let resp = client.call(crate::proto::Request::Task {
            name: "DDL".into(),
            mode: crate::proto::TaskMode::Auto,
            database: database.clone(),
            commands: vec![print(&Statement::CreateIndex(local))],
        })?;
        match resp {
            crate::proto::Response::TaskDone { status: 'C', .. } => Ok(MsqlOutcome::Admin(
                format!("index `{}` created on `{database}`.`{}`", ci.name, ci.table.table),
            )),
            crate::proto::Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: database,
                message: error.unwrap_or_else(|| "CREATE INDEX failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Ships a DROP INDEX to the owning LAM.
    fn execute_drop_index(&mut self, di: &DropIndex) -> Result<MsqlOutcome, MdbsError> {
        let database = self.ddl_target(&di.table)?;
        let routes = self.routes()?;
        let route = routes
            .get(&database)
            .ok_or_else(|| MdbsError::Catalog(format!("no route for `{database}`")))?;
        let mut local = di.clone();
        local.table.database = None;
        let client = self.connect(&route.site, &database)?;
        let resp = client.call(crate::proto::Request::Task {
            name: "DDL".into(),
            mode: crate::proto::TaskMode::Auto,
            database: database.clone(),
            commands: vec![print(&Statement::DropIndex(local))],
        })?;
        match resp {
            crate::proto::Response::TaskDone { status: 'C', .. } => Ok(MsqlOutcome::Admin(
                format!("index `{}` dropped from `{database}`.`{}`", di.name, di.table.table),
            )),
            crate::proto::Response::TaskDone { error, .. } => Err(MdbsError::Local {
                service: database,
                message: error.unwrap_or_else(|| "DROP INDEX failed".into()),
            }),
            other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// The database a DDL statement targets: the explicit qualifier, or the
    /// single database in scope.
    fn ddl_target(&self, table: &msql_lang::TableRef) -> Result<String, MdbsError> {
        if let Some(q) = &table.database {
            if let Some(d) = self.scope.resolve(q.as_str()) {
                return Ok(d.database.clone());
            }
            // DDL may target an imported database outside the scope too.
            if self.core.gdd.read().has_database(q.as_str()) {
                return Ok(q.as_str().to_string());
            }
            return Err(MdbsError::NotInScope(q.as_str().to_string()));
        }
        match self.scope.databases.as_slice() {
            [only] => Ok(only.database.clone()),
            [] => Err(MdbsError::EmptyScope),
            _ => Err(MdbsError::Unsupported(
                "DDL over a multi-database scope is ambiguous; qualify the table name".into(),
            )),
        }
    }
}

fn status_from_code(code: char) -> dol::TaskStatus {
    dol::TaskStatus::from_code(code).unwrap_or(dol::TaskStatus::Error)
}

/// What [`Session::recover`] did for one interrupted multitransaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredMtx {
    /// The log's multitransaction id.
    pub mtx_id: u64,
    /// The acceptable state the logged decision installed (`None` for
    /// abort, logged or presumed).
    pub achieved_state: Option<usize>,
    /// True when no decision record existed and recovery presumed abort.
    pub presumed_abort: bool,
    /// Final per-task statuses after recovery (logged resolutions plus the
    /// ones this pass produced).
    pub statuses: HashMap<String, dol::TaskStatus>,
    /// The acceptable termination states, from the log.
    pub states: Vec<Vec<String>>,
    /// The tasks the consistency oracle covers, from the log.
    pub oracle: Vec<String>,
}

impl RecoveredMtx {
    /// The §3.4 consistency check over the oracle's task set: either some
    /// acceptable state is exactly realised, or everything is undone.
    /// Non-oracle tasks (non-vital update subqueries) are excluded — they
    /// commit under either decision, by design.
    pub fn is_consistent(&self) -> bool {
        let filtered: HashMap<String, dol::TaskStatus> = self
            .statuses
            .iter()
            .filter(|(task, _)| self.oracle.contains(task))
            .map(|(task, &status)| (task.clone(), status))
            .collect();
        crate::mtx::is_consistent_outcome(&self.states, &filtered)
    }
}

/// Everything one [`Session::recover`] pass settled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// One entry per interrupted multitransaction, in log order.
    pub recovered: Vec<RecoveredMtx>,
}
