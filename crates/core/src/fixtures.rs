//! The paper's example federation (Appendix A schemas), shared by tests,
//! examples and benchmarks.
//!
//! Five databases on five services:
//!
//! | database    | service flavour              | contents                     |
//! |-------------|------------------------------|------------------------------|
//! | continental | oracle-like (2PC)            | `flights`, `f838`            |
//! | delta       | ingres-like (2PC)            | `flight`, `f747`             |
//! | united      | oracle-like (2PC)            | `flight`, `fn727`            |
//! | avis        | ingres-like (2PC)            | `cars`                       |
//! | national    | oracle-like (2PC)            | `vehicle`                    |
//!
//! Note: the appendix spells Delta's seat table `fnu747`, but the §3.4
//! multitransaction binds `f747.snu...`; we follow the worked example and
//! call it `f747` (recorded in DESIGN.md).
//!
//! `paper_federation_with` lets callers downgrade chosen services to
//! autocommit-only, which is how the §3.3 compensation scenarios are set up
//! ("assuming that the Continental database does not provide 2PC").

use crate::federation::Federation;
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use netsim::Network;

/// Seed rows for the three airline databases: flights between Texan cities
/// and a seat table per airline.
#[allow(clippy::too_many_arguments)]
fn seed_airline(
    engine: &mut Engine,
    db: &str,
    flight_table: &str,
    flight_cols: &str,
    seat_table: &str,
    seat_cols: &str,
    flights: &[(i64, &str, &str, f64)],
    seats: &[(i64, &str, Option<&str>)],
) {
    engine.create_database(db).unwrap();
    engine.execute(db, &format!("CREATE TABLE {flight_table} ({flight_cols})")).unwrap();
    engine.execute(db, &format!("CREATE TABLE {seat_table} ({seat_cols})")).unwrap();
    for (n, src, dst, rate) in flights {
        engine
            .execute(
                db,
                &format!(
                    "INSERT INTO {flight_table} VALUES ({n}, '{src}', 'am', '{dst}', 'pm', 'mon', {rate})"
                ),
            )
            .unwrap();
    }
    for (n, status, client) in seats {
        let client_sql = match client {
            Some(c) => format!("'{c}'"),
            None => "NULL".to_string(),
        };
        engine
            .execute(
                db,
                &format!(
                    "INSERT INTO {seat_table} VALUES ({n}, 'economy', '{status}', {client_sql})"
                ),
            )
            .unwrap();
    }
}

/// Builds the continental engine (appendix schema + seed data).
pub fn continental_engine(profile: DbmsProfile) -> Engine {
    let mut e = Engine::new("svc_continental", profile);
    seed_airline(
        &mut e,
        "continental",
        "flights",
        "flnu INT, source CHAR(20), dep CHAR(8), destination CHAR(20), arr CHAR(8), day CHAR(8), rate FLOAT",
        "f838",
        "seatnu INT, seatty CHAR(10), seatstatus CHAR(8), clientname CHAR(20)",
        &[
            (1, "Houston", "San Antonio", 100.0),
            (2, "Houston", "Dallas", 80.0),
            (3, "Austin", "San Antonio", 60.0),
        ],
        &[(1, "TAKEN", Some("kim")), (2, "FREE", None), (3, "FREE", None)],
    );
    e
}

/// Builds the delta engine. Note the heterogeneous column names (`dest`,
/// `fnu`, `snu`, `sstat`, `passname`).
pub fn delta_engine(profile: DbmsProfile) -> Engine {
    let mut e = Engine::new("svc_delta", profile);
    e.create_database("delta").unwrap();
    e.execute(
        "delta",
        "CREATE TABLE flight (fnu INT, source CHAR(20), dest CHAR(20), dep CHAR(8), arr CHAR(8), day CHAR(8), rate FLOAT)",
    )
    .unwrap();
    e.execute(
        "delta",
        "CREATE TABLE f747 (snu INT, sty CHAR(10), sstat CHAR(8), passname CHAR(20))",
    )
    .unwrap();
    for (n, src, dst, rate) in
        [(10, "Houston", "San Antonio", 95.0), (11, "Houston", "New Orleans", 120.0)]
    {
        e.execute(
            "delta",
            &format!(
                "INSERT INTO flight VALUES ({n}, '{src}', '{dst}', 'am', 'pm', 'tue', {rate})"
            ),
        )
        .unwrap();
    }
    for (n, st) in [(1, "FREE"), (2, "FREE"), (3, "TAKEN")] {
        e.execute("delta", &format!("INSERT INTO f747 VALUES ({n}, 'economy', '{st}', NULL)"))
            .unwrap();
    }
    e
}

/// Builds the united engine (`sour`, `rates`, `fn`, `sn`, `sst`, `pasna`).
pub fn united_engine(profile: DbmsProfile) -> Engine {
    let mut e = Engine::new("svc_united", profile);
    e.create_database("united").unwrap();
    e.execute(
        "united",
        "CREATE TABLE flight (fn INT, sour CHAR(20), dest CHAR(20), depa CHAR(8), arri CHAR(8), day CHAR(8), rates FLOAT)",
    )
    .unwrap();
    e.execute("united", "CREATE TABLE fn727 (sn INT, st CHAR(10), sst CHAR(8), pasna CHAR(20))")
        .unwrap();
    for (n, src, dst, rate) in
        [(20, "Houston", "San Antonio", 110.0), (21, "El Paso", "San Antonio", 70.0)]
    {
        e.execute(
            "united",
            &format!(
                "INSERT INTO flight VALUES ({n}, '{src}', '{dst}', 'am', 'pm', 'wed', {rate})"
            ),
        )
        .unwrap();
    }
    for (n, st) in [(1, "TAKEN"), (2, "FREE")] {
        e.execute("united", &format!("INSERT INTO fn727 VALUES ({n}, 'coach', '{st}', NULL)"))
            .unwrap();
    }
    e
}

/// Builds the avis engine (`cars`).
pub fn avis_engine(profile: DbmsProfile) -> Engine {
    let mut e = Engine::new("svc_avis", profile);
    e.create_database("avis").unwrap();
    e.execute(
        "avis",
        "CREATE TABLE cars (code INT, cartype CHAR(16), rate FLOAT, carst CHAR(10), pickup DATE, dropoff DATE, client CHAR(20))",
    )
    .unwrap();
    for (code, ty, rate, st) in [
        (1, "sedan", 39.5, "available"),
        (2, "suv", 59.0, "rented"),
        (3, "compact", 25.0, "available"),
    ] {
        e.execute(
            "avis",
            &format!("INSERT INTO cars VALUES ({code}, '{ty}', {rate}, '{st}', NULL, NULL, NULL)"),
        )
        .unwrap();
    }
    e
}

/// Builds the national engine (`vehicle` — no rate column, the §2 schema
/// heterogeneity).
pub fn national_engine(profile: DbmsProfile) -> Engine {
    let mut e = Engine::new("svc_national", profile);
    e.create_database("national").unwrap();
    e.execute(
        "national",
        "CREATE TABLE vehicle (vcode INT, vty CHAR(16), vstat CHAR(10), pickup DATE, dropoff DATE, client CHAR(20))",
    )
    .unwrap();
    for (code, ty, st) in [(7, "sedan", "available"), (8, "van", "available"), (9, "suv", "rented")]
    {
        e.execute(
            "national",
            &format!("INSERT INTO vehicle VALUES ({code}, '{ty}', '{st}', NULL, NULL, NULL)"),
        )
        .unwrap();
    }
    e
}

/// Profiles per database for [`paper_federation_with`].
#[derive(Debug, Clone)]
pub struct FederationProfiles {
    /// Continental's service profile.
    pub continental: DbmsProfile,
    /// Delta's service profile.
    pub delta: DbmsProfile,
    /// United's service profile.
    pub united: DbmsProfile,
    /// Avis' service profile.
    pub avis: DbmsProfile,
    /// National's service profile.
    pub national: DbmsProfile,
}

impl Default for FederationProfiles {
    fn default() -> Self {
        FederationProfiles {
            continental: DbmsProfile::oracle_like(),
            delta: DbmsProfile::ingres_like(),
            united: DbmsProfile::oracle_like(),
            avis: DbmsProfile::ingres_like(),
            national: DbmsProfile::oracle_like(),
        }
    }
}

/// Builds the paper's five-database federation with default (all-2PC)
/// profiles, on a fresh network, with all schemas imported into the GDD.
pub fn paper_federation() -> Federation {
    paper_federation_with(Network::new(), FederationProfiles::default())
}

/// Builds the paper federation on `net` with explicit per-service profiles.
pub fn paper_federation_with(net: Network, profiles: FederationProfiles) -> Federation {
    let mut fed = Federation::with_network(net);
    fed.add_service("svc_continental", "site1", continental_engine(profiles.continental)).unwrap();
    fed.add_service("svc_delta", "site2", delta_engine(profiles.delta)).unwrap();
    fed.add_service("svc_united", "site3", united_engine(profiles.united)).unwrap();
    fed.add_service("svc_avis", "site4", avis_engine(profiles.avis)).unwrap();
    fed.add_service("svc_national", "site5", national_engine(profiles.national)).unwrap();
    for (db, svc) in [
        ("continental", "svc_continental"),
        ("delta", "svc_delta"),
        ("united", "svc_united"),
        ("avis", "svc_avis"),
        ("national", "svc_national"),
    ] {
        fed.execute(&format!("IMPORT DATABASE {db} FROM SERVICE {svc}")).unwrap();
    }
    fed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_federation_imports_all_schemas() {
        let fed = paper_federation();
        assert_eq!(
            fed.gdd().database_names(),
            vec!["avis", "continental", "delta", "national", "united"]
        );
        assert!(fed.gdd().table("continental", "flights").is_ok());
        assert!(fed.gdd().table("delta", "f747").is_ok());
        assert!(fed.gdd().table("united", "fn727").is_ok());
        assert!(fed.gdd().table("avis", "cars").is_ok());
        assert!(fed.gdd().table("national", "vehicle").is_ok());
        // national has no rate column (schema heterogeneity, §2).
        assert!(fed.gdd().table("national", "vehicle").unwrap().column("rate").is_none());
        assert!(fed.gdd().table("avis", "cars").unwrap().column("rate").is_some());
    }

    #[test]
    fn services_advertise_capabilities() {
        let fed = paper_federation();
        assert!(fed.ad().service("svc_continental").unwrap().supports_2pc());
        assert!(fed.ad().service("svc_delta").unwrap().supports_2pc());
        // Oracle-like: DDL autocommits.
        assert_eq!(
            fed.ad().service("svc_continental").unwrap().create_capability(),
            msql_lang::CommitCapability::AutoCommit
        );
        // Ingres-like: DDL participates in 2PC.
        assert_eq!(
            fed.ad().service("svc_delta").unwrap().create_capability(),
            msql_lang::CommitCapability::TwoPhase
        );
    }

    #[test]
    fn downgraded_profile_is_visible_in_ad() {
        let profiles = FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        };
        let fed = paper_federation_with(Network::new(), profiles);
        assert!(!fed.ad().service("svc_continental").unwrap().supports_2pc());
    }
}
