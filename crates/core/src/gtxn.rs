//! Global transactions spanning several MSQL statements (paper §3.2.2).
//!
//! *"The evaluation plan will contain synchronization points whenever
//! explicit commit or rollback operations are issued, the current query
//! scope is changed, or the last MSQL statement is terminated. If all VITAL
//! databases are either prepared or committed at the synchronization point,
//! the subqueries that are in the prepared state will be committed.
//! Otherwise all VITAL subqueries will be rolled back (or compensated)."*
//!
//! In deferred-commit mode ([`crate::Federation::set_deferred_commit`]),
//! vital subqueries join one open local transaction per database (one LAM
//! connection each). Statements execute immediately inside those
//! transactions; the *prepare* votes and the global decision happen only at
//! the synchronization point. Autocommit-only members commit each statement
//! right away and accumulate compensating commands, applied in reverse
//! order on rollback.

use crate::error::MdbsError;
use crate::executor::{DbOutcome, UpdateReport};
use crate::lamclient::LamClient;
use crate::proto::{Request, Response, TaskMode};
use dol::{DolService, TaskStatus};

enum MemberKind {
    /// One open local transaction, prepared at the sync point.
    TwoPhase,
    /// Statements autocommit; rollback means compensation.
    Compensatable,
}

/// One vital database participating in the global transaction.
struct Member {
    key: String,
    database: String,
    /// Task name of the open local transaction (TwoPhase members).
    task: String,
    kind: MemberKind,
    client: LamClient,
    /// False once any statement on this member failed.
    healthy: bool,
    affected: u64,
    /// Compensating commands, most recent first.
    compensation: Vec<String>,
    /// Statement counter (names autocommit sub-statements).
    stmts: u64,
}

/// The pending vital members of the current global transaction.
#[derive(Default)]
pub struct GlobalTransaction {
    members: Vec<Member>,
    seq: u64,
}

impl GlobalTransaction {
    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of participating databases.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Executes one vital statement inside the global transaction. The
    /// member for `key` is created on first use (using `client` — ignored
    /// afterwards). Returns the interim status and rows affected.
    pub fn execute_held(
        &mut self,
        client: LamClient,
        key: &str,
        database: &str,
        sql: String,
        supports_2pc: bool,
        mut compensation: Vec<String>,
    ) -> Result<(TaskStatus, u64), MdbsError> {
        let idx = match self.members.iter().position(|m| m.key == key) {
            Some(i) => i,
            None => {
                self.seq += 1;
                let task = format!("G{}_{key}", self.seq);
                let kind = if supports_2pc {
                    client.begin_task(&task)?;
                    MemberKind::TwoPhase
                } else {
                    MemberKind::Compensatable
                };
                self.members.push(Member {
                    key: key.to_string(),
                    database: database.to_string(),
                    task,
                    kind,
                    client,
                    healthy: true,
                    affected: 0,
                    compensation: Vec::new(),
                    stmts: 0,
                });
                self.members.len() - 1
            }
        };
        let member = &mut self.members[idx];
        member.stmts += 1;
        match member.kind {
            MemberKind::TwoPhase => {
                let (status, affected, _err) =
                    member.client.exec_in_task(&member.task, vec![sql])?;
                if status == 'E' {
                    member.affected += affected;
                    Ok((TaskStatus::Prepared, affected))
                } else {
                    member.healthy = false;
                    Ok((TaskStatus::Aborted, 0))
                }
            }
            MemberKind::Compensatable => {
                let name = format!("{}_s{}", member.task, member.stmts);
                let resp = member.client.call(Request::Task {
                    name,
                    mode: TaskMode::Auto,
                    database: member.database.clone(),
                    commands: vec![sql],
                })?;
                match resp {
                    Response::TaskDone { status: 'C', affected, .. } => {
                        member.affected += affected;
                        // Newest first: compensation undoes in reverse order.
                        compensation.reverse();
                        for c in compensation {
                            member.compensation.insert(0, c);
                        }
                        Ok((TaskStatus::Committed, affected))
                    }
                    Response::TaskDone { .. } => {
                        member.healthy = false;
                        Ok((TaskStatus::Aborted, 0))
                    }
                    other => Err(MdbsError::Wire(format!("unexpected reply: {other:?}"))),
                }
            }
        }
    }

    /// True when every member can still commit.
    pub fn all_committable(&self) -> bool {
        self.members.iter().all(|m| m.healthy)
    }

    /// Resolves the global transaction at a synchronization point.
    ///
    /// Commit path (no force, all healthy): every TwoPhase member votes
    /// (prepare); if all vote YES they all commit. Any NO vote — or
    /// `force_rollback`, or an unhealthy member — takes the rollback path:
    /// open transactions are rolled back and Compensatable members are
    /// compensated.
    pub fn resolve(&mut self, force_rollback: bool) -> UpdateReport {
        let mut commit = !force_rollback && self.all_committable();

        // Voting phase.
        let mut voted: Vec<bool> = Vec::with_capacity(self.members.len());
        if commit {
            for m in &mut self.members {
                match m.kind {
                    MemberKind::TwoPhase => match m.client.prepare_task(&m.task) {
                        Ok(('P', _)) => voted.push(true),
                        _ => {
                            // The LAM rolled the local transaction back.
                            m.healthy = false;
                            voted.push(false);
                            commit = false;
                        }
                    },
                    MemberKind::Compensatable => voted.push(true),
                }
            }
        } else {
            voted.resize(self.members.len(), false);
        }

        // Decision phase.
        let mut outcomes = Vec::with_capacity(self.members.len());
        for (i, mut m) in self.members.drain(..).enumerate() {
            let status = match m.kind {
                MemberKind::TwoPhase => {
                    if commit {
                        match m.client.commit_task(&m.task) {
                            Ok(()) => TaskStatus::Committed,
                            Err(_) => TaskStatus::Error,
                        }
                    } else if voted.get(i).copied().unwrap_or(false) || m.healthy {
                        // Prepared (voted) or still active: roll back.
                        match m.client.abort_task(&m.task) {
                            Ok(()) => TaskStatus::Aborted,
                            Err(_) => TaskStatus::Error,
                        }
                    } else if m.stmts > 0 && !m.healthy {
                        // Failed vote or failed statement: the local side
                        // may already have rolled back; aborting again is
                        // harmless if the task is still open.
                        let _ = m.client.abort_task(&m.task);
                        TaskStatus::Aborted
                    } else {
                        TaskStatus::Aborted
                    }
                }
                MemberKind::Compensatable => {
                    if commit {
                        TaskStatus::Committed
                    } else if m.compensation.is_empty() {
                        // Nothing committed (or nothing to undo).
                        TaskStatus::Aborted
                    } else {
                        let resp = m.client.call(Request::Compensate {
                            task: m.task.clone(),
                            database: m.database.clone(),
                            commands: m.compensation.clone(),
                        });
                        match resp {
                            Ok(Response::Ok) => TaskStatus::Compensated,
                            _ => TaskStatus::Error,
                        }
                    }
                }
            };
            outcomes.push(DbOutcome::new(
                m.database,
                m.key,
                status,
                if status == TaskStatus::Committed { m.affected } else { 0 },
                None,
            ));
        }
        UpdateReport {
            success: commit,
            return_code: if commit { 0 } else { 1 },
            outcomes,
            stats: Default::default(),
        }
    }
}

impl Drop for GlobalTransaction {
    fn drop(&mut self) {
        if !self.members.is_empty() {
            // Session ended with work pending: the safe default is rollback.
            let _ = self.resolve(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lam::spawn_lam;
    use ldbs::profile::DbmsProfile;
    use ldbs::Engine;
    use netsim::Network;
    use std::time::Duration;

    fn setup() -> (Network, crate::lam::LamHandle) {
        let net = Network::new();
        let mut engine = Engine::new("svc", DbmsProfile::oracle_like());
        engine.create_database("db").unwrap();
        engine.execute("db", "CREATE TABLE t (x FLOAT)").unwrap();
        engine.execute("db", "INSERT INTO t VALUES (1)").unwrap();
        let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();
        (net, lam)
    }

    fn client(net: &Network) -> LamClient {
        LamClient::connect(net, "site1", "db", Duration::from_secs(5)).unwrap()
    }

    fn value(lam: &crate::lam::LamHandle) -> ldbs::value::Value {
        let mut e = lam.engine.lock();
        e.execute("db", "SELECT x FROM t").unwrap().into_result_set().unwrap().rows[0][0].clone()
    }

    #[test]
    fn held_statements_share_one_local_transaction() {
        let (net, lam) = setup();
        let mut gt = GlobalTransaction::default();
        gt.execute_held(client(&net), "db", "db", "UPDATE t SET x = 2".into(), true, vec![])
            .unwrap();
        // Second statement on the same database reuses the open transaction
        // (no lock conflict with itself).
        let (status, affected) = gt
            .execute_held(client(&net), "db", "db", "UPDATE t SET x = x + 1".into(), true, vec![])
            .unwrap();
        assert_eq!(status, TaskStatus::Prepared);
        assert_eq!(affected, 1);
        assert_eq!(gt.len(), 1, "one member per database");
        let report = gt.resolve(false);
        assert!(report.success);
        assert_eq!(report.outcomes[0].affected, 2);
        assert_eq!(value(&lam), ldbs::value::Value::Float(3.0));
    }

    #[test]
    fn forced_rollback_undoes_held_work() {
        let (net, lam) = setup();
        let mut gt = GlobalTransaction::default();
        gt.execute_held(client(&net), "db", "db", "UPDATE t SET x = 2".into(), true, vec![])
            .unwrap();
        let report = gt.resolve(true);
        assert!(!report.success);
        assert_eq!(report.outcomes[0].status, TaskStatus::Aborted);
        assert_eq!(value(&lam), ldbs::value::Value::Float(1.0));
    }

    #[test]
    fn failed_statement_poisons_the_transaction() {
        let (net, lam) = setup();
        let mut gt = GlobalTransaction::default();
        gt.execute_held(client(&net), "db", "db", "UPDATE t SET x = 2".into(), true, vec![])
            .unwrap();
        let (status, _) = gt
            .execute_held(client(&net), "db", "db", "UPDATE t SET nope = 1".into(), true, vec![])
            .unwrap();
        assert_eq!(status, TaskStatus::Aborted);
        assert!(!gt.all_committable());
        let report = gt.resolve(false);
        assert!(!report.success);
        assert_eq!(value(&lam), ldbs::value::Value::Float(1.0));
    }

    #[test]
    fn drop_rolls_back_pending_work() {
        let (net, lam) = setup();
        {
            let mut gt = GlobalTransaction::default();
            gt.execute_held(client(&net), "db", "db", "UPDATE t SET x = 9".into(), true, vec![])
                .unwrap();
        }
        assert_eq!(value(&lam), ldbs::value::Value::Float(1.0));
    }

    #[test]
    fn compensatable_member_compensates_in_reverse_order() {
        let (net, lam) = setup();
        let mut gt = GlobalTransaction::default();
        // x = 1 → (x+1)=2 → (x*3)=6; compensation must divide by 3 first,
        // then subtract 1, restoring 1. Wrong order would give (1-? ) ≠ 1:
        // ((6-1)/3) = 1.67.
        gt.execute_held(
            client(&net),
            "db",
            "db",
            "UPDATE t SET x = x + 1".into(),
            false,
            vec!["UPDATE t SET x = x - 1".into()],
        )
        .unwrap();
        gt.execute_held(
            client(&net),
            "db",
            "db",
            "UPDATE t SET x = x * 3".into(),
            false,
            vec!["UPDATE t SET x = x / 3".into()],
        )
        .unwrap();
        assert_eq!(value(&lam), ldbs::value::Value::Float(6.0));
        let report = gt.resolve(true);
        assert_eq!(report.outcomes[0].status, TaskStatus::Compensated);
        assert_eq!(value(&lam), ldbs::value::Value::Float(1.0));
    }

    #[test]
    fn commit_path_reports_totals() {
        let (net, lam) = setup();
        let mut gt = GlobalTransaction::default();
        gt.execute_held(
            client(&net),
            "db",
            "db",
            "UPDATE t SET x = 5".into(),
            false,
            vec!["UPDATE t SET x = 1".into()],
        )
        .unwrap();
        let report = gt.resolve(false);
        assert!(report.success);
        assert_eq!(report.outcomes[0].status, TaskStatus::Committed);
        assert_eq!(value(&lam), ldbs::value::Value::Float(5.0));
    }
}
