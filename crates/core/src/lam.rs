//! Local Access Managers — the server side.
//!
//! A LAM (paper §4.1) runs at a site, wraps one local DBMS engine, executes
//! the commands the DOL engine ships to it, and sends partial results back.
//! "LAMs execute local commands and produce partial results, which are sent
//! either to the engine or to other LAMs." Here each LAM is a thread
//! servicing a [`netsim`] mailbox with the [`crate::proto`] protocol.

use crate::codec::{self, WireFormat};
use crate::error::MdbsError;
use crate::proto::{self, Request, Response, TaskMode};
use crate::wire;
use catalog::{GddColumn, GddTable};
use ldbs::engine::{Engine, ExecOutcome};
use ldbs::error::DbError;
use ldbs::schema::{ColumnSchema, TableSchema};
use ldbs::table::Table;
use ldbs::txn::TxnId;
use ldbs::value::DataType;
use msql_lang::TypeName;
use netsim::{Body, BufferPool, NetError, Network};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a blocked statement parks on the engine's lock signal per retry
/// slice (it wakes earlier the moment a lock is released).
const LOCK_WAIT_SLICE: Duration = Duration::from_millis(50);

/// Tunables for a LAM server thread. Threaded down from
/// [`crate::federation::Federation`] so a deployment is configured in one
/// place instead of through magic constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamConfig {
    /// How long shutdown waits for the server thread to acknowledge the
    /// control message before joining anyway.
    pub control_timeout: Duration,
    /// Mailbox poll granularity of the server loop.
    pub poll_interval: Duration,
    /// How many correlated responses the server remembers for retry
    /// deduplication (FIFO eviction).
    pub response_cache_capacity: usize,
    /// How long a statement may wait for a local write lock before the
    /// server gives up, rolls the transaction back, and reports a
    /// retriable deadlock. This is the backstop for *distributed*
    /// deadlocks, which no single engine's waits-for graph can see.
    pub lock_wait_timeout: Duration,
    /// How many settled task outcomes (`C`/`A`/`K`) the server remembers
    /// for RESOLVE / idempotent-compensate answers (FIFO eviction).
    pub outcome_memory_capacity: usize,
}

impl Default for LamConfig {
    fn default() -> Self {
        LamConfig {
            control_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(200),
            response_cache_capacity: 256,
            lock_wait_timeout: Duration::from_secs(2),
            outcome_memory_capacity: 1024,
        }
    }
}

/// Converts an engine data type to the GDD's type representation.
fn to_type_name(t: DataType) -> TypeName {
    match t {
        DataType::Int => TypeName::Int,
        DataType::Float => TypeName::Float,
        DataType::Char(w) => TypeName::Char(w),
        DataType::Bool => TypeName::Bool,
        DataType::Date => TypeName::Date,
    }
}

/// The public Local Conceptual Schema of a database, as GDD entries.
pub fn local_conceptual_schema(
    engine: &Engine,
    database: &str,
) -> Result<Vec<GddTable>, MdbsError> {
    let db = engine.database(database).map_err(|e| MdbsError::Local {
        service: engine.service_name.clone(),
        message: e.to_string(),
    })?;
    let mut out = Vec::new();
    for name in db.table_names() {
        let table = db.table(&name).expect("listed table exists");
        if !table.schema.public {
            continue;
        }
        let columns = table
            .schema
            .columns
            .iter()
            .map(|c| GddColumn::new(c.name.clone(), to_type_name(c.data_type)))
            .collect();
        out.push(GddTable::new(name, columns));
    }
    Ok(out)
}

/// The optimizer statistics a database has collected via `ANALYZE`, in
/// exportable form. Tables that were never analyzed are omitted — their
/// absence tells the coordinator to fall back to heuristics.
pub fn site_statistics(
    engine: &Engine,
    database: &str,
    table: Option<&str>,
) -> Result<Vec<wire::SiteTableStats>, MdbsError> {
    let local = |e: ldbs::DbError| MdbsError::Local {
        service: engine.service_name.clone(),
        message: e.to_string(),
    };
    let db = engine.database(database).map_err(local)?;
    let names: Vec<String> = match table {
        Some(t) => {
            let name = t.to_ascii_lowercase();
            db.table(&name).map_err(local)?;
            vec![name]
        }
        None => db.table_names(),
    };
    let mut out = Vec::new();
    for name in names {
        let t = db.table(&name).expect("listed table exists");
        if let Some(stats) = t.table_stats() {
            out.push(wire::SiteTableStats {
                table: name,
                dml_since: t.dml_since_analyze(),
                stats: stats.clone(),
            });
        }
    }
    Ok(out)
}

/// Live request counters of one LAM server thread, shared with the handle
/// (and scraped into the federation's metrics registry on demand).
#[derive(Debug, Default)]
pub struct LamServerStats {
    /// Requests executed against the wrapped engine.
    pub served: AtomicU64,
    /// Retried requests answered from the reply cache without re-execution
    /// (the at-most-once deduplication path).
    pub replayed: AtomicU64,
}

/// A running LAM: owns the server thread and shares the engine with the
/// test/benchmark harness (so fixtures can seed data and inspect outcomes).
pub struct LamHandle {
    /// Service name (as incorporated).
    pub service: String,
    /// Site the LAM listens at.
    pub site: String,
    /// The wrapped engine, shared with the harness.
    pub engine: Arc<Mutex<Engine>>,
    /// Request counters kept by the server thread.
    pub stats: Arc<LamServerStats>,
    net: Network,
    thread: Option<JoinHandle<()>>,
    config: LamConfig,
    /// Cleared by the server thread when it dies (shutdown or terminal
    /// network fault). A dead LAM has deregistered its site, so clients get
    /// an immediate `UnknownSite` instead of hanging until timeout.
    alive: Arc<AtomicBool>,
}

impl LamHandle {
    /// True while the server thread is processing requests. A LAM that hit
    /// a terminal network fault turns this off and deregisters its site.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Stops the server thread and deregisters the site.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            // Only go through the control round while the server is alive;
            // a dead thread would never acknowledge and we would block for
            // the full control timeout.
            if self.is_alive() {
                let ctl_name = format!("__ctl_{}", self.site);
                if let Ok(ctl) = self.net.register(&ctl_name) {
                    let _ = ctl.send(&self.site, Request::Shutdown.encode());
                    let _ = ctl.recv_timeout(self.config.control_timeout);
                    self.net.deregister(&ctl_name);
                }
            }
            let _ = thread.join();
            self.net.deregister(&self.site);
        }
    }
}

impl Drop for LamHandle {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Spawns a LAM serving `engine` at `site` with default tunables.
pub fn spawn_lam(
    net: &Network,
    service: &str,
    site: &str,
    engine: Engine,
) -> Result<LamHandle, MdbsError> {
    spawn_lam_with(net, service, site, engine, LamConfig::default())
}

/// Spawns a LAM serving `engine` at `site`.
///
/// The server is a dispatcher plus detached worker threads: the dispatcher
/// drains the mailbox, answers cached/inflight retries and control
/// messages inline, and hands every engine-touching request to its own
/// worker so one session's lock wait never stalls another session's
/// statements. Workers lock the shared state only briefly — never across a
/// lock wait — and put the framed reply in the cache *before* clearing the
/// inflight marker, so client retries stay at-most-once: a retry arriving
/// while the original executes is dropped (the client re-asks and hits the
/// populated cache), and a retry after completion replays the cached reply
/// without re-execution. On a terminal network fault the dispatcher marks
/// the handle dead and deregisters its own site, so clients fail fast
/// instead of timing out.
pub fn spawn_lam_with(
    net: &Network,
    service: &str,
    site: &str,
    engine: Engine,
    config: LamConfig,
) -> Result<LamHandle, MdbsError> {
    let endpoint = Arc::new(net.register(site)?);
    let engine = Arc::new(Mutex::new(engine));
    let alive = Arc::new(AtomicBool::new(true));
    let thread_alive = Arc::clone(&alive);
    let stats = Arc::new(LamServerStats::default());
    let thread_stats = Arc::clone(&stats);
    let thread_net = net.clone();
    let thread_site = site.to_string();
    let poll = config.poll_interval;
    let shared = Arc::new(SrvShared {
        engine: Arc::clone(&engine),
        state: Mutex::new(SrvState {
            tasks: HashMap::new(),
            task_dbs: HashMap::new(),
            resolved: OutcomeMemory::new(config.outcome_memory_capacity),
            replies: ReplyCache::new(config.response_cache_capacity),
            inflight: HashSet::new(),
        }),
        config: config.clone(),
        pool: BufferPool::default(),
    });
    let thread = std::thread::Builder::new()
        .name(format!("lam-{site}"))
        .spawn(move || {
            loop {
                let msg = match endpoint.recv_timeout(poll) {
                    Ok(m) => m,
                    Err(NetError::Timeout) => continue,
                    Err(_) => {
                        // Terminal fault: the network is gone. Mark the
                        // handle dead and take the site down so clients get
                        // UnknownSite immediately instead of timing out.
                        thread_alive.store(false, Ordering::SeqCst);
                        thread_net.deregister(&thread_site);
                        break;
                    }
                };
                // The server mirrors whatever format each request arrived
                // in, so mixed-format clients coexist on one LAM. The
                // correlation id is peeked *before* full decoding, keeping
                // the cache-check → inflight-insert → decode order that the
                // at-most-once guarantee depends on.
                let (corr, format) = match &msg.body {
                    Body::Text(text) => (proto::split_correlation(text).0, WireFormat::Text),
                    Body::Binary(bytes) => (codec::peek_correlation(bytes), WireFormat::Binary),
                };
                if let Some(id) = corr {
                    let mut state = shared.state.lock();
                    if let Some(cached) = state.replies.get(id) {
                        drop(state);
                        thread_stats.replayed.fetch_add(1, Ordering::Relaxed);
                        let _ = endpoint.send(&msg.from, cached);
                        continue;
                    }
                    if !state.inflight.insert(id) {
                        // The original request is still executing in a
                        // worker: drop this retry silently; the client's
                        // next retry will hit the reply cache.
                        continue;
                    }
                }
                let decoded = match &msg.body {
                    Body::Text(text) => Request::decode(proto::split_correlation(text).1),
                    Body::Binary(bytes) => codec::decode_request(bytes).map(|(_, req)| req),
                };
                match decoded {
                    Ok(Request::Shutdown) => {
                        let out = frame_reply(&shared, corr, Response::Ok, format);
                        let _ = endpoint.send(&msg.from, out);
                        thread_alive.store(false, Ordering::SeqCst);
                        break;
                    }
                    Ok(req) => {
                        thread_stats.served.fetch_add(1, Ordering::Relaxed);
                        let worker_shared = Arc::clone(&shared);
                        let worker_endpoint = Arc::clone(&endpoint);
                        let from = msg.from.clone();
                        let spawned = std::thread::Builder::new()
                            .name(format!("lam-{thread_site}-w"))
                            .spawn(move || {
                                let response = handle_request(&worker_shared, req);
                                let out = frame_reply(&worker_shared, corr, response, format);
                                let _ = worker_endpoint.send(&from, out);
                            });
                        if spawned.is_err() {
                            // Out of threads: fail the request instead of
                            // leaving the client to time out.
                            let out = frame_reply(
                                &shared,
                                corr,
                                Response::Err { message: "LAM worker spawn failed".into() },
                                format,
                            );
                            let _ = endpoint.send(&msg.from, out);
                        }
                    }
                    Err(e) => {
                        let out = frame_reply(
                            &shared,
                            corr,
                            Response::Err { message: e.to_string() },
                            format,
                        );
                        let _ = endpoint.send(&msg.from, out);
                    }
                }
            }
        })
        .map_err(|e| MdbsError::Internal(format!("failed to spawn LAM thread: {e}")))?;
    Ok(LamHandle {
        service: service.to_string(),
        site: site.to_string(),
        engine,
        stats,
        net: net.clone(),
        thread: Some(thread),
        config,
        alive,
    })
}

/// Encodes a response, recording it in the reply cache and clearing the
/// inflight marker when the request was correlated. The cache is populated
/// *before* the marker clears, so a client retry can never slip between
/// the two and re-execute.
fn frame_reply(
    shared: &SrvShared,
    corr: Option<u64>,
    response: Response,
    format: WireFormat,
) -> Body {
    let encode = |corr: Option<u64>| -> Body {
        match format {
            WireFormat::Text => match corr {
                Some(id) => Body::Text(proto::encode_with_correlation(id, &response.encode())),
                None => Body::Text(response.encode()),
            },
            WireFormat::Binary => {
                Body::Binary(codec::encode_response(&shared.pool, corr, &response))
            }
        }
    };
    match corr {
        Some(id) => {
            let framed = encode(Some(id));
            let mut state = shared.state.lock();
            state.replies.put(id, framed.clone());
            state.inflight.remove(&id);
            framed
        }
        None => encode(None),
    }
}

/// Bounded FIFO cache of already-sent correlated responses. Stores the
/// framed [`Body`] so a retry is replayed verbatim in the format the
/// original request used.
struct ReplyCache {
    capacity: usize,
    entries: HashMap<u64, Body>,
    order: VecDeque<u64>,
}

impl ReplyCache {
    fn new(capacity: usize) -> Self {
        ReplyCache { capacity: capacity.max(1), entries: HashMap::new(), order: VecDeque::new() }
    }

    fn get(&self, id: u64) -> Option<Body> {
        self.entries.get(&id).cloned()
    }

    fn put(&mut self, id: u64, framed: Body) {
        if self.entries.insert(id, framed).is_none() {
            self.order.push_back(id);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
        }
    }
}

/// Bounded FIFO memory of settled task outcomes (`C`/`A`/`K`) — the
/// participant-side record recovery's `RESOLVE` answers from. Bounded so a
/// long-lived server's memory stays flat; the retained window comfortably
/// covers the horizon the idempotent retry/compensate paths need.
struct OutcomeMemory {
    capacity: usize,
    entries: HashMap<String, char>,
    order: VecDeque<String>,
}

impl OutcomeMemory {
    fn new(capacity: usize) -> Self {
        OutcomeMemory { capacity: capacity.max(1), entries: HashMap::new(), order: VecDeque::new() }
    }

    fn get(&self, task: &str) -> Option<char> {
        self.entries.get(task).copied()
    }

    fn insert(&mut self, task: String, status: char) {
        if self.entries.insert(task.clone(), status).is_none() {
            self.order.push_back(task);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, task: &str) {
        if self.entries.remove(task).is_some() {
            self.order.retain(|t| t != task);
        }
    }
}

/// Mutable LAM server state, shared between the dispatcher and its workers.
/// The mutex is only ever held for map bookkeeping — never across engine
/// execution or a lock wait.
struct SrvState {
    /// Open/prepared transactions by task name.
    tasks: HashMap<String, TxnId>,
    /// Database each open transaction was begun on.
    task_dbs: HashMap<TxnId, String>,
    /// Final outcome of every settled task. A coordinator that crashed
    /// after delivering COMMIT but before logging the resolution re-asks
    /// and gets the recorded outcome instead of presumed abort. Entries
    /// are superseded when a task name is re-executed.
    resolved: OutcomeMemory,
    /// Correlated responses already sent (retry deduplication).
    replies: ReplyCache,
    /// Correlation ids currently executing in a worker; retries for them
    /// are dropped until the reply lands in the cache.
    inflight: HashSet<u64>,
}

/// Everything a worker thread needs: the engine behind its own lock and
/// the server state behind another.
struct SrvShared {
    engine: Arc<Mutex<Engine>>,
    state: Mutex<SrvState>,
    config: LamConfig,
    /// Lease pool binary replies are encoded into; leases return when the
    /// receiver drops the delivered frame.
    pool: BufferPool,
}

/// Executes one command inside `txn`, parking on the engine's lock signal
/// whenever the statement would block on a write lock. The engine mutex is
/// released while parked, so other sessions keep executing. If the wait
/// outlives the configured timeout the transaction is rolled back and the
/// retriable deadlock error returned — the backstop for lock cycles that
/// span engines.
fn exec_with_wait(
    shared: &SrvShared,
    txn: TxnId,
    database: &str,
    cmd: &str,
) -> Result<ExecOutcome, DbError> {
    let signal = shared.engine.lock().lock_signal();
    let deadline = Instant::now() + shared.config.lock_wait_timeout;
    loop {
        let epoch = signal.epoch();
        let result = shared.engine.lock().execute_in(txn, database, cmd);
        match result {
            Err(DbError::LockWait { table }) => {
                if Instant::now() >= deadline {
                    let mut engine = shared.engine.lock();
                    engine.cancel_wait(txn);
                    let _ = engine.rollback(txn);
                    return Err(DbError::Deadlock { table });
                }
                signal.wait_past(epoch, LOCK_WAIT_SLICE);
            }
            other => return other,
        }
    }
}

/// Rolls `txn` back, tolerating a transaction the deadlock detector
/// already aborted.
fn rollback_tolerant(shared: &SrvShared, txn: TxnId) {
    let _ = shared.engine.lock().rollback(txn);
}

fn handle_request(shared: &SrvShared, req: Request) -> Response {
    match req {
        Request::Begin { name, database } => {
            let mut state = shared.state.lock();
            if state.tasks.contains_key(&name) {
                return Response::Err { message: format!("task `{name}` already open") };
            }
            let mut engine = shared.engine.lock();
            if engine.database(&database).is_err() {
                return Response::Err { message: format!("unknown database `{database}`") };
            }
            let txn = engine.begin();
            drop(engine);
            state.resolved.remove(&name); // new incarnation supersedes
            state.tasks.insert(name, txn);
            state.task_dbs.insert(txn, database);
            Response::Ok
        }
        Request::Exec { task, commands } => {
            let (txn, database) = {
                let state = shared.state.lock();
                let Some(&txn) = state.tasks.get(&task) else {
                    return Response::Err { message: format!("unknown open task `{task}`") };
                };
                (txn, state.task_dbs.get(&txn).cloned().unwrap_or_default())
            };
            let mut affected = 0u64;
            let mut payload = None;
            for cmd in &commands {
                match exec_with_wait(shared, txn, &database, cmd) {
                    Ok(ExecOutcome::Affected(n)) => affected += n as u64,
                    Ok(ExecOutcome::Rows(rs)) => {
                        payload = Some(wire::encode_result_set(&rs));
                    }
                    Err(e) => {
                        if matches!(e, DbError::Deadlock { .. }) {
                            // The transaction is already rolled back: close
                            // the task so the coordinator's abort sweep is
                            // a no-op and record the abort outcome.
                            let mut state = shared.state.lock();
                            state.tasks.remove(&task);
                            state.task_dbs.remove(&txn);
                            state.resolved.insert(task.clone(), 'A');
                        }
                        // Otherwise the transaction stays open:
                        // statement-level atomicity holds, the caller
                        // decides whether to continue or roll back.
                        return Response::TaskDone {
                            status: 'A',
                            affected,
                            payload: None,
                            error: Some(e.to_string()),
                        };
                    }
                }
            }
            Response::TaskDone { status: 'E', affected, payload, error: None }
        }
        Request::Prepare { task } => {
            let txn = {
                let state = shared.state.lock();
                match state.tasks.get(&task) {
                    Some(&txn) => txn,
                    None => {
                        return Response::Err { message: format!("unknown open task `{task}`") }
                    }
                }
            };
            let result = shared.engine.lock().prepare(txn);
            match result {
                Ok(()) => {
                    Response::TaskDone { status: 'P', affected: 0, payload: None, error: None }
                }
                Err(e) => {
                    // prepare() rolled the transaction back on failure.
                    let mut state = shared.state.lock();
                    state.tasks.remove(&task);
                    state.task_dbs.remove(&txn);
                    Response::TaskDone {
                        status: 'A',
                        affected: 0,
                        payload: None,
                        error: Some(e.to_string()),
                    }
                }
            }
        }
        Request::Task { name, mode, database, commands } => {
            run_task(shared, &name, mode, &database, &commands)
        }
        Request::Commit { task } => finish_task(shared, &task, true),
        Request::Abort { task } => finish_task(shared, &task, false),
        Request::Resolve { task, commit } => resolve_task(shared, &task, commit),
        Request::Compensate { task, database, commands } => {
            // Idempotent: a recovery pass re-sending COMPENSATE (under a
            // fresh correlation id, so the reply cache cannot dedup it)
            // must not apply the compensation twice. The 'K' record is
            // claimed *before* executing so a concurrent duplicate skips
            // instead of double-applying; a failure revokes the claim.
            {
                let mut state = shared.state.lock();
                if state.resolved.get(&task) == Some('K') {
                    return Response::Ok;
                }
                state.resolved.insert(task.clone(), 'K');
            }
            for cmd in &commands {
                let txn = shared.engine.lock().begin();
                match exec_with_wait(shared, txn, &database, cmd) {
                    Ok(_) => {
                        if let Err(e) = shared.engine.lock().commit(txn) {
                            shared.state.lock().resolved.remove(&task);
                            return Response::Err { message: e.to_string() };
                        }
                    }
                    Err(e) => {
                        rollback_tolerant(shared, txn);
                        shared.state.lock().resolved.remove(&task);
                        return Response::Err { message: e.to_string() };
                    }
                }
            }
            Response::Ok
        }
        Request::Partial { database, sql, baseline } => {
            run_partial(shared, &database, &sql, baseline.as_deref())
        }
        Request::PartialAgg { database, sql, baseline } => {
            run_partial_agg(shared, &database, &sql, baseline.as_deref())
        }
        Request::Schema { database } => {
            let engine = shared.engine.lock();
            match local_conceptual_schema(&engine, &database) {
                Ok(tables) => Response::OkPayload { payload: wire::encode_schema(&tables) },
                Err(e) => Response::Err { message: e.to_string() },
            }
        }
        Request::Stats { database, table } => {
            let engine = shared.engine.lock();
            match site_statistics(&engine, &database, table.as_deref()) {
                Ok(tables) => Response::OkPayload { payload: wire::encode_stats(&tables) },
                Err(e) => Response::Err { message: e.to_string() },
            }
        }
        Request::Load { database, table, payload } => load(shared, &database, &table, &payload),
        Request::DropTemp { database, table } => {
            let mut engine = shared.engine.lock();
            match engine.database_mut(&database) {
                Ok(db) => {
                    let _ = db.remove_table(&table);
                    Response::Ok
                }
                Err(e) => Response::Err { message: e.to_string() },
            }
        }
        Request::LoadMany { database, parts } => {
            for (table, payload) in &parts {
                match load(shared, &database, table, payload) {
                    Response::Ok => {}
                    other => return other,
                }
            }
            Response::Ok
        }
        Request::DropMany { database, tables } => {
            let mut engine = shared.engine.lock();
            match engine.database_mut(&database) {
                Ok(db) => {
                    for table in &tables {
                        let _ = db.remove_table(table);
                    }
                    Response::Ok
                }
                Err(e) => Response::Err { message: e.to_string() },
            }
        }
        Request::Ping => Response::Ok,
        Request::Shutdown => Response::Ok,
    }
}

fn run_task(
    shared: &SrvShared,
    name: &str,
    mode: TaskMode,
    database: &str,
    commands: &[String],
) -> Response {
    match mode {
        TaskMode::NoCommit => {
            let txn = {
                let mut engine = shared.engine.lock();
                if !engine.profile.supports_2pc {
                    return Response::TaskDone {
                        status: 'A',
                        affected: 0,
                        payload: None,
                        error: Some(format!(
                            "service `{}` supports automatic commit only",
                            engine.service_name
                        )),
                    };
                }
                engine.begin()
            };
            let mut affected = 0u64;
            let mut payload = None;
            for cmd in commands {
                match exec_with_wait(shared, txn, database, cmd) {
                    Ok(ExecOutcome::Affected(n)) => affected += n as u64,
                    Ok(ExecOutcome::Rows(rs)) => {
                        payload = Some(wire::encode_result_set(&rs));
                    }
                    Err(e) => {
                        rollback_tolerant(shared, txn);
                        return Response::TaskDone {
                            status: 'A',
                            affected: 0,
                            payload: None,
                            error: Some(e.to_string()),
                        };
                    }
                }
            }
            if let Err(e) = shared.engine.lock().prepare(txn) {
                // prepare() rolls back on injected failure.
                return Response::TaskDone {
                    status: 'A',
                    affected: 0,
                    payload: None,
                    error: Some(e.to_string()),
                };
            }
            let mut state = shared.state.lock();
            state.resolved.remove(name); // new incarnation supersedes
            state.tasks.insert(name.to_string(), txn);
            state.task_dbs.insert(txn, database.to_string());
            Response::TaskDone { status: 'P', affected, payload, error: None }
        }
        TaskMode::Auto => {
            let mut affected = 0u64;
            let mut payload = None;
            for cmd in commands {
                // An explicit begin/commit per command (not engine.execute)
                // so a lock wait retries under the *same* transaction id —
                // the wait queue entry stays valid across attempts.
                let txn = shared.engine.lock().begin();
                match exec_with_wait(shared, txn, database, cmd) {
                    Ok(out) => {
                        if let Err(e) = shared.engine.lock().commit(txn) {
                            return Response::TaskDone {
                                status: 'A',
                                affected,
                                payload: None,
                                error: Some(e.to_string()),
                            };
                        }
                        match out {
                            ExecOutcome::Affected(n) => affected += n as u64,
                            ExecOutcome::Rows(rs) => payload = Some(wire::encode_result_set(&rs)),
                        }
                    }
                    Err(e) => {
                        rollback_tolerant(shared, txn);
                        // Earlier commands have already autocommitted —
                        // exactly the hazard §3.3's compensation exists
                        // to handle.
                        return Response::TaskDone {
                            status: 'A',
                            affected,
                            payload: None,
                            error: Some(e.to_string()),
                        };
                    }
                }
            }
            // Autocommitted: already durable, so a later RESOLVE answers
            // `C` (recovery undoes such tasks via compensation, never by
            // rollback).
            shared.state.lock().resolved.insert(name.to_string(), 'C');
            Response::TaskDone { status: 'C', affected, payload, error: None }
        }
    }
}

fn run_partial(shared: &SrvShared, database: &str, sql: &str, baseline: Option<&str>) -> Response {
    // Autocommit SELECTs read a snapshot and never block on locks, so the
    // engine is only held for the statement itself.
    let mut engine = shared.engine.lock();
    let payload = match engine.execute(database, sql) {
        Ok(ExecOutcome::Rows(rs)) => wire::encode_result_set(&rs),
        Ok(ExecOutcome::Affected(_)) => {
            return Response::PartialDone {
                payload: None,
                error: Some("partial subquery did not produce rows".to_string()),
                full_rows: 0,
                full_bytes: 0,
                access: None,
            };
        }
        Err(e) => {
            return Response::PartialDone {
                payload: None,
                error: Some(e.to_string()),
                full_rows: 0,
                full_bytes: 0,
                access: None,
            };
        }
    };
    // Which access path the engine took for the shipped subquery (the
    // baseline run below must not overwrite it).
    let access = engine.last_access().map(str::to_string);
    // Measure — but never ship — the unreduced baseline. A baseline
    // failure only zeroes the measurement; it must not fail a request
    // whose real subquery succeeded.
    let (full_rows, full_bytes) = match baseline.map(|b| engine.execute(database, b)) {
        Some(Ok(ExecOutcome::Rows(rs))) => {
            let encoded = wire::encode_result_set(&rs);
            (rs.rows.len() as u64, encoded.len() as u64)
        }
        _ => (0, 0),
    };
    Response::PartialDone { payload: Some(payload), error: None, full_rows, full_bytes, access }
}

/// Evaluates a pushed-down (pre-aggregating or top-k) site query. Mirrors
/// [`run_partial`] but reports the reduced group/row count it shipped, and
/// the baseline it measures is the *unpushed* subquery — the rows the
/// classic plan would have put on the wire.
fn run_partial_agg(
    shared: &SrvShared,
    database: &str,
    sql: &str,
    baseline: Option<&str>,
) -> Response {
    let mut engine = shared.engine.lock();
    let (payload, groups) = match engine.execute(database, sql) {
        Ok(ExecOutcome::Rows(rs)) => (wire::encode_result_set(&rs), rs.rows.len() as u64),
        Ok(ExecOutcome::Affected(_)) => {
            return Response::PartialAggDone {
                payload: None,
                error: Some("pushed subquery did not produce rows".to_string()),
                groups: 0,
                full_rows: 0,
                full_bytes: 0,
            };
        }
        Err(e) => {
            return Response::PartialAggDone {
                payload: None,
                error: Some(e.to_string()),
                groups: 0,
                full_rows: 0,
                full_bytes: 0,
            };
        }
    };
    // Measure — but never ship — the unpushed subquery. A baseline failure
    // only zeroes the measurement.
    let (full_rows, full_bytes) = match baseline.map(|b| engine.execute(database, b)) {
        Some(Ok(ExecOutcome::Rows(rs))) => {
            let encoded = wire::encode_result_set(&rs);
            (rs.rows.len() as u64, encoded.len() as u64)
        }
        _ => (0, 0),
    };
    Response::PartialAggDone { payload: Some(payload), error: None, groups, full_rows, full_bytes }
}

fn finish_task(shared: &SrvShared, task: &str, commit: bool) -> Response {
    let txn = {
        let mut state = shared.state.lock();
        match state.tasks.remove(task) {
            Some(txn) => {
                state.task_dbs.remove(&txn);
                txn
            }
            None => {
                if commit {
                    return Response::Err { message: format!("unknown prepared task `{task}`") };
                }
                // Presumed abort: the task may already be gone because its
                // transaction was rolled back as a deadlock victim — the
                // coordinator's abort sweep must succeed idempotently.
                return Response::Ok;
            }
        }
    };
    let result = {
        let mut engine = shared.engine.lock();
        if commit {
            engine.commit(txn)
        } else {
            match engine.rollback(txn) {
                // Already aborted (deadlock victim): the abort stands.
                Err(DbError::InvalidTxnState { state: "Aborted", .. }) => Ok(()),
                other => other,
            }
        }
    };
    match result {
        Ok(()) => {
            let status = if commit { 'C' } else { 'A' };
            shared.state.lock().resolved.insert(task.to_string(), status);
            Response::Ok
        }
        Err(e) => Response::Err { message: e.to_string() },
    }
}

/// Recovery's `RESOLVE`: settle an in-doubt task per the coordinator's
/// replayed decision, answering from local state so the reply is
/// truthful even when the first settle round already ran.
fn resolve_task(shared: &SrvShared, task: &str, commit: bool) -> Response {
    let txn = {
        let state = shared.state.lock();
        // Already settled (by the pre-crash coordinator, an earlier recovery
        // pass, or autocommit): answer the recorded outcome.
        if let Some(status) = state.resolved.get(task) {
            return Response::TaskDone { status, affected: 0, payload: None, error: None };
        }
        state.tasks.get(task).copied()
    };
    match txn {
        Some(txn) => {
            let result = {
                let mut engine = shared.engine.lock();
                if commit {
                    engine.commit(txn)
                } else {
                    engine.rollback(txn)
                }
            };
            match result {
                Ok(()) => {
                    let status = if commit { 'C' } else { 'A' };
                    let mut state = shared.state.lock();
                    state.tasks.remove(task);
                    state.task_dbs.remove(&txn);
                    state.resolved.insert(task.to_string(), status);
                    Response::TaskDone { status, affected: 0, payload: None, error: None }
                }
                Err(e) => Response::Err { message: e.to_string() },
            }
        }
        // Never prepared here (or aborted locally): presumed abort.
        None => Response::TaskDone { status: 'A', affected: 0, payload: None, error: None },
    }
}

fn load(shared: &SrvShared, database: &str, table: &str, payload: &str) -> Response {
    let rs = match wire::decode_result_set(payload) {
        Ok(rs) => rs,
        Err(e) => return Response::Err { message: e.to_string() },
    };
    let mut engine = shared.engine.lock();
    let db = match engine.database_mut(database) {
        Ok(db) => db,
        Err(e) => return Response::Err { message: e.to_string() },
    };
    let columns =
        rs.columns.iter().map(|c| ColumnSchema::new(c.name.clone(), c.data_type)).collect();
    let mut schema = TableSchema::new(table, columns);
    schema.public = false; // temp tables are not exported
    let mut t = Table::new(schema);
    for row in rs.rows {
        if let Err(e) = t.insert(row) {
            return Response::Err { message: e.to_string() };
        }
    }
    let _ = db.remove_table(table);
    db.insert_table(t);
    Response::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbs::profile::DbmsProfile;

    #[test]
    fn outcome_memory_is_bounded_fifo() {
        let mut mem = OutcomeMemory::new(4);
        for i in 0..100 {
            mem.insert(format!("t{i}"), 'C');
        }
        assert_eq!(mem.entries.len(), 4);
        // Oldest entries evicted, newest retained.
        assert_eq!(mem.get("t96"), Some('C'));
        assert_eq!(mem.get("t99"), Some('C'));
        assert_eq!(mem.get("t0"), None);
        // Re-inserting an existing key updates in place without growth.
        mem.insert("t99".to_string(), 'A');
        assert_eq!(mem.entries.len(), 4);
        assert_eq!(mem.get("t99"), Some('A'));
        mem.remove("t99");
        assert_eq!(mem.get("t99"), None);
        assert_eq!(mem.entries.len(), 3);
    }

    fn setup() -> (Network, LamHandle, netsim::Endpoint) {
        let net = Network::new();
        let mut engine = Engine::new("svc", DbmsProfile::oracle_like());
        engine.create_database("avis").unwrap();
        engine.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT, carst CHAR(10))").unwrap();
        engine.execute("avis", "INSERT INTO cars VALUES (1, 40.0, 'available')").unwrap();
        engine.execute("avis", "INSERT INTO cars VALUES (2, 60.0, 'rented')").unwrap();
        let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();
        let client = net.register("engine").unwrap();
        (net, lam, client)
    }

    fn call(client: &netsim::Endpoint, req: Request) -> Response {
        client.send("site1", req.encode()).unwrap();
        let msg = client.recv().unwrap();
        Response::decode(msg.body.as_str()).unwrap()
    }

    #[test]
    fn ping_and_shutdown() {
        let (_net, lam, client) = setup();
        assert_eq!(call(&client, Request::Ping), Response::Ok);
        lam.shutdown();
    }

    #[test]
    fn auto_task_selects() {
        let (_net, _lam, client) = setup();
        let resp = call(
            &client,
            Request::Task {
                name: "Q1".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["SELECT code FROM cars WHERE carst = 'available'".into()],
            },
        );
        let Response::TaskDone { status: 'C', payload: Some(p), .. } = resp else {
            panic!("{resp:?}");
        };
        let rs = wire::decode_result_set(&p).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn nocommit_task_prepares_then_commits() {
        let (_net, lam, client) = setup();
        let resp = call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = 99 WHERE code = 1".into()],
            },
        );
        let Response::TaskDone { status: 'P', affected: 1, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(call(&client, Request::Commit { task: "T1".into() }), Response::Ok);
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(99.0));
    }

    #[test]
    fn nocommit_task_abort_restores() {
        let (_net, lam, client) = setup();
        call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = 99".into()],
            },
        );
        assert_eq!(call(&client, Request::Abort { task: "T1".into() }), Response::Ok);
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(40.0));
    }

    #[test]
    fn failing_command_reports_abort_status() {
        let (_net, _lam, client) = setup();
        let resp = call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET nonexistent = 1".into()],
            },
        );
        let Response::TaskDone { status: 'A', error: Some(e), .. } = resp else {
            panic!("{resp:?}")
        };
        assert!(e.contains("nonexistent"));
    }

    #[test]
    fn schema_request_returns_public_lcs() {
        let (_net, _lam, client) = setup();
        let resp = call(&client, Request::Schema { database: "avis".into() });
        let Response::OkPayload { payload } = resp else { panic!("{resp:?}") };
        let tables = wire::decode_schema(&payload).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "cars");
        assert_eq!(tables[0].columns.len(), 3);
    }

    #[test]
    fn load_and_droptemp() {
        let (_net, _lam, client) = setup();
        let payload = "COLS x:int|y:char(0)\nR I:7|S:hello\n";
        let resp = call(
            &client,
            Request::Load {
                database: "avis".into(),
                table: "part_t".into(),
                payload: payload.into(),
            },
        );
        assert_eq!(resp, Response::Ok);
        let resp = call(
            &client,
            Request::Task {
                name: "Q".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["SELECT x, y FROM part_t".into()],
            },
        );
        let Response::TaskDone { payload: Some(p), .. } = resp else { panic!("{resp:?}") };
        let rs = wire::decode_result_set(&p).unwrap();
        assert_eq!(rs.rows[0][0], ldbs::value::Value::Int(7));
        assert_eq!(
            call(&client, Request::DropTemp { database: "avis".into(), table: "part_t".into() }),
            Response::Ok
        );
    }

    #[test]
    fn partial_ships_reduced_rows_and_measures_baseline() {
        let (_net, _lam, client) = setup();
        let resp = call(
            &client,
            Request::Partial {
                database: "avis".into(),
                sql: "SELECT code FROM cars WHERE code IN (1)".into(),
                baseline: Some("SELECT code FROM cars".into()),
            },
        );
        let Response::PartialDone { payload: Some(p), error: None, full_rows, full_bytes, access } =
            resp
        else {
            panic!("{resp:?}")
        };
        let rs = wire::decode_result_set(&p).unwrap();
        assert_eq!(rs.rows.len(), 1, "reduced result ships one row");
        assert_eq!(full_rows, 2, "baseline measured both rows");
        assert!(full_bytes as usize > p.len(), "baseline payload is larger");
        assert_eq!(access.as_deref(), Some("scan"), "no index exists, so the engine scanned");
    }

    #[test]
    fn partial_error_and_bad_baseline_are_benign() {
        let (_net, _lam, client) = setup();
        let resp = call(
            &client,
            Request::Partial {
                database: "avis".into(),
                sql: "SELECT nope FROM cars".into(),
                baseline: None,
            },
        );
        let Response::PartialDone { payload: None, error: Some(e), .. } = resp else {
            panic!("{resp:?}")
        };
        assert!(e.contains("nope"));
        // A failing baseline zeroes the measurement but does not fail the
        // request.
        let resp = call(
            &client,
            Request::Partial {
                database: "avis".into(),
                sql: "SELECT code FROM cars".into(),
                baseline: Some("SELECT nope FROM cars".into()),
            },
        );
        let Response::PartialDone {
            payload: Some(_),
            error: None,
            full_rows: 0,
            full_bytes: 0,
            ..
        } = resp
        else {
            panic!("{resp:?}")
        };
    }

    #[test]
    fn compensate_runs_commands() {
        let (_net, lam, client) = setup();
        call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = rate * 2 WHERE code = 1".into()],
            },
        );
        let resp = call(
            &client,
            Request::Compensate {
                task: "T1".into(),
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = rate / 2 WHERE code = 1".into()],
            },
        );
        assert_eq!(resp, Response::Ok);
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(40.0));
    }

    #[test]
    fn repeated_compensate_applies_once() {
        let (_net, lam, client) = setup();
        call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = rate * 2 WHERE code = 1".into()],
            },
        );
        let comp = Request::Compensate {
            task: "T1".into(),
            database: "avis".into(),
            commands: vec!["UPDATE cars SET rate = rate / 2 WHERE code = 1".into()],
        };
        // First compensation applies; a recovery pass that lost the record
        // re-sends it (fresh correlation id) and must hit the 'K' memory.
        assert_eq!(call(&client, comp.clone()), Response::Ok);
        assert_eq!(call(&client, comp), Response::Ok);
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(40.0), "halved once, not twice");
        // RESOLVE on a compensated task answers the recorded 'K'.
        let resp = call(&client, Request::Resolve { task: "T1".into(), commit: false });
        assert!(matches!(resp, Response::TaskDone { status: 'K', .. }), "{resp:?}");
    }

    #[test]
    fn resolve_commits_an_in_doubt_prepared_task() {
        let (_net, lam, client) = setup();
        call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = 99 WHERE code = 1".into()],
            },
        );
        // The coordinator "crashed"; recovery re-resolves the prepared task.
        let resp = call(&client, Request::Resolve { task: "T1".into(), commit: true });
        assert!(matches!(resp, Response::TaskDone { status: 'C', .. }), "{resp:?}");
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(99.0));
        // Re-asking answers the recorded outcome, idempotently.
        let again = call(&client, Request::Resolve { task: "T1".into(), commit: true });
        assert!(matches!(again, Response::TaskDone { status: 'C', .. }), "{again:?}");
    }

    #[test]
    fn resolve_unknown_task_is_presumed_abort() {
        let (_net, _lam, client) = setup();
        let resp = call(&client, Request::Resolve { task: "ghost".into(), commit: true });
        assert!(matches!(resp, Response::TaskDone { status: 'A', .. }), "{resp:?}");
    }

    #[test]
    fn resolve_after_normal_settle_answers_recorded_outcome() {
        let (_net, _lam, client) = setup();
        call(
            &client,
            Request::Task {
                name: "T1".into(),
                mode: TaskMode::NoCommit,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = 77 WHERE code = 1".into()],
            },
        );
        assert_eq!(call(&client, Request::Commit { task: "T1".into() }), Response::Ok);
        // A recovery pass that lost the coordinator's TaskResolved record
        // re-asks — and must hear `C`, not presumed abort.
        let resp = call(&client, Request::Resolve { task: "T1".into(), commit: true });
        assert!(matches!(resp, Response::TaskDone { status: 'C', .. }), "{resp:?}");
        // An autocommitted task also answers `C`.
        call(
            &client,
            Request::Task {
                name: "T2".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = 55 WHERE code = 2".into()],
            },
        );
        let resp = call(&client, Request::Resolve { task: "T2".into(), commit: true });
        assert!(matches!(resp, Response::TaskDone { status: 'C', .. }), "{resp:?}");
    }

    #[test]
    fn unknown_prepared_task_errors() {
        let (_net, _lam, client) = setup();
        let resp = call(&client, Request::Commit { task: "ghost".into() });
        assert!(matches!(resp, Response::Err { .. }));
    }

    #[test]
    fn malformed_request_gets_err_response() {
        let (_net, _lam, client) = setup();
        client.send("site1", "GARBAGE").unwrap();
        let msg = client.recv().unwrap();
        assert!(matches!(Response::decode(msg.body.as_str()).unwrap(), Response::Err { .. }));
    }

    #[test]
    fn correlated_resend_is_answered_from_cache_not_re_executed() {
        let (_net, lam, client) = setup();
        let req = Request::Task {
            name: "T1".into(),
            mode: TaskMode::Auto,
            database: "avis".into(),
            commands: vec!["UPDATE cars SET rate = rate + 1 WHERE code = 1".into()],
        };
        let framed = proto::encode_with_correlation(99, &req.encode());
        client.send("site1", framed.clone()).unwrap();
        let first = client.recv().unwrap();
        // A client that lost the reply re-sends the same correlated request.
        client.send("site1", framed).unwrap();
        let second = client.recv().unwrap();
        assert_eq!(first.body, second.body, "replayed verbatim");
        let (corr, body) = proto::split_correlation(second.body.as_str());
        assert_eq!(corr, Some(99));
        assert!(matches!(
            Response::decode(body).unwrap(),
            Response::TaskDone { status: 'C', affected: 1, .. }
        ));
        // The update ran exactly once: 40.0 + 1, not + 2.
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(41.0));
    }

    #[test]
    fn distinct_correlation_ids_execute_independently() {
        let (_net, lam, client) = setup();
        let req = Request::Task {
            name: "T1".into(),
            mode: TaskMode::Auto,
            database: "avis".into(),
            commands: vec!["UPDATE cars SET rate = rate + 1 WHERE code = 1".into()],
        };
        for id in [1u64, 2] {
            client.send("site1", proto::encode_with_correlation(id, &req.encode())).unwrap();
            let _ = client.recv().unwrap();
        }
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(42.0));
    }

    #[test]
    fn handle_is_alive_until_shutdown() {
        let (_net, lam, client) = setup();
        assert!(lam.is_alive());
        assert_eq!(call(&client, Request::Ping), Response::Ok);
        lam.shutdown();
    }

    #[test]
    fn reply_cache_evicts_fifo() {
        let mut c = ReplyCache::new(2);
        c.put(1, "a".into());
        c.put(2, "b".into());
        c.put(3, "c".into());
        assert_eq!(c.get(1), None, "oldest evicted");
        assert_eq!(c.get(2), Some("b".into()));
        assert_eq!(c.get(3), Some("c".into()));
    }
}
