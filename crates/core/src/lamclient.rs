//! Local Access Managers — the client side.
//!
//! A [`LamClient`] is one open connection from the DOL engine to a remote
//! LAM: it implements [`dol::DolService`] by shipping [`crate::proto`]
//! requests over the simulated network, and adds the data-flow operations
//! the executor needs (schema fetch, partial-result loading at the
//! coordinator).

use crate::codec::{self, WireFormat};
use crate::error::MdbsError;
use crate::proto::{self, Request, Response, TaskMode};
use crate::retry::{shared_stats, RetryPolicy, SharedExecStats};
use dol::engine::TaskExecution;
use dol::TaskStatus;
use dol::{DolError, DolService, ServiceFactory};
use netsim::{Body, BufferPool, Endpoint, FaultKind, NetError, Network};
use obs::{labeled, MetricsRegistry, Span};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Correlation ids for logical requests. Each logical call gets one id; all
/// of its retry attempts share it, so the LAM can deduplicate resends and
/// the client can discard stale responses from abandoned attempts.
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(1);

/// Packs a task's affected-row count and optional result payload into the
/// single result string [`dol::engine::TaskExecution`] carries.
pub fn encode_task_result(affected: u64, payload: Option<&str>) -> String {
    match payload {
        Some(p) => format!("AFFECTED {affected}\n{p}"),
        None => format!("AFFECTED {affected}\n"),
    }
}

/// Reverses [`encode_task_result`]; returns `(affected, payload)`.
pub fn decode_task_result(result: &str) -> Result<(u64, Option<String>), MdbsError> {
    let (header, payload) = result
        .split_once('\n')
        .ok_or_else(|| MdbsError::Wire("missing task result header".into()))?;
    let affected = header
        .strip_prefix("AFFECTED ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| MdbsError::Wire(format!("bad task result header `{header}`")))?;
    let payload = if payload.is_empty() { None } else { Some(payload.to_string()) };
    Ok((affected, payload))
}

/// The outcome of one [`LamClient::run_partial`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialResult {
    /// `wire::encode_result_set` payload of the (possibly reduced) subquery.
    pub payload: String,
    /// Rows in `payload`.
    pub rows: u64,
    /// Rows the unreduced baseline would have shipped (0 when unmeasured).
    pub full_rows: u64,
    /// Bytes the unreduced baseline would have shipped (0 when unmeasured).
    pub full_bytes: u64,
    /// Round-trip attempts spent on the request.
    pub attempts: u32,
    /// Access path the local engine took (`probe` or `scan`), when reported.
    pub access: Option<String>,
}

/// One connection to a LAM, bound to a database on that service.
pub struct LamClient {
    endpoint: Endpoint,
    net: Network,
    site: String,
    /// The database this connection is opened on.
    pub database: String,
    timeout: Duration,
    /// Transient-fault retry policy (default: a single attempt).
    retry: RetryPolicy,
    /// Shared fault/retry accounting.
    stats: SharedExecStats,
    /// Metrics sink for `lam.*` series (a private registry unless attached
    /// to a federation's via [`Self::set_metrics`]).
    metrics: MetricsRegistry,
    /// Encoding used for requests (the server mirrors it in replies). Text
    /// unless negotiated up via [`Self::set_wire_format`].
    wire_format: WireFormat,
    /// Lease pool for binary frame buffers.
    pool: BufferPool,
}

/// One attempt's failure: a classified network fault, or a protocol error
/// that no resend can fix.
enum AttemptError {
    Net(NetError),
    Fatal(MdbsError),
}

impl LamClient {
    /// Opens a connection: registers a unique client endpoint and pings the
    /// LAM to verify it is reachable. No retries; see [`Self::connect_with`].
    pub fn connect(
        net: &Network,
        site: &str,
        database: &str,
        timeout: Duration,
    ) -> Result<Self, MdbsError> {
        LamClient::connect_with(
            net,
            site,
            database,
            timeout,
            RetryPolicy::default(),
            shared_stats(),
        )
    }

    /// Opens a connection with an explicit retry policy and a shared stats
    /// cell (so the executor can aggregate accounting across clients).
    pub fn connect_with(
        net: &Network,
        site: &str,
        database: &str,
        timeout: Duration,
        retry: RetryPolicy,
        stats: SharedExecStats,
    ) -> Result<Self, MdbsError> {
        let name = format!("__cli_{}_{}", site, CLIENT_SEQ.fetch_add(1, Ordering::Relaxed));
        let endpoint = net.register(&name)?;
        let client = LamClient {
            endpoint,
            net: net.clone(),
            site: site.to_string(),
            database: database.to_string(),
            timeout,
            retry,
            stats,
            metrics: MetricsRegistry::new(),
            wire_format: WireFormat::default(),
            pool: BufferPool::default(),
        };
        // The bootstrap PING always travels as text: negotiation is applied
        // by the owner after connect, and text is the universal fallback.
        match client.call(Request::Ping)? {
            Response::Ok => Ok(client),
            other => Err(MdbsError::Net(format!("unexpected ping reply: {other:?}"))),
        }
    }

    /// The shared stats cell this client records into.
    pub fn stats(&self) -> SharedExecStats {
        SharedExecStats::clone(&self.stats)
    }

    /// Points the client's `lam.*` metric series at a shared registry.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Switches the request encoding. The LAM mirrors whatever format each
    /// request arrives in, so this needs no server-side coordination and may
    /// change between calls.
    pub fn set_wire_format(&mut self, format: WireFormat) {
        self.wire_format = format;
    }

    /// The request encoding in use.
    pub fn wire_format(&self) -> WireFormat {
        self.wire_format
    }

    /// Sends one logical request and waits for its response, retrying
    /// transient faults per the client's [`RetryPolicy`].
    pub fn call(&self, req: Request) -> Result<Response, MdbsError> {
        self.call_full(&req).0
    }

    /// Like [`Self::call`], also reporting how many attempts were spent and
    /// the last fault observed (telemetry for per-task reporting).
    ///
    /// Every attempt of one logical call shares a correlation id, so the
    /// LAM server executes the request at most once no matter how often it
    /// is resent — state-changing requests (`Task`, `Commit`, `Abort`,
    /// `Exec`, `Compensate`) are as safe to retry as reads. A lost
    /// `Commit` acknowledgement in particular is re-asked here rather than
    /// misreported as an abort. Only `Shutdown` is never retried.
    pub fn call_full(
        &self,
        req: &Request,
    ) -> (Result<Response, MdbsError>, u32, Option<FaultKind>) {
        let (result, attempts, faults) = self.call_traced(req, &Span::disabled());
        (result, attempts, faults.last().copied())
    }

    /// Like [`Self::call_full`], opening one `rpc` child of `span` per
    /// attempt (annotated with the fault that killed it, if any) and
    /// returning every fault observed across the attempts.
    pub fn call_traced(
        &self,
        req: &Request,
        span: &Span,
    ) -> (Result<Response, MdbsError>, u32, Vec<FaultKind>) {
        let id = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
        // Encoded once per logical call; every retry resends the same bytes.
        let encode_start = Instant::now();
        let framed: Body = match self.wire_format {
            WireFormat::Text => Body::Text(proto::encode_with_correlation(id, &req.encode())),
            WireFormat::Binary => Body::Binary(codec::encode_request(&self.pool, Some(id), req)),
        };
        self.metrics.observe(
            &labeled("wire.encode_us", "format", self.wire_format.label()),
            encode_start.elapsed().as_micros() as u64,
        );
        let max_attempts =
            if matches!(req, Request::Shutdown) { 1 } else { self.retry.max_attempts.max(1) };
        let overall_deadline = Instant::now() + self.retry.deadline;
        let mut faults: Vec<FaultKind> = Vec::new();
        let mut last_net: Option<NetError> = None;
        let mut attempts = 0u32;
        while attempts < max_attempts {
            if attempts > 0 {
                let pause = self.retry.backoff(attempts + 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                if Instant::now() >= overall_deadline {
                    break;
                }
            }
            attempts += 1;
            let rpc = span.child("rpc");
            rpc.note("attempt", attempts);
            match self.attempt(id, &framed) {
                Ok(resp) => {
                    drop(rpc);
                    self.stats.lock().record_call(attempts, &faults, true);
                    return (Ok(resp), attempts, faults);
                }
                Err(AttemptError::Net(e)) => {
                    let kind = e.fault_kind();
                    rpc.note("fault", fault_label(kind));
                    faults.push(kind);
                    last_net = Some(e);
                    if kind == FaultKind::Terminal {
                        break;
                    }
                }
                Err(AttemptError::Fatal(e)) => {
                    rpc.note("error", "protocol");
                    drop(rpc);
                    self.stats.lock().record_call(attempts, &faults, false);
                    return (Err(e), attempts, faults);
                }
            }
        }
        self.stats.lock().record_call(attempts, &faults, false);
        let err = match faults.last().copied() {
            Some(FaultKind::Terminal) => MdbsError::LamUnavailable { site: self.site.clone() },
            _ => {
                let detail = last_net
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "retry deadline exceeded".to_string());
                MdbsError::Net(format!("{detail} (site `{}`, {attempts} attempt(s))", self.site))
            }
        };
        (Err(err), attempts, faults)
    }

    /// One send/receive round. Responses whose correlation id does not match
    /// are stale replies to abandoned attempts and are discarded. Replies
    /// are accepted in either wire format — the server mirrors the request's
    /// format, but a stale text reply must not wedge a binary client.
    fn attempt(&self, id: u64, framed: &Body) -> Result<Response, AttemptError> {
        self.endpoint.send(&self.site, framed.clone()).map_err(AttemptError::Net)?;
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(AttemptError::Net(NetError::Timeout));
            }
            let msg = self.endpoint.recv_timeout(deadline - now).map_err(AttemptError::Net)?;
            let decode_start = Instant::now();
            let (matched, format) = match &msg.body {
                Body::Text(text) => {
                    let (corr, body) = proto::split_correlation(text);
                    let matched = (corr == Some(id)).then(|| Response::decode(body));
                    (matched, WireFormat::Text)
                }
                Body::Binary(bytes) => {
                    let matched = (codec::peek_correlation(bytes) == Some(id))
                        .then(|| codec::decode_response(bytes).map(|(_, resp)| resp));
                    (matched, WireFormat::Binary)
                }
            };
            // A reply to an earlier attempt or an earlier logical call is
            // skipped; the server's dedup cache already answered (or will
            // answer) the live id.
            if let Some(result) = matched {
                self.metrics.observe(
                    &labeled("wire.decode_us", "format", format.label()),
                    decode_start.elapsed().as_micros() as u64,
                );
                return result.map_err(AttemptError::Fatal);
            }
        }
    }

    /// Opens a persistent local transaction under `name` (deferred global
    /// transactions).
    pub fn begin_task(&self, name: &str) -> Result<(), MdbsError> {
        match self
            .call(Request::Begin { name: name.to_string(), database: self.database.clone() })?
        {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected begin reply: {other:?}"))),
        }
    }

    /// Executes commands inside an open task. Returns `(status, affected,
    /// error)` where status `'E'` means still active and `'A'` means the
    /// statement failed (the transaction stays open).
    pub fn exec_in_task(
        &self,
        task: &str,
        commands: Vec<String>,
    ) -> Result<(char, u64, Option<String>), MdbsError> {
        match self.call(Request::Exec { task: task.to_string(), commands })? {
            Response::TaskDone { status, affected, error, .. } => Ok((status, affected, error)),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected exec reply: {other:?}"))),
        }
    }

    /// Moves an open task to prepared-to-commit. Returns `'P'` on success or
    /// `'A'` (with the error) when the vote failed and the local transaction
    /// was rolled back.
    pub fn prepare_task(&self, task: &str) -> Result<(char, Option<String>), MdbsError> {
        match self.call(Request::Prepare { task: task.to_string() })? {
            Response::TaskDone { status, error, .. } => Ok((status, error)),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected prepare reply: {other:?}"))),
        }
    }

    /// Fetches the public Local Conceptual Schema of this connection's
    /// database (for IMPORT).
    pub fn fetch_schema(&self) -> Result<Vec<catalog::GddTable>, MdbsError> {
        match self.call(Request::Schema { database: self.database.clone() })? {
            Response::OkPayload { payload } => crate::wire::decode_schema(&payload),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected schema reply: {other:?}"))),
        }
    }

    /// Fetches the optimizer statistics this connection's database collected
    /// via `ANALYZE`. Tables never analyzed are absent from the answer; the
    /// coordinator caches what it gets in the GDD statistics tier.
    pub fn fetch_stats(&self) -> Result<Vec<crate::wire::SiteTableStats>, MdbsError> {
        match self.call(Request::Stats { database: self.database.clone(), table: None })? {
            Response::OkPayload { payload } => crate::wire::decode_stats(&payload),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// Evaluates one local subquery of a decomposed cross-database join on
    /// the LAM and ships its serialized result back, annotating `span` and
    /// the `lam.*` metrics with the shipped volume. When `baseline` is set,
    /// the LAM also measures (without shipping) the unreduced subquery so
    /// semi-join savings are quantifiable.
    pub fn run_partial(
        &self,
        sql: &str,
        baseline: Option<&str>,
        span: &Span,
    ) -> Result<PartialResult, MdbsError> {
        let req = Request::Partial {
            database: self.database.clone(),
            sql: sql.to_string(),
            baseline: baseline.map(str::to_string),
        };
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        match result? {
            Response::PartialDone {
                payload: Some(p),
                error: None,
                full_rows,
                full_bytes,
                access,
            } => {
                let rows = payload_rows(&p);
                span.note("rows", rows);
                span.note("bytes", p.len());
                let db = self.database.as_str();
                self.metrics.counter_add(&labeled("lam.rows", "db", db), rows);
                self.metrics.counter_add(&labeled("lam.bytes", "db", db), p.len() as u64);
                Ok(PartialResult { payload: p, rows, full_rows, full_bytes, attempts, access })
            }
            Response::PartialDone { error: Some(message), .. } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected partial reply: {other:?}"))),
        }
    }

    /// Evaluates a pushed-down (pre-aggregating or top-k) site query on the
    /// LAM and ships its reduced result back, annotating `span` and the
    /// `lam.*` metrics with the shipped volume. When `baseline` is set, the
    /// LAM also measures (without shipping) the *unpushed* subquery so the
    /// pushdown's savings are quantifiable.
    pub fn run_partial_agg(
        &self,
        sql: &str,
        baseline: Option<&str>,
        span: &Span,
    ) -> Result<PartialResult, MdbsError> {
        let req = Request::PartialAgg {
            database: self.database.clone(),
            sql: sql.to_string(),
            baseline: baseline.map(str::to_string),
        };
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        match result? {
            Response::PartialAggDone {
                payload: Some(p),
                error: None,
                groups: _,
                full_rows,
                full_bytes,
            } => {
                let rows = payload_rows(&p);
                span.note("rows", rows);
                span.note("bytes", p.len());
                let db = self.database.as_str();
                self.metrics.counter_add(&labeled("lam.rows", "db", db), rows);
                self.metrics.counter_add(&labeled("lam.bytes", "db", db), p.len() as u64);
                Ok(PartialResult {
                    payload: p,
                    rows,
                    full_rows,
                    full_bytes,
                    attempts,
                    access: None,
                })
            }
            Response::PartialAggDone { error: Some(message), .. } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected partialagg reply: {other:?}"))),
        }
    }

    /// Loads a serialized partial result as a temporary table (coordinator
    /// collection).
    pub fn load_partial(&self, table: &str, payload: &str) -> Result<(), MdbsError> {
        match self.call(Request::Load {
            database: self.database.clone(),
            table: table.to_string(),
            payload: payload.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected load reply: {other:?}"))),
        }
    }

    /// Loads every partial result as a temporary table in a single round
    /// trip, so coordinator collection costs one link latency regardless of
    /// how many sites contributed partials.
    pub fn load_partials(&self, parts: Vec<(String, String)>) -> Result<(), MdbsError> {
        match self.call(Request::LoadMany { database: self.database.clone(), parts })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected load reply: {other:?}"))),
        }
    }

    /// Drops several temporary tables in a single round trip.
    pub fn drop_temps(&self, tables: Vec<String>) -> Result<(), MdbsError> {
        match self.call(Request::DropMany { database: self.database.clone(), tables })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected drop reply: {other:?}"))),
        }
    }

    /// Drops a temporary table.
    pub fn drop_temp(&self, table: &str) -> Result<(), MdbsError> {
        match self
            .call(Request::DropTemp { database: self.database.clone(), table: table.to_string() })?
        {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected drop reply: {other:?}"))),
        }
    }
}

impl LamClient {
    /// Annotates a task/commit/abort/compensate span with this client's
    /// communication telemetry and folds it into the `lam.*` metrics.
    fn record_obs(&self, span: &Span, attempts: u32, faults: &[FaultKind]) {
        span.note("db", &self.database);
        span.note("attempts", attempts);
        if let Some(kind) = faults.last() {
            span.note("fault", fault_label(*kind));
            span.note("faults", faults.len());
        }
        let db = self.database.as_str();
        self.metrics.counter_add(&labeled("lam.calls", "db", db), 1);
        self.metrics.counter_add(&labeled("lam.attempts", "db", db), u64::from(attempts.max(1)));
        self.metrics
            .counter_add(&labeled("lam.retries", "db", db), u64::from(attempts.saturating_sub(1)));
        self.metrics.counter_add(&labeled("lam.faults", "db", db), faults.len() as u64);
    }

    fn run_task(&mut self, task: &dol::TaskDef, span: &Span) -> TaskExecution {
        let mode = if task.nocommit { TaskMode::NoCommit } else { TaskMode::Auto };
        let req = Request::Task {
            name: task.name.clone(),
            mode,
            database: self.database.clone(),
            commands: task.commands.clone(),
        };
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        self.stats.lock().record_task(&task.name, attempts, faults.last().copied());
        match result {
            Ok(Response::TaskDone { status, affected, payload, error }) => {
                let status = match status {
                    'P' => TaskStatus::Prepared,
                    'C' => TaskStatus::Committed,
                    'A' => TaskStatus::Aborted,
                    _ => TaskStatus::Error,
                };
                if affected > 0 {
                    span.note("affected", affected);
                }
                if let Some(p) = payload.as_deref() {
                    let rows = payload_rows(p);
                    span.note("rows", rows);
                    span.note("bytes", p.len());
                    let db = self.database.as_str();
                    self.metrics.counter_add(&labeled("lam.rows", "db", db), rows);
                    self.metrics.counter_add(&labeled("lam.bytes", "db", db), p.len() as u64);
                }
                TaskExecution {
                    status,
                    result: Some(encode_task_result(affected, payload.as_deref())),
                    error,
                }
            }
            Ok(other) => TaskExecution {
                status: TaskStatus::Error,
                result: None,
                error: Some(format!("unexpected reply: {other:?}")),
            },
            // Exhausted retries (or a terminal fault) surface as errors —
            // the global plan treats them like local aborts (paper §3.2:
            // "one or more LDBMSs may be forced to abort").
            Err(e) => TaskExecution {
                status: TaskStatus::Error,
                result: None,
                error: Some(e.to_string()),
            },
        }
    }

    /// Sends an ack-only second-phase request, tracing its round trips.
    ///
    /// A `COMMIT` whose every acknowledgement is lost to *transient* faults
    /// (the site is still registered — the LAM may well have committed) is
    /// reported as [`DolError::InDoubt`], never as a plain service error:
    /// the caller must route it to recovery rather than presume abort.
    fn phase_two(&mut self, req: Request, span: &Span) -> Result<(), DolError> {
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        match result {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Err { message }) => Err(DolError::Service(message)),
            Ok(other) => Err(DolError::Service(format!("unexpected reply: {other:?}"))),
            Err(MdbsError::Net(_)) if matches!(&req, Request::Commit { .. }) => {
                let task = match &req {
                    Request::Commit { task } => task.clone(),
                    _ => unreachable!(),
                };
                span.note("in_doubt", &task);
                Err(DolError::InDoubt { service: self.site.clone(), task })
            }
            Err(e) => Err(DolError::Service(e.to_string())),
        }
    }

    /// Recovery's outcome query: asks the LAM to settle `task` per the
    /// coordinator's logged decision and report the status it ended in
    /// (`'C'`/`'A'`). The LAM answers from its own state — committing or
    /// rolling back a still-prepared subtransaction, repeating a recorded
    /// outcome, or presuming abort for a task it never heard of.
    pub fn resolve_task_outcome(
        &self,
        task: &str,
        commit: bool,
        span: &Span,
    ) -> Result<char, MdbsError> {
        let req = Request::Resolve { task: task.to_string(), commit };
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        match result? {
            Response::TaskDone { status, .. } => Ok(status),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected resolve reply: {other:?}"))),
        }
    }

    /// Recovery's compensation path: runs the logged compensating commands
    /// for `task`. The LAM's `'K'` outcome memory makes this idempotent, so
    /// a recovery pass that repeats it (after losing the resolution record)
    /// cannot double-apply.
    pub fn compensate_commands(
        &self,
        task: &str,
        commands: &[String],
        span: &Span,
    ) -> Result<(), MdbsError> {
        let req = Request::Compensate {
            task: task.to_string(),
            database: self.database.clone(),
            commands: commands.to_vec(),
        };
        let (result, attempts, faults) = self.call_traced(&req, span);
        self.record_obs(span, attempts, &faults);
        match result? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected compensate reply: {other:?}"))),
        }
    }
}

/// Stable lower-case label for fault annotations in spans and goldens.
fn fault_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Terminal => "terminal",
    }
}

/// Counts the data rows in a wire-encoded result-set payload.
fn payload_rows(payload: &str) -> u64 {
    payload.lines().filter(|l| *l == "R" || l.starts_with("R ")).count() as u64
}

impl Drop for LamClient {
    fn drop(&mut self) {
        self.net.deregister(self.endpoint.name());
    }
}

impl DolService for LamClient {
    fn execute_task(&mut self, task: &dol::TaskDef) -> TaskExecution {
        self.run_task(task, &Span::disabled())
    }

    fn execute_task_traced(&mut self, task: &dol::TaskDef, span: &Span) -> TaskExecution {
        self.run_task(task, span)
    }

    fn commit_task(&mut self, task_name: &str) -> Result<(), DolError> {
        self.commit_task_traced(task_name, &Span::disabled())
    }

    fn commit_task_traced(&mut self, task_name: &str, span: &Span) -> Result<(), DolError> {
        self.phase_two(Request::Commit { task: task_name.to_string() }, span)
    }

    fn abort_task(&mut self, task_name: &str) -> Result<(), DolError> {
        self.abort_task_traced(task_name, &Span::disabled())
    }

    fn abort_task_traced(&mut self, task_name: &str, span: &Span) -> Result<(), DolError> {
        self.phase_two(Request::Abort { task: task_name.to_string() }, span)
    }

    fn compensate_task(&mut self, task: &dol::TaskDef) -> Result<(), DolError> {
        self.compensate_task_traced(task, &Span::disabled())
    }

    fn compensate_task_traced(&mut self, task: &dol::TaskDef, span: &Span) -> Result<(), DolError> {
        self.phase_two(
            Request::Compensate {
                task: task.name.clone(),
                database: self.database.clone(),
                commands: task.compensation.clone(),
            },
            span,
        )
    }

    fn close(&mut self) {
        // Connection teardown happens in Drop (endpoint deregistration).
    }
}

/// [`ServiceFactory`] for DOL programs: `OPEN <database> AT <site>` becomes
/// a [`LamClient`] bound to that database.
pub struct LamFactory {
    /// The shared network.
    pub net: Network,
    /// Per-request timeout.
    pub timeout: Duration,
    /// Retry policy handed to every client this factory opens.
    pub retry: RetryPolicy,
    /// Stats cell shared by every client this factory opens.
    pub stats: SharedExecStats,
    /// Metrics registry shared by every client this factory opens.
    pub metrics: MetricsRegistry,
    /// Graceful degradation: when set, a service whose LAM cannot be
    /// reached at OPEN time yields a stub that reports every task as failed
    /// instead of failing the whole plan — the §3.2 vital semantics then
    /// decide whether the statement survives the loss.
    pub tolerate_unreachable: bool,
    /// Wire format handed to every client this factory opens.
    pub wire_format: WireFormat,
}

impl LamFactory {
    /// A factory with the default (no-retry, fail-fast) behaviour.
    pub fn new(net: Network, timeout: Duration) -> Self {
        LamFactory {
            net,
            timeout,
            retry: RetryPolicy::default(),
            stats: shared_stats(),
            metrics: MetricsRegistry::new(),
            tolerate_unreachable: false,
            wire_format: WireFormat::default(),
        }
    }
}

impl ServiceFactory for LamFactory {
    fn connect(&self, service: &str, site: &str) -> Result<Box<dyn DolService>, DolError> {
        match LamClient::connect_with(
            &self.net,
            site,
            service,
            self.timeout,
            self.retry.clone(),
            SharedExecStats::clone(&self.stats),
        ) {
            Ok(mut client) => {
                client.set_metrics(self.metrics.clone());
                client.set_wire_format(self.wire_format);
                Ok(Box::new(client))
            }
            Err(e) if self.tolerate_unreachable => Ok(Box::new(UnreachableService {
                site: site.to_string(),
                reason: e.to_string(),
                stats: SharedExecStats::clone(&self.stats),
            })),
            Err(e) => {
                Err(DolError::OpenFailed { service: service.to_string(), reason: e.to_string() })
            }
        }
    }
}

/// Stand-in service for a LAM that could not be reached at OPEN time. Every
/// task fails with an error status (never panics or hangs), so the DOL
/// program's vital semantics decide the statement's fate; commit/abort of
/// tasks that never ran are no-ops.
struct UnreachableService {
    site: String,
    reason: String,
    stats: SharedExecStats,
}

impl DolService for UnreachableService {
    fn execute_task(&mut self, task: &dol::TaskDef) -> TaskExecution {
        // The terminal fault itself was counted by the failed connect; here
        // we only pin the task-level telemetry.
        self.stats.lock().record_task(&task.name, 0, Some(FaultKind::Terminal));
        TaskExecution {
            status: TaskStatus::Error,
            result: None,
            error: Some(format!("site `{}` unreachable: {}", self.site, self.reason)),
        }
    }

    fn commit_task(&mut self, _task_name: &str) -> Result<(), DolError> {
        Ok(())
    }

    fn abort_task(&mut self, _task_name: &str) -> Result<(), DolError> {
        Ok(())
    }

    fn compensate_task(&mut self, _task: &dol::TaskDef) -> Result<(), DolError> {
        Ok(())
    }

    fn close(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lam::spawn_lam;
    use ldbs::profile::DbmsProfile;
    use ldbs::Engine;

    /// Generous per-request timeout for tests (nothing should ever wait
    /// this long on the zero-latency test network).
    const TEST_TIMEOUT: Duration = Duration::from_secs(5);

    fn setup() -> (Network, crate::lam::LamHandle) {
        setup_on(Network::new())
    }

    fn setup_on(net: Network) -> (Network, crate::lam::LamHandle) {
        let mut engine = Engine::new("svc", DbmsProfile::oracle_like());
        engine.create_database("avis").unwrap();
        engine.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT)").unwrap();
        engine.execute("avis", "INSERT INTO cars VALUES (1, 40.0)").unwrap();
        let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();
        (net, lam)
    }

    #[test]
    fn task_result_roundtrip() {
        let enc = encode_task_result(5, Some("COLS x:int\nR I:1\n"));
        let (affected, payload) = decode_task_result(&enc).unwrap();
        assert_eq!(affected, 5);
        assert!(payload.unwrap().starts_with("COLS"));
        let (a2, p2) = decode_task_result(&encode_task_result(0, None)).unwrap();
        assert_eq!(a2, 0);
        assert!(p2.is_none());
    }

    #[test]
    fn client_executes_select_task() {
        let (net, _lam) = setup();
        let mut client = LamClient::connect(&net, "site1", "avis", TEST_TIMEOUT).unwrap();
        let task = dol::TaskDef {
            name: "Q1".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Committed);
        let (_, payload) = decode_task_result(&exec.result.unwrap()).unwrap();
        let rs = crate::wire::decode_result_set(&payload.unwrap()).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn client_prepare_commit_cycle() {
        let (net, lam) = setup();
        let mut client = LamClient::connect(&net, "site1", "avis", TEST_TIMEOUT).unwrap();
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: true,
            commands: vec!["UPDATE cars SET rate = 50 WHERE code = 1".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Prepared);
        client.commit_task("T1").unwrap();
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(50.0));
    }

    #[test]
    fn connect_to_missing_site_fails() {
        let net = Network::new();
        assert!(LamClient::connect(&net, "nowhere", "db", Duration::from_millis(100)).is_err());
    }

    #[test]
    fn partitioned_site_yields_error_status() {
        let (net, _lam) = setup();
        let mut client =
            LamClient::connect(&net, "site1", "avis", Duration::from_millis(200)).unwrap();
        net.partition(client.endpoint.name(), "site1");
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Error);
        assert!(exec.error.unwrap().contains("partition"));
    }

    #[test]
    fn schema_fetch_via_client() {
        let (net, _lam) = setup();
        let client = LamClient::connect(&net, "site1", "avis", TEST_TIMEOUT).unwrap();
        let tables = client.fetch_schema().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "cars");
    }

    #[test]
    fn factory_builds_working_service() {
        let (net, _lam) = setup();
        let factory = LamFactory::new(net.clone(), TEST_TIMEOUT);
        let mut svc = factory.connect("avis", "site1").unwrap();
        let task = dol::TaskDef {
            name: "Q".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        assert_eq!(svc.execute_task(&task).status, TaskStatus::Committed);
        assert!(factory.connect("avis", "ghost_site").is_err());
    }

    #[test]
    fn lenient_factory_degrades_unreachable_service_to_error_tasks() {
        let (net, _lam) = setup();
        let mut factory = LamFactory::new(net.clone(), TEST_TIMEOUT);
        factory.tolerate_unreachable = true;
        let mut svc = factory.connect("void", "ghost_site").unwrap();
        let task = dol::TaskDef {
            name: "NV".into(),
            service: "v".into(),
            nocommit: false,
            commands: vec!["SELECT 1".into()],
            compensation: vec![],
        };
        let exec = svc.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Error);
        assert!(exec.error.unwrap().contains("unreachable"));
        assert!(svc.commit_task("NV").is_ok(), "no-op on a task that never ran");
        let stats = factory.stats.lock();
        assert_eq!(stats.terminal_faults, 1);
        assert_eq!(stats.task("NV").unwrap().fault, Some(netsim::FaultKind::Terminal));
    }

    #[test]
    fn retry_recovers_from_forced_request_drop() {
        let net = Network::with_seed(11);
        let (net, _lam) = setup_on(net);
        let stats = shared_stats();
        let client = LamClient::connect_with(
            &net,
            "site1",
            "avis",
            Duration::from_millis(100),
            RetryPolicy::retries(4),
            SharedExecStats::clone(&stats),
        )
        .unwrap();
        // The next client→LAM message is lost; the retry must succeed.
        net.drop_next(client.endpoint.name(), "site1", 1);
        let resp = client.call(Request::Ping).unwrap();
        assert_eq!(resp, Response::Ok);
        let s = stats.lock();
        assert_eq!(s.retries, 1, "exactly one resend");
        assert_eq!(s.transient_faults, 1);
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn retry_recovers_from_lost_reply_without_reexecuting() {
        let net = Network::with_seed(12);
        let (net, lam) = setup_on(net);
        let client = LamClient::connect_with(
            &net,
            "site1",
            "avis",
            Duration::from_millis(100),
            RetryPolicy::retries(4),
            shared_stats(),
        )
        .unwrap();
        // The LAM's *reply* is lost: the update commits locally, the ack
        // does not arrive. Without a re-ask this misreports an abort.
        net.drop_next("site1", client.endpoint.name(), 1);
        let resp = client
            .call(Request::Task {
                name: "T1".into(),
                mode: TaskMode::Auto,
                database: "avis".into(),
                commands: vec!["UPDATE cars SET rate = rate + 1 WHERE code = 1".into()],
            })
            .unwrap();
        assert!(
            matches!(resp, Response::TaskDone { status: 'C', affected: 1, .. }),
            "re-ask reports the commit: {resp:?}"
        );
        // Dedup at the server: the update ran once, not twice.
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(41.0));
    }

    #[test]
    fn no_retry_policy_fails_on_drop() {
        let net = Network::with_seed(13);
        let (net, _lam) = setup_on(net);
        let client = LamClient::connect(&net, "site1", "avis", Duration::from_millis(50)).unwrap();
        net.drop_next(client.endpoint.name(), "site1", 1);
        let err = client.call(Request::Ping).unwrap_err();
        assert!(matches!(err, MdbsError::Net(_)), "single attempt times out: {err:?}");
    }

    #[test]
    fn lost_commit_acks_surface_in_doubt() {
        let net = Network::with_seed(14);
        let (net, lam) = setup_on(net);
        let mut client = LamClient::connect_with(
            &net,
            "site1",
            "avis",
            Duration::from_millis(50),
            RetryPolicy::retries(3),
            shared_stats(),
        )
        .unwrap();
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: true,
            commands: vec!["UPDATE cars SET rate = 60 WHERE code = 1".into()],
            compensation: vec![],
        };
        assert_eq!(client.execute_task(&task).status, TaskStatus::Prepared);
        // Every commit acknowledgement is lost; the commit itself lands.
        net.set_link_drop_probability("site1", client.endpoint.name(), 1.0);
        let err = client.commit_task("T1").unwrap_err();
        assert!(
            matches!(err, DolError::InDoubt { ref service, ref task }
                if service == "site1" && task == "T1"),
            "expected InDoubt, got {err:?}"
        );
        // Mapped across the DOL boundary with the variant intact.
        let mdbs: MdbsError = err.into();
        assert!(matches!(mdbs, MdbsError::InDoubt { ref site, ref task }
            if site == "site1" && task == "T1"));
        // The LAM really did commit — recovery's re-ask would find 'C'.
        net.set_link_drop_probability("site1", client.endpoint.name(), 0.0);
        assert_eq!(client.resolve_task_outcome("T1", true, &Span::disabled()).unwrap(), 'C');
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(60.0));
    }

    #[test]
    fn dead_lam_commit_is_not_in_doubt() {
        let (net, lam) = setup();
        let mut client = LamClient::connect(&net, "site1", "avis", TEST_TIMEOUT).unwrap();
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: true,
            commands: vec!["UPDATE cars SET rate = 70 WHERE code = 1".into()],
            compensation: vec![],
        };
        assert_eq!(client.execute_task(&task).status, TaskStatus::Prepared);
        lam.shutdown();
        let err = client.commit_task("T1").unwrap_err();
        assert!(
            matches!(err, DolError::Service(ref m) if m.contains("unavailable")),
            "terminal fault is a plain service error, got {err:?}"
        );
    }

    #[test]
    fn dead_lam_yields_lam_unavailable_not_timeout() {
        let (net, lam) = setup();
        let client = LamClient::connect(&net, "site1", "avis", TEST_TIMEOUT).unwrap();
        lam.shutdown(); // deregisters the site
        let start = Instant::now();
        let err = client.call(Request::Ping).unwrap_err();
        assert!(
            matches!(err, MdbsError::LamUnavailable { ref site } if site == "site1"),
            "expected LamUnavailable, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "terminal faults fail fast, no timeout wait"
        );
    }
}
