//! Local Access Managers — the client side.
//!
//! A [`LamClient`] is one open connection from the DOL engine to a remote
//! LAM: it implements [`dol::DolService`] by shipping [`crate::proto`]
//! requests over the simulated network, and adds the data-flow operations
//! the executor needs (schema fetch, partial-result loading at the
//! coordinator).

use crate::error::MdbsError;
use crate::proto::{Request, Response, TaskMode};
use dol::{DolError, DolService, ServiceFactory};
use dol::engine::TaskExecution;
use dol::TaskStatus;
use netsim::{Endpoint, Network};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Packs a task's affected-row count and optional result payload into the
/// single result string [`dol::engine::TaskExecution`] carries.
pub fn encode_task_result(affected: u64, payload: Option<&str>) -> String {
    match payload {
        Some(p) => format!("AFFECTED {affected}\n{p}"),
        None => format!("AFFECTED {affected}\n"),
    }
}

/// Reverses [`encode_task_result`]; returns `(affected, payload)`.
pub fn decode_task_result(result: &str) -> Result<(u64, Option<String>), MdbsError> {
    let (header, payload) = result
        .split_once('\n')
        .ok_or_else(|| MdbsError::Wire("missing task result header".into()))?;
    let affected = header
        .strip_prefix("AFFECTED ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| MdbsError::Wire(format!("bad task result header `{header}`")))?;
    let payload = if payload.is_empty() { None } else { Some(payload.to_string()) };
    Ok((affected, payload))
}

/// One connection to a LAM, bound to a database on that service.
pub struct LamClient {
    endpoint: Endpoint,
    net: Network,
    site: String,
    /// The database this connection is opened on.
    pub database: String,
    timeout: Duration,
}

impl LamClient {
    /// Opens a connection: registers a unique client endpoint and pings the
    /// LAM to verify it is reachable.
    pub fn connect(
        net: &Network,
        site: &str,
        database: &str,
        timeout: Duration,
    ) -> Result<Self, MdbsError> {
        let name = format!("__cli_{}_{}", site, CLIENT_SEQ.fetch_add(1, Ordering::Relaxed));
        let endpoint = net.register(&name)?;
        let client = LamClient {
            endpoint,
            net: net.clone(),
            site: site.to_string(),
            database: database.to_string(),
            timeout,
        };
        match client.call(Request::Ping)? {
            Response::Ok => Ok(client),
            other => Err(MdbsError::Net(format!("unexpected ping reply: {other:?}"))),
        }
    }

    /// Sends one request and waits for its response.
    pub fn call(&self, req: Request) -> Result<Response, MdbsError> {
        self.endpoint.send(&self.site, req.encode())?;
        let msg = self.endpoint.recv_timeout(self.timeout)?;
        Response::decode(&msg.body)
    }


    /// Opens a persistent local transaction under `name` (deferred global
    /// transactions).
    pub fn begin_task(&self, name: &str) -> Result<(), MdbsError> {
        match self.call(Request::Begin { name: name.to_string(), database: self.database.clone() })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected begin reply: {other:?}"))),
        }
    }

    /// Executes commands inside an open task. Returns `(status, affected,
    /// error)` where status `'E'` means still active and `'A'` means the
    /// statement failed (the transaction stays open).
    pub fn exec_in_task(
        &self,
        task: &str,
        commands: Vec<String>,
    ) -> Result<(char, u64, Option<String>), MdbsError> {
        match self.call(Request::Exec { task: task.to_string(), commands })? {
            Response::TaskDone { status, affected, error, .. } => Ok((status, affected, error)),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected exec reply: {other:?}"))),
        }
    }

    /// Moves an open task to prepared-to-commit. Returns `'P'` on success or
    /// `'A'` (with the error) when the vote failed and the local transaction
    /// was rolled back.
    pub fn prepare_task(&self, task: &str) -> Result<(char, Option<String>), MdbsError> {
        match self.call(Request::Prepare { task: task.to_string() })? {
            Response::TaskDone { status, error, .. } => Ok((status, error)),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected prepare reply: {other:?}"))),
        }
    }

    /// Fetches the public Local Conceptual Schema of this connection's
    /// database (for IMPORT).
    pub fn fetch_schema(&self) -> Result<Vec<catalog::GddTable>, MdbsError> {
        match self.call(Request::Schema { database: self.database.clone() })? {
            Response::OkPayload { payload } => crate::wire::decode_schema(&payload),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected schema reply: {other:?}"))),
        }
    }

    /// Loads a serialized partial result as a temporary table (coordinator
    /// collection).
    pub fn load_partial(&self, table: &str, payload: &str) -> Result<(), MdbsError> {
        match self.call(Request::Load {
            database: self.database.clone(),
            table: table.to_string(),
            payload: payload.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected load reply: {other:?}"))),
        }
    }

    /// Drops a temporary table.
    pub fn drop_temp(&self, table: &str) -> Result<(), MdbsError> {
        match self.call(Request::DropTemp {
            database: self.database.clone(),
            table: table.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => {
                Err(MdbsError::Local { service: self.site.clone(), message })
            }
            other => Err(MdbsError::Wire(format!("unexpected drop reply: {other:?}"))),
        }
    }
}

impl Drop for LamClient {
    fn drop(&mut self) {
        self.net.deregister(self.endpoint.name());
    }
}

impl DolService for LamClient {
    fn execute_task(&mut self, task: &dol::TaskDef) -> TaskExecution {
        let mode = if task.nocommit { TaskMode::NoCommit } else { TaskMode::Auto };
        let req = Request::Task {
            name: task.name.clone(),
            mode,
            database: self.database.clone(),
            commands: task.commands.clone(),
        };
        match self.call(req) {
            Ok(Response::TaskDone { status, affected, payload, error }) => {
                let status = match status {
                    'P' => TaskStatus::Prepared,
                    'C' => TaskStatus::Committed,
                    'A' => TaskStatus::Aborted,
                    _ => TaskStatus::Error,
                };
                TaskExecution {
                    status,
                    result: Some(encode_task_result(affected, payload.as_deref())),
                    error,
                }
            }
            Ok(other) => TaskExecution {
                status: TaskStatus::Error,
                result: None,
                error: Some(format!("unexpected reply: {other:?}")),
            },
            // Timeouts and partitions surface as errors — the global plan
            // treats them like local aborts (paper §3.2: "one or more LDBMSs
            // may be forced to abort").
            Err(e) => TaskExecution {
                status: TaskStatus::Error,
                result: None,
                error: Some(e.to_string()),
            },
        }
    }

    fn commit_task(&mut self, task_name: &str) -> Result<(), DolError> {
        match self.call(Request::Commit { task: task_name.to_string() }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Err { message }) => Err(DolError::Service(message)),
            Ok(other) => Err(DolError::Service(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(DolError::Service(e.to_string())),
        }
    }

    fn abort_task(&mut self, task_name: &str) -> Result<(), DolError> {
        match self.call(Request::Abort { task: task_name.to_string() }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Err { message }) => Err(DolError::Service(message)),
            Ok(other) => Err(DolError::Service(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(DolError::Service(e.to_string())),
        }
    }

    fn compensate_task(&mut self, task: &dol::TaskDef) -> Result<(), DolError> {
        match self.call(Request::Compensate {
            task: task.name.clone(),
            database: self.database.clone(),
            commands: task.compensation.clone(),
        }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Err { message }) => Err(DolError::Service(message)),
            Ok(other) => Err(DolError::Service(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(DolError::Service(e.to_string())),
        }
    }

    fn close(&mut self) {
        // Connection teardown happens in Drop (endpoint deregistration).
    }
}

/// [`ServiceFactory`] for DOL programs: `OPEN <database> AT <site>` becomes
/// a [`LamClient`] bound to that database.
pub struct LamFactory {
    /// The shared network.
    pub net: Network,
    /// Per-request timeout.
    pub timeout: Duration,
}

impl ServiceFactory for LamFactory {
    fn connect(&self, service: &str, site: &str) -> Result<Box<dyn DolService>, DolError> {
        let client = LamClient::connect(&self.net, site, service, self.timeout).map_err(|e| {
            DolError::OpenFailed { service: service.to_string(), reason: e.to_string() }
        })?;
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lam::spawn_lam;
    use ldbs::profile::DbmsProfile;
    use ldbs::Engine;

    fn setup() -> (Network, crate::lam::LamHandle) {
        let net = Network::new();
        let mut engine = Engine::new("svc", DbmsProfile::oracle_like());
        engine.create_database("avis").unwrap();
        engine.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT)").unwrap();
        engine.execute("avis", "INSERT INTO cars VALUES (1, 40.0)").unwrap();
        let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();
        (net, lam)
    }

    #[test]
    fn task_result_roundtrip() {
        let enc = encode_task_result(5, Some("COLS x:int\nR I:1\n"));
        let (affected, payload) = decode_task_result(&enc).unwrap();
        assert_eq!(affected, 5);
        assert!(payload.unwrap().starts_with("COLS"));
        let (a2, p2) = decode_task_result(&encode_task_result(0, None)).unwrap();
        assert_eq!(a2, 0);
        assert!(p2.is_none());
    }

    #[test]
    fn client_executes_select_task() {
        let (net, _lam) = setup();
        let mut client =
            LamClient::connect(&net, "site1", "avis", Duration::from_secs(5)).unwrap();
        let task = dol::TaskDef {
            name: "Q1".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Committed);
        let (_, payload) = decode_task_result(&exec.result.unwrap()).unwrap();
        let rs = crate::wire::decode_result_set(&payload.unwrap()).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn client_prepare_commit_cycle() {
        let (net, lam) = setup();
        let mut client =
            LamClient::connect(&net, "site1", "avis", Duration::from_secs(5)).unwrap();
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: true,
            commands: vec!["UPDATE cars SET rate = 50 WHERE code = 1".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Prepared);
        client.commit_task("T1").unwrap();
        let rate = {
            let mut e = lam.engine.lock();
            e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
                .unwrap()
                .into_result_set()
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(rate, ldbs::value::Value::Float(50.0));
    }

    #[test]
    fn connect_to_missing_site_fails() {
        let net = Network::new();
        assert!(LamClient::connect(&net, "nowhere", "db", Duration::from_millis(100)).is_err());
    }

    #[test]
    fn partitioned_site_yields_error_status() {
        let (net, _lam) = setup();
        let mut client =
            LamClient::connect(&net, "site1", "avis", Duration::from_millis(200)).unwrap();
        net.partition(client.endpoint.name(), "site1");
        let task = dol::TaskDef {
            name: "T1".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        let exec = client.execute_task(&task);
        assert_eq!(exec.status, TaskStatus::Error);
        assert!(exec.error.unwrap().contains("partition"));
    }

    #[test]
    fn schema_fetch_via_client() {
        let (net, _lam) = setup();
        let client = LamClient::connect(&net, "site1", "avis", Duration::from_secs(5)).unwrap();
        let tables = client.fetch_schema().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "cars");
    }

    #[test]
    fn factory_builds_working_service() {
        let (net, _lam) = setup();
        let factory = LamFactory { net: net.clone(), timeout: Duration::from_secs(5) };
        let mut svc = factory.connect("avis", "site1").unwrap();
        let task = dol::TaskDef {
            name: "Q".into(),
            service: "a".into(),
            nocommit: false,
            commands: vec!["SELECT code FROM cars".into()],
            compensation: vec![],
        };
        assert_eq!(svc.execute_task(&task).status, TaskStatus::Committed);
        assert!(factory.connect("avis", "ghost_site").is_err());
    }
}
