//! # mdbs — Execution of Extended Multidatabase SQL
//!
//! The primary contribution of Suardi, Rusinkiewicz & Litwin (ICDE 1993),
//! reproduced in Rust: a loosely coupled federated database system that
//! executes **extended MSQL** against autonomous, heterogeneous local
//! database systems.
//!
//! ## Architecture (paper Figure 1)
//!
//! ```text
//!            MSQL text
//!               │
//!        ┌──────▼──────┐   translate: substitution → disambiguation →
//!        │  TRANSLATOR │   decomposition → DOL plan generation
//!        └──────┬──────┘
//!               │ DOL program
//!        ┌──────▼──────┐
//!        │ DOL ENGINE  │   (crate `dol`)
//!        └┬─────┬─────┬┘
//!     ────▼─────▼─────▼────  simulated network (crate `netsim`)
//!      ┌────┐ ┌────┐ ┌────┐
//!      │LAM1│ │LAM2│ │LAM3│  Local Access Managers (this crate)
//!      └─┬──┘ └─┬──┘ └─┬──┘
//!      ┌─▼──┐ ┌─▼──┐ ┌─▼──┐
//!      │ora.│ │ing.│ │syb.│  local DBMS engines (crate `ldbs`)
//!      └────┘ └────┘ └────┘
//! ```
//!
//! ## What the crate implements
//!
//! * [`federation::Federation`] — the public facade: incorporate services,
//!   import schemas, run MSQL text, inspect outcomes;
//! * [`translate`] — the §4.3 pipeline: multiple-identifier substitution
//!   ([`translate::expand`]), disambiguation
//!   ([`translate::disambiguate`]), query-graph decomposition
//!   ([`translate::decompose`]) and DOL plan generation
//!   ([`translate::plangen`]) with the §3.2 VITAL semantics, §3.3
//!   compensation and §3.4 multitransactions;
//! * [`lam`] / [`lamclient`] — Local Access Managers: server threads wrapping
//!   an [`ldbs::Engine`] behind the simulated network, and the client side
//!   implementing [`dol::DolService`];
//! * [`multitable`] — the multitable result type (a *set* of tables, one per
//!   database, as §2 defines) and its wire format;
//! * [`mtx`] — acceptable-termination-state evaluation for
//!   multitransactions;
//! * [`fixtures`] — the paper's appendix schemas (continental / delta /
//!   united / avis / national) with seed data, shared by tests, examples and
//!   benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use mdbs::fixtures;
//!
//! // Build the paper's five-database federation (3 airlines, 2 car rentals).
//! let mut fed = fixtures::paper_federation();
//!
//! // The §2 example: one multiple query spanning avis and national.
//! let outcome = fed
//!     .execute(
//!         "USE avis national
//!          LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
//!          SELECT %code, type, ~rate FROM car WHERE status = 'available'",
//!     )
//!     .unwrap();
//! let mt = outcome.into_multitable().unwrap();
//! assert_eq!(mt.tables.len(), 2); // a multitable: one table per database
//! ```

pub mod codec;
pub mod error;
pub mod executor;
pub mod federation;
pub mod fixtures;
pub mod gtxn;
pub mod lam;
pub mod lamclient;
pub mod merge;
pub mod mtx;
pub mod multitable;
pub mod planner;
pub mod proto;
pub mod retcode;
pub mod retry;
pub mod scope;
pub mod translate;
pub mod wal;
pub mod wire;

pub use codec::WireFormat;
pub use error::MdbsError;
pub use executor::{DbOutcome, MsqlOutcome, MtxReport, UpdateReport};
pub use federation::{Federation, FederationCore, RecoveredMtx, RecoveryReport, Session};
pub use multitable::Multitable;
pub use planner::PlannerContext;
pub use retry::{ExecStats, RetryPolicy, TaskTelemetry};
pub use scope::SessionScope;
pub use wal::{CrashPlan, CrashWhen, Wal};
