//! Coordinator-free merge of pushed-down partial results.
//!
//! The site queries of a [`PushdownPlan`] pre-reduce their data — per-group
//! partial aggregate states, or per-site top-k prefixes — and this module
//! reassembles the exact global answer at the MDBS layer, replacing the
//! classic collect-at-a-coordinator phase:
//!
//! * [`merge_aggregate`] hash-joins the sites' groups on their join-key
//!   values and combines decomposable states (Yan-Larson eager aggregation):
//!   counts and sums scale by the other side's group cardinality, min/max
//!   fold, and AVG stays an exact (sum, count) pair until the end.
//! * [`merge_topk`] forms the ≤ k×k candidate pairings of the sites' top-k
//!   prefixes, sorts them by the global ORDER BY and keeps the top k.
//!
//! Both merges are deterministic: groups emit in total-order sorted key
//! sequence and the top-k sort is stable over a deterministic enumeration,
//! so double runs are byte-identical.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::error::MdbsError;
use crate::translate::{AggKind, AggOutput, AggPushdown, TopKPushdown};
use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::value::{CanonicalKey, DataType, Value};
use msql_lang::SortOrder;

/// A group-key tuple ordered by [`Value::total_cmp`], so `BTreeMap` emission
/// is the deterministic NULLs-first total order ldbs sorting uses.
#[derive(Debug, Clone)]
struct KeyTuple(Vec<Value>);

impl PartialEq for KeyTuple {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for KeyTuple {}
impl PartialOrd for KeyTuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyTuple {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.total_cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// Running state of one merged group: one accumulator per plan aggregate.
struct GroupAcc {
    counts: Vec<i64>,
    sums: Vec<Value>,
    saw_sum: Vec<bool>,
    extremes: Vec<Option<Value>>,
}

impl GroupAcc {
    fn new(n: usize) -> GroupAcc {
        GroupAcc {
            counts: vec![0; n],
            sums: vec![Value::Int(0); n],
            saw_sum: vec![false; n],
            extremes: vec![None; n],
        }
    }
}

fn column_index(rs: &ResultSet, col: &str, what: &str) -> Result<usize, MdbsError> {
    rs.column_index(col)
        .ok_or_else(|| MdbsError::Wire(format!("pushed {what} partial lacks column `{col}`")))
}

fn int_value(v: &Value, what: &str) -> Result<i64, MdbsError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => {
            Err(MdbsError::Wire(format!("pushed partial {what} is not an integer: {other:?}")))
        }
    }
}

/// One site's partial, re-indexed for the merge: per-row join-key values and
/// the rows bucketed by their canonical join key. Rows whose join key has a
/// NULL (or NaN) component are dropped — SQL equality never matches them.
struct SiteIndex {
    join_idx: Vec<usize>,
    buckets: HashMap<Vec<CanonicalKey>, Vec<usize>>,
}

fn index_site(rs: &ResultSet, join_cols: &[String]) -> Result<SiteIndex, MdbsError> {
    let join_idx = join_cols
        .iter()
        .map(|c| column_index(rs, c, "aggregate"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut buckets: HashMap<Vec<CanonicalKey>, Vec<usize>> = HashMap::new();
    'rows: for (ri, row) in rs.rows.iter().enumerate() {
        let mut key = Vec::with_capacity(join_idx.len());
        for &ci in &join_idx {
            match row[ci].canonical_key() {
                Some(k) => key.push(k),
                None => continue 'rows,
            }
        }
        buckets.entry(key).or_default().push(ri);
    }
    Ok(SiteIndex { join_idx, buckets })
}

/// Merges two sites' pre-aggregated partials into the global result set.
/// `parts` is aligned with `plan.sites`.
pub fn merge_aggregate(plan: &AggPushdown, parts: &[ResultSet]) -> Result<ResultSet, MdbsError> {
    assert_eq!(parts.len(), 2, "aggregate pushdown is planned for exactly two sites");
    assert_eq!(plan.sites.len(), 2);

    // Resolve every shipped column the merge reads.
    let cnt_idx: Vec<usize> = plan
        .sites
        .iter()
        .zip(parts)
        .map(|(s, rs)| column_index(rs, &s.count_col, "aggregate"))
        .collect::<Result<_, _>>()?;
    // slot → (site, column index) for the group keys.
    let mut slot_src: Vec<Option<(usize, usize)>> = vec![None; plan.slots];
    for (si, (site, rs)) in plan.sites.iter().zip(parts).enumerate() {
        for (slot, alias) in &site.key_cols {
            slot_src[*slot] = Some((si, column_index(rs, alias, "aggregate")?));
        }
    }
    let slot_src: Vec<(usize, usize)> = slot_src
        .into_iter()
        .collect::<Option<_>>()
        .ok_or_else(|| MdbsError::Wire("aggregate pushdown plan lost a group key".to_string()))?;
    // Per aggregate: indices of its partial-state columns at its owner site.
    let mut agg_cols: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(plan.aggs.len());
    for a in &plan.aggs {
        let rs = &parts[a.site];
        let value = a.value_col.as_deref().map(|c| column_index(rs, c, "aggregate")).transpose()?;
        let count = a.count_col.as_deref().map(|c| column_index(rs, c, "aggregate")).transpose()?;
        agg_cols.push((value, count));
    }

    let left = index_site(&parts[0], &plan.sites[0].join_cols)?;
    let right = index_site(&parts[1], &plan.sites[1].join_cols)?;

    let mut groups: std::collections::BTreeMap<KeyTuple, GroupAcc> =
        std::collections::BTreeMap::new();
    for (key, lrows) in &left.buckets {
        let Some(rrows) = right.buckets.get(key) else { continue };
        for &li in lrows {
            let lrow = &parts[0].rows[li];
            for &rj in rrows {
                let rrow = &parts[1].rows[rj];
                // The canonical key already agrees with SQL equality; this
                // recheck guards the one place they could drift (distinct
                // huge integers folding to the same f64).
                let equal = left
                    .join_idx
                    .iter()
                    .zip(&right.join_idx)
                    .all(|(&lc, &rc)| lrow[lc].sql_cmp(&rrow[rc]) == Some(Ordering::Equal));
                if !equal {
                    continue;
                }
                let row_of = |site: usize| if site == 0 { lrow } else { rrow };
                let cnt = [
                    int_value(&lrow[cnt_idx[0]], "group count")?,
                    int_value(&rrow[cnt_idx[1]], "group count")?,
                ];
                let gkey =
                    KeyTuple(slot_src.iter().map(|&(si, ci)| row_of(si)[ci].clone()).collect());
                let acc = groups.entry(gkey).or_insert_with(|| GroupAcc::new(plan.aggs.len()));
                for (ai, (a, &(vi, qi))) in plan.aggs.iter().zip(&agg_cols).enumerate() {
                    let other = cnt[1 - a.site];
                    match a.kind {
                        AggKind::CountStar => acc.counts[ai] += cnt[0] * cnt[1],
                        AggKind::Count => {
                            let c = int_value(&row_of(a.site)[qi.unwrap()], "partial count")?;
                            acc.counts[ai] += c * other;
                        }
                        AggKind::Sum | AggKind::Avg => {
                            let v = &row_of(a.site)[vi.unwrap()];
                            if !v.is_null() {
                                // This group's rows appear `other` times in
                                // the join, so its partial sum scales.
                                acc.sums[ai] = v
                                    .mul(&Value::Int(other))
                                    .and_then(|scaled| acc.sums[ai].add(&scaled))
                                    .map_err(|e| {
                                        MdbsError::Wire(format!("pushed partial sum: {e}"))
                                    })?;
                                acc.saw_sum[ai] = true;
                            }
                            if a.kind == AggKind::Avg {
                                let c = int_value(&row_of(a.site)[qi.unwrap()], "partial count")?;
                                acc.counts[ai] += c * other;
                            }
                        }
                        AggKind::Min => {
                            let v = &row_of(a.site)[vi.unwrap()];
                            if !v.is_null() {
                                acc.extremes[ai] = Some(match acc.extremes[ai].take() {
                                    Some(cur) => {
                                        if v.total_cmp(&cur) == Ordering::Less {
                                            v.clone()
                                        } else {
                                            cur
                                        }
                                    }
                                    None => v.clone(),
                                });
                            }
                        }
                        AggKind::Max => {
                            let v = &row_of(a.site)[vi.unwrap()];
                            if !v.is_null() {
                                acc.extremes[ai] = Some(match acc.extremes[ai].take() {
                                    Some(cur) => {
                                        if v.total_cmp(&cur) == Ordering::Greater {
                                            v.clone()
                                        } else {
                                            cur
                                        }
                                    }
                                    None => v.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Output column metadata mirrors what the unpushed global query yields.
    let mut columns = Vec::with_capacity(plan.output.len());
    for out in &plan.output {
        let (name, data_type) = match out {
            AggOutput::Key { slot, name } => {
                let (si, ci) = slot_src[*slot];
                (name.clone(), parts[si].columns[ci].data_type)
            }
            AggOutput::Agg { agg, name } => {
                let a = &plan.aggs[*agg];
                let dt = match a.kind {
                    AggKind::CountStar | AggKind::Count => DataType::Int,
                    AggKind::Avg => DataType::Float,
                    AggKind::Sum | AggKind::Min | AggKind::Max => {
                        let (vi, _) = agg_cols[*agg];
                        parts[a.site].columns[vi.unwrap()].data_type
                    }
                };
                (name.clone(), dt)
            }
        };
        columns.push(ColumnMeta { name, data_type });
    }

    let emit = |key: &KeyTuple, acc: &GroupAcc| -> Vec<Value> {
        plan.output
            .iter()
            .map(|out| match out {
                AggOutput::Key { slot, .. } => key.0[*slot].clone(),
                AggOutput::Agg { agg, .. } => {
                    let a = &plan.aggs[*agg];
                    match a.kind {
                        AggKind::CountStar | AggKind::Count => Value::Int(acc.counts[*agg]),
                        AggKind::Sum => {
                            if acc.saw_sum[*agg] {
                                acc.sums[*agg].clone()
                            } else {
                                Value::Null
                            }
                        }
                        AggKind::Avg => {
                            if acc.saw_sum[*agg] && acc.counts[*agg] > 0 {
                                acc.sums[*agg]
                                    .div(&Value::Int(acc.counts[*agg]))
                                    .unwrap_or(Value::Null)
                            } else {
                                Value::Null
                            }
                        }
                        AggKind::Min | AggKind::Max => {
                            acc.extremes[*agg].clone().unwrap_or(Value::Null)
                        }
                    }
                }
            })
            .collect()
    };

    let mut rows: Vec<Vec<Value>> = groups.iter().map(|(k, acc)| emit(k, acc)).collect();
    // A grand total (no GROUP BY) over an empty join still yields one row,
    // exactly as the engine's aggregate path does.
    if rows.is_empty() && plan.slots == 0 {
        let empty = GroupAcc::new(plan.aggs.len());
        rows.push(emit(&KeyTuple(Vec::new()), &empty));
    }
    sort_output(&mut rows, &plan.order_by);
    if let Some(n) = plan.limit {
        rows.truncate(n as usize);
    }
    Ok(ResultSet { columns, rows })
}

/// Stable sort of merged output rows by `(output index, direction)` keys,
/// using the same NULLs-first total order the engine's ORDER BY uses.
fn sort_output(rows: &mut [Vec<Value>], order_by: &[(usize, SortOrder)]) {
    if order_by.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for (idx, order) in order_by {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = match order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

/// Merges two sites' top-k prefixes into the global top k. `parts` is
/// aligned with `plan.sites`.
pub fn merge_topk(plan: &TopKPushdown, parts: &[ResultSet]) -> Result<ResultSet, MdbsError> {
    assert_eq!(parts.len(), 2, "top-k pushdown is planned for exactly two sites");
    let out_idx: Vec<(usize, usize)> = plan
        .output
        .iter()
        .map(|(si, col, _)| Ok((*si, column_index(&parts[*si], col, "top-k")?)))
        .collect::<Result<_, MdbsError>>()?;
    let ord_idx: Vec<(usize, usize, SortOrder)> = plan
        .order_by
        .iter()
        .map(|o| Ok((o.site, column_index(&parts[o.site], &o.col, "top-k")?, o.order)))
        .collect::<Result<_, MdbsError>>()?;

    // Candidate pairings in deterministic (i, j) enumeration order; the
    // stable sort then yields one total order for every run.
    let mut cand: Vec<(usize, usize)> = Vec::new();
    for i in 0..parts[0].rows.len() {
        for j in 0..parts[1].rows.len() {
            cand.push((i, j));
        }
    }
    let value_at = |(i, j): (usize, usize), si: usize, ci: usize| -> &Value {
        if si == 0 {
            &parts[0].rows[i][ci]
        } else {
            &parts[1].rows[j][ci]
        }
    };
    cand.sort_by(|&a, &b| {
        for &(si, ci, order) in &ord_idx {
            let ord = value_at(a, si, ci).total_cmp(value_at(b, si, ci));
            let ord = match order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    cand.truncate(plan.limit as usize);

    let columns = plan
        .output
        .iter()
        .zip(&out_idx)
        .map(|((_, _, name), &(si, ci))| ColumnMeta {
            name: name.clone(),
            data_type: parts[si].columns[ci].data_type,
        })
        .collect();
    let rows = cand
        .into_iter()
        .map(|pair| out_idx.iter().map(|&(si, ci)| value_at(pair, si, ci).clone()).collect())
        .collect();
    Ok(ResultSet { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{AggSite, AggState, TopKOrder, TopKSite};
    use crate::wire::encode_result_set;
    use msql_lang::Select;

    fn rs(cols: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns: cols
                .iter()
                .map(|(n, t)| ColumnMeta { name: n.to_string(), data_type: *t })
                .collect(),
            rows,
        }
    }

    fn i(v: i64) -> Value {
        Value::Int(v)
    }
    fn s(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    /// `SELECT g, COUNT(*), SUM(y) … GROUP BY g` with a join key on each
    /// side: site 0 ships (k, g, cnt), site 1 ships (k, cnt, sum y).
    fn agg_plan() -> AggPushdown {
        let dummy = Select::new();
        AggPushdown {
            sites: vec![
                AggSite {
                    select: dummy.clone(),
                    join_cols: vec!["b_a_k".into()],
                    key_cols: vec![(0, "b_a_g".into())],
                    count_col: "agg_cnt".into(),
                },
                AggSite {
                    select: dummy,
                    join_cols: vec!["b_b_k".into()],
                    key_cols: vec![],
                    count_col: "agg_cnt".into(),
                },
            ],
            slots: 1,
            aggs: vec![
                AggState { kind: AggKind::CountStar, site: 0, value_col: None, count_col: None },
                AggState {
                    kind: AggKind::Sum,
                    site: 1,
                    value_col: Some("agg1_s".into()),
                    count_col: None,
                },
            ],
            output: vec![
                AggOutput::Key { slot: 0, name: "g".into() },
                AggOutput::Agg { agg: 0, name: "count".into() },
                AggOutput::Agg { agg: 1, name: "sum".into() },
            ],
            order_by: vec![],
            limit: None,
        }
    }

    fn agg_cols0() -> Vec<(&'static str, DataType)> {
        vec![("b_a_k", DataType::Int), ("b_a_g", DataType::Char(0)), ("agg_cnt", DataType::Int)]
    }
    fn agg_cols1() -> Vec<(&'static str, DataType)> {
        vec![("b_b_k", DataType::Int), ("agg_cnt", DataType::Int), ("agg1_s", DataType::Int)]
    }

    #[test]
    fn aggregate_merge_scales_counts_and_sums() {
        let plan = agg_plan();
        // Site 0: key 1 → group x (2 rows), group y (1 row); key 2 → x (1).
        let a = rs(
            &agg_cols0(),
            vec![vec![i(1), s("x"), i(2)], vec![i(1), s("y"), i(1)], vec![i(2), s("x"), i(1)]],
        );
        // Site 1: key 1 → 3 rows summing 30; key 9 matches nothing.
        let b = rs(&agg_cols1(), vec![vec![i(1), i(3), i(30)], vec![i(9), i(5), i(100)]]);
        let out = merge_aggregate(&plan, &[a, b]).unwrap();
        // key 2 joins nothing; key 1 pairs both of site 0's groups with the
        // one matching site-1 group: COUNT(*) = cnt_a·cnt_b, SUM = s_b·cnt_a.
        assert_eq!(
            out.rows,
            vec![vec![s("x"), i(6), i(60)], vec![s("y"), i(3), i(30)]],
            "groups emit in sorted key order"
        );
    }

    #[test]
    fn aggregate_merge_skips_null_join_keys_and_defaults_grand_total() {
        let mut plan = agg_plan();
        plan.sites[0].key_cols.clear();
        plan.slots = 0;
        plan.output = vec![
            AggOutput::Agg { agg: 0, name: "count".into() },
            AggOutput::Agg { agg: 1, name: "sum".into() },
        ];
        // NULL join keys never match anything, so the join is empty — but a
        // grand total still yields one row, with COUNT 0 and SUM NULL.
        let a = rs(&agg_cols0(), vec![vec![Value::Null, s("x"), i(4)]]);
        let b = rs(&agg_cols1(), vec![vec![Value::Null, i(2), i(10)]]);
        let out = merge_aggregate(&plan, &[a, b]).unwrap();
        assert_eq!(out.rows, vec![vec![i(0), Value::Null]]);
    }

    #[test]
    fn aggregate_merge_ignores_null_partial_sums() {
        let mut plan = agg_plan();
        plan.sites[0].key_cols.clear();
        plan.slots = 0;
        plan.output = vec![AggOutput::Agg { agg: 1, name: "sum".into() }];
        let a = rs(&agg_cols0(), vec![vec![i(1), s("x"), i(2)]]);
        // One matching group whose SUM partial is NULL (all-NULL column).
        let b = rs(&agg_cols1(), vec![vec![i(1), i(3), Value::Null]]);
        let out = merge_aggregate(&plan, &[a, b]).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Null]]);
    }

    fn topk_plan(limit: u64) -> TopKPushdown {
        let dummy = Select::new();
        TopKPushdown {
            sites: vec![TopKSite { select: dummy.clone() }, TopKSite { select: dummy }],
            output: vec![(0, "b_a_x".into(), "x".into()), (1, "b_b_y".into(), "y".into())],
            order_by: vec![
                TopKOrder { site: 0, col: "b_a_x".into(), order: SortOrder::Asc },
                TopKOrder { site: 1, col: "b_b_y".into(), order: SortOrder::Desc },
            ],
            limit,
        }
    }

    fn topk_parts() -> (ResultSet, ResultSet) {
        (
            rs(&[("b_a_x", DataType::Int)], vec![vec![i(1)], vec![i(1)], vec![i(2)]]),
            rs(&[("b_b_y", DataType::Int)], vec![vec![i(10)], vec![i(20)]]),
        )
    }

    #[test]
    fn topk_merge_orders_ties_across_sites_deterministically() {
        // Two site-0 rows tie on x=1; the secondary DESC key and the stable
        // (i, j) enumeration pin one total order.
        let (a, b) = topk_parts();
        let out = merge_topk(&topk_plan(4), &[a, b]).unwrap();
        assert_eq!(
            out.rows,
            vec![vec![i(1), i(20)], vec![i(1), i(20)], vec![i(1), i(10)], vec![i(1), i(10)],]
        );
    }

    #[test]
    fn topk_merge_limit_zero_is_empty() {
        let (a, b) = topk_parts();
        let out = merge_topk(&topk_plan(0), &[a, b]).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.columns.len(), 2, "column meta survives an empty result");
    }

    #[test]
    fn topk_merge_limit_beyond_total_returns_everything() {
        let (a, b) = topk_parts();
        let out = merge_topk(&topk_plan(100), &[a, b]).unwrap();
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn topk_merge_sorts_nulls_first() {
        let a = rs(&[("b_a_x", DataType::Int)], vec![vec![i(5)], vec![Value::Null]]);
        let b = rs(&[("b_b_y", DataType::Int)], vec![vec![i(1)]]);
        let out = merge_topk(&topk_plan(10), &[a, b]).unwrap();
        // total_cmp puts NULL before every value under ASC, like the local
        // engine's ORDER BY.
        assert_eq!(out.rows, vec![vec![Value::Null, i(1)], vec![i(5), i(1)]]);
    }

    #[test]
    fn merges_are_byte_identical_across_runs() {
        let (a, b) = topk_parts();
        let once = encode_result_set(&merge_topk(&topk_plan(3), &[a.clone(), b.clone()]).unwrap());
        let twice = encode_result_set(&merge_topk(&topk_plan(3), &[a, b]).unwrap());
        assert_eq!(once, twice);

        let plan = agg_plan();
        let a = rs(&agg_cols0(), vec![vec![i(1), s("x"), i(2)], vec![i(1), s("y"), i(1)]]);
        let b = rs(&agg_cols1(), vec![vec![i(1), i(3), i(30)]]);
        let once = encode_result_set(&merge_aggregate(&plan, &[a.clone(), b.clone()]).unwrap());
        let twice = encode_result_set(&merge_aggregate(&plan, &[a, b]).unwrap());
        assert_eq!(once, twice);
    }
}
