//! Acceptable-termination-state evaluation (paper §3.4).
//!
//! "The acceptable states will be checked in the order in which they are
//! specified ... The first acceptable state that can be reached from the
//! execution state of the four subqueries will be the final state produced
//! by the multitransaction. If neither of the acceptable states can be
//! reached the multitransaction fails and all subqueries will be rolled back
//! or compensated."
//!
//! The planner compiles this rule into nested DOL `IF`s; the functions here
//! provide the same rule as a direct computation, used by the executor to
//! cross-check DOL outcomes and by property tests as an independent oracle.

use dol::TaskStatus;
use std::collections::HashMap;

/// Is a subquery in a state from which it can still commit?
fn can_commit(status: TaskStatus) -> bool {
    matches!(status, TaskStatus::Prepared | TaskStatus::Committed)
}

/// The first acceptable state (by index) reachable from the given execution
/// statuses. `None` when no state is reachable.
pub fn reachable_state(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> Option<usize> {
    states.iter().position(|state| {
        state.iter().all(|member| statuses.get(member).copied().map(can_commit).unwrap_or(false))
    })
}

/// Verifies a *final* execution against the §3.4 contract: returns the index
/// of the acceptable state the outcome realises, or `None` if the outcome
/// realises no acceptable state (every subquery must then be rolled back or
/// compensated).
pub fn realised_state(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> Option<usize> {
    states.iter().position(|state| {
        let members_committed =
            state.iter().all(|m| statuses.get(m).copied() == Some(TaskStatus::Committed));
        let others_undone = statuses.iter().all(|(key, status)| {
            state.contains(key)
                || matches!(
                    status,
                    TaskStatus::Aborted | TaskStatus::Compensated | TaskStatus::Error
                )
        });
        members_committed && others_undone
    })
}

/// True when a final execution is *consistent*: it realises some acceptable
/// state, or every subquery was undone.
pub fn is_consistent_outcome(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> bool {
    if realised_state(states, statuses).is_some() {
        return true;
    }
    statuses
        .values()
        .all(|s| matches!(s, TaskStatus::Aborted | TaskStatus::Compensated | TaskStatus::Error))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn statuses(entries: &[(&str, TaskStatus)]) -> HashMap<String, TaskStatus> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn travel_states() -> Vec<Vec<String>> {
        vec![vec!["continental".into(), "national".into()], vec!["delta".into(), "avis".into()]]
    }

    #[test]
    fn preferred_state_wins_when_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Prepared),
            ("delta", TaskStatus::Prepared),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(0));
    }

    #[test]
    fn falls_back_to_second_state() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("delta", TaskStatus::Prepared),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(1));
    }

    #[test]
    fn no_state_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), None);
    }

    #[test]
    fn committed_autocommit_member_counts_as_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Committed),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Aborted),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(0));
    }

    #[test]
    fn realised_state_checks_exclusions() {
        // continental+national committed, delta/avis rolled back → state 0.
        let good = statuses(&[
            ("continental", TaskStatus::Committed),
            ("national", TaskStatus::Committed),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Compensated),
        ]);
        assert_eq!(realised_state(&travel_states(), &good), Some(0));
        assert!(is_consistent_outcome(&travel_states(), &good));

        // delta also committed → the exclusion constraint is violated.
        let bad = statuses(&[
            ("continental", TaskStatus::Committed),
            ("national", TaskStatus::Committed),
            ("delta", TaskStatus::Committed),
            ("avis", TaskStatus::Aborted),
        ]);
        assert_eq!(realised_state(&travel_states(), &bad), None);
        assert!(!is_consistent_outcome(&travel_states(), &bad));
    }

    #[test]
    fn all_undone_is_consistent_failure() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("national", TaskStatus::Aborted),
            ("delta", TaskStatus::Compensated),
            ("avis", TaskStatus::Error),
        ]);
        assert_eq!(realised_state(&travel_states(), &st), None);
        assert!(is_consistent_outcome(&travel_states(), &st));
    }

    /// Degenerate and boundary shapes of the §3.4 rule, table-driven: each
    /// case names the state list, the execution statuses, and what the three
    /// evaluators must say about them.
    #[test]
    fn edge_cases() {
        struct Case {
            name: &'static str,
            states: Vec<Vec<String>>,
            statuses: HashMap<String, TaskStatus>,
            reachable: Option<usize>,
            realised: Option<usize>,
            consistent: bool,
        }
        let cases = [
            Case {
                // No acceptable states declared: nothing is reachable, so the
                // mtx can only fail — and only an all-undone outcome is
                // consistent.
                name: "empty state list, work committed",
                states: vec![],
                statuses: statuses(&[("delta", TaskStatus::Committed)]),
                reachable: None,
                realised: None,
                consistent: false,
            },
            Case {
                name: "empty state list, all undone",
                states: vec![],
                statuses: statuses(&[("delta", TaskStatus::Aborted)]),
                reachable: None,
                realised: None,
                consistent: true,
            },
            Case {
                // An empty *member list* is vacuously satisfied: it is
                // reachable from anything, and realised exactly when every
                // other subquery is undone.
                name: "empty member list over undone work",
                states: vec![vec![]],
                statuses: statuses(&[("delta", TaskStatus::Aborted)]),
                reachable: Some(0),
                realised: Some(0),
                consistent: true,
            },
            Case {
                name: "empty member list does not excuse commits",
                states: vec![vec![]],
                statuses: statuses(&[("delta", TaskStatus::Committed)]),
                reachable: Some(0),
                realised: None,
                consistent: false,
            },
            Case {
                // Overlapping states sharing "delta": order decides, and an
                // outcome committing exactly {delta, avis} realises state 1
                // even though state 0 also contains delta.
                name: "overlapping states pick first reachable",
                states: vec![
                    vec!["delta".into(), "continental".into()],
                    vec!["delta".into(), "avis".into()],
                ],
                statuses: statuses(&[
                    ("delta", TaskStatus::Committed),
                    ("continental", TaskStatus::Aborted),
                    ("avis", TaskStatus::Committed),
                ]),
                reachable: Some(1),
                realised: Some(1),
                consistent: true,
            },
            Case {
                // A state member with no recorded status cannot commit:
                // treat missing as not-reachable, never as success.
                name: "statuses missing a state member",
                states: vec![vec!["delta".into(), "ghost".into()]],
                statuses: statuses(&[("delta", TaskStatus::Prepared)]),
                reachable: None,
                realised: None,
                consistent: false,
            },
            Case {
                // ...but a missing member only blocks its own state; the
                // fallback state is still evaluated on its merits.
                name: "missing member only blocks its own state",
                states: vec![vec!["delta".into(), "ghost".into()], vec!["avis".into()]],
                statuses: statuses(&[
                    ("delta", TaskStatus::Aborted),
                    ("avis", TaskStatus::Committed),
                ]),
                reachable: Some(1),
                realised: Some(1),
                consistent: true,
            },
            Case {
                // Prepared is reachable-from but not realised: the final
                // check demands Committed, and a still-prepared straggler
                // outside the state is neither committed nor undone.
                name: "prepared straggler blocks realisation",
                states: vec![vec!["delta".into()]],
                statuses: statuses(&[
                    ("delta", TaskStatus::Committed),
                    ("avis", TaskStatus::Prepared),
                ]),
                reachable: Some(0),
                realised: None,
                consistent: false,
            },
        ];
        for case in &cases {
            assert_eq!(
                reachable_state(&case.states, &case.statuses),
                case.reachable,
                "[{}] reachable_state",
                case.name
            );
            assert_eq!(
                realised_state(&case.states, &case.statuses),
                case.realised,
                "[{}] realised_state",
                case.name
            );
            assert_eq!(
                is_consistent_outcome(&case.states, &case.statuses),
                case.consistent,
                "[{}] is_consistent_outcome",
                case.name
            );
        }
    }
}
