//! Acceptable-termination-state evaluation (paper §3.4).
//!
//! "The acceptable states will be checked in the order in which they are
//! specified ... The first acceptable state that can be reached from the
//! execution state of the four subqueries will be the final state produced
//! by the multitransaction. If neither of the acceptable states can be
//! reached the multitransaction fails and all subqueries will be rolled back
//! or compensated."
//!
//! The planner compiles this rule into nested DOL `IF`s; the functions here
//! provide the same rule as a direct computation, used by the executor to
//! cross-check DOL outcomes and by property tests as an independent oracle.

use dol::TaskStatus;
use std::collections::HashMap;

/// Is a subquery in a state from which it can still commit?
fn can_commit(status: TaskStatus) -> bool {
    matches!(status, TaskStatus::Prepared | TaskStatus::Committed)
}

/// The first acceptable state (by index) reachable from the given execution
/// statuses. `None` when no state is reachable.
pub fn reachable_state(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> Option<usize> {
    states.iter().position(|state| {
        state.iter().all(|member| statuses.get(member).copied().map(can_commit).unwrap_or(false))
    })
}

/// Verifies a *final* execution against the §3.4 contract: returns the index
/// of the acceptable state the outcome realises, or `None` if the outcome
/// realises no acceptable state (every subquery must then be rolled back or
/// compensated).
pub fn realised_state(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> Option<usize> {
    states.iter().position(|state| {
        let members_committed =
            state.iter().all(|m| statuses.get(m).copied() == Some(TaskStatus::Committed));
        let others_undone = statuses.iter().all(|(key, status)| {
            state.contains(key)
                || matches!(
                    status,
                    TaskStatus::Aborted | TaskStatus::Compensated | TaskStatus::Error
                )
        });
        members_committed && others_undone
    })
}

/// True when a final execution is *consistent*: it realises some acceptable
/// state, or every subquery was undone.
pub fn is_consistent_outcome(
    states: &[Vec<String>],
    statuses: &HashMap<String, TaskStatus>,
) -> bool {
    if realised_state(states, statuses).is_some() {
        return true;
    }
    statuses
        .values()
        .all(|s| matches!(s, TaskStatus::Aborted | TaskStatus::Compensated | TaskStatus::Error))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn statuses(entries: &[(&str, TaskStatus)]) -> HashMap<String, TaskStatus> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn travel_states() -> Vec<Vec<String>> {
        vec![vec!["continental".into(), "national".into()], vec!["delta".into(), "avis".into()]]
    }

    #[test]
    fn preferred_state_wins_when_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Prepared),
            ("delta", TaskStatus::Prepared),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(0));
    }

    #[test]
    fn falls_back_to_second_state() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("delta", TaskStatus::Prepared),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(1));
    }

    #[test]
    fn no_state_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Prepared),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), None);
    }

    #[test]
    fn committed_autocommit_member_counts_as_reachable() {
        let st = statuses(&[
            ("continental", TaskStatus::Committed),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Aborted),
            ("national", TaskStatus::Prepared),
        ]);
        assert_eq!(reachable_state(&travel_states(), &st), Some(0));
    }

    #[test]
    fn realised_state_checks_exclusions() {
        // continental+national committed, delta/avis rolled back → state 0.
        let good = statuses(&[
            ("continental", TaskStatus::Committed),
            ("national", TaskStatus::Committed),
            ("delta", TaskStatus::Aborted),
            ("avis", TaskStatus::Compensated),
        ]);
        assert_eq!(realised_state(&travel_states(), &good), Some(0));
        assert!(is_consistent_outcome(&travel_states(), &good));

        // delta also committed → the exclusion constraint is violated.
        let bad = statuses(&[
            ("continental", TaskStatus::Committed),
            ("national", TaskStatus::Committed),
            ("delta", TaskStatus::Committed),
            ("avis", TaskStatus::Aborted),
        ]);
        assert_eq!(realised_state(&travel_states(), &bad), None);
        assert!(!is_consistent_outcome(&travel_states(), &bad));
    }

    #[test]
    fn all_undone_is_consistent_failure() {
        let st = statuses(&[
            ("continental", TaskStatus::Aborted),
            ("national", TaskStatus::Aborted),
            ("delta", TaskStatus::Compensated),
            ("avis", TaskStatus::Error),
        ]);
        assert_eq!(realised_state(&travel_states(), &st), None);
        assert!(is_consistent_outcome(&travel_states(), &st));
    }
}
