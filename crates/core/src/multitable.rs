//! Multitables — the result of a multiple query.
//!
//! §2: *"The result of this multiple query is a multitable, which is a set of
//! two tables. These two tables are generated as partial results by the
//! accessed databases."* A multitable is deliberately **not** a union: the
//! per-database tables may have different schemas (optional `~` columns) and
//! keep their provenance.

use ldbs::engine::ResultSet;
use ldbs::value::Value;
use std::fmt;

/// One member table of a multitable.
#[derive(Debug, Clone, PartialEq)]
pub struct MultitableEntry {
    /// The database that produced the table.
    pub database: String,
    /// The partial result.
    pub result: ResultSet,
}

/// A set of tables, one per database that contributed a partial result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Multitable {
    /// Member tables in scope order.
    pub tables: Vec<MultitableEntry>,
}

impl Multitable {
    /// The table produced by `database`, if any.
    pub fn table(&self, database: &str) -> Option<&ResultSet> {
        let lower = database.to_ascii_lowercase();
        self.tables.iter().find(|t| t.database == lower).map(|t| &t.result)
    }

    /// Total number of rows across all member tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.result.rows.len()).sum()
    }

    /// Number of member tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no database contributed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Column names present in *every* member table (in the first member's
    /// order) — the usable basis for multitable-level manipulation when the
    /// schemas differ (e.g. after optional `~` columns were dropped).
    pub fn common_columns(&self) -> Vec<String> {
        let Some(first) = self.tables.first() else { return Vec::new() };
        first
            .result
            .columns
            .iter()
            .map(|c| c.name.clone())
            .filter(|name| {
                self.tables.iter().all(|t| t.result.columns.iter().any(|c| &c.name == name))
            })
            .collect()
    }

    /// Projects every member onto `columns` and unions the rows, prepending
    /// a provenance column `mdb` naming the contributing database — one of
    /// MSQL's multitable manipulation functions (§2 lists "new built-in
    /// functions for aggregation and manipulation of multiple tables").
    pub fn project_union(&self, columns: &[&str]) -> Result<ResultSet, String> {
        use ldbs::engine::ColumnMeta;
        use ldbs::value::DataType;
        let mut out_columns = vec![ColumnMeta { name: "mdb".into(), data_type: DataType::Char(0) }];
        // Types from the first member that has each column.
        for want in columns {
            let meta = self
                .tables
                .iter()
                .find_map(|t| t.result.columns.iter().find(|c| c.name == *want))
                .ok_or_else(|| format!("column `{want}` is in no member table"))?;
            out_columns.push(meta.clone());
        }
        let mut rows = Vec::new();
        for entry in &self.tables {
            let mut positions = Vec::with_capacity(columns.len());
            for want in columns {
                let pos = entry.result.column_index(want).ok_or_else(|| {
                    format!("column `{want}` is missing from `{}`", entry.database)
                })?;
                positions.push(pos);
            }
            for row in &entry.result.rows {
                let mut out = Vec::with_capacity(columns.len() + 1);
                out.push(Value::Str(entry.database.clone()));
                for &p in &positions {
                    out.push(row[p].clone());
                }
                rows.push(out);
            }
        }
        Ok(ResultSet { columns: out_columns, rows })
    }

    /// Unions the member tables over their common columns, with provenance.
    pub fn union_all(&self) -> Result<ResultSet, String> {
        let common = self.common_columns();
        let refs: Vec<&str> = common.iter().map(|s| s.as_str()).collect();
        self.project_union(&refs)
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.display_raw(),
    }
}

/// Renders one result set as an ASCII table.
pub fn render_result_set(rs: &ResultSet) -> String {
    let headers: Vec<String> = rs.columns.iter().map(|c| c.name.clone()).collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let rendered_rows: Vec<Vec<String>> =
        rs.rows.iter().map(|row| row.iter().map(render_cell).collect()).collect();
    for row in &rendered_rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let rule = || {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let mut out = rule();
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&rule());
    for row in &rendered_rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&rule());
    out
}

impl fmt::Display for Multitable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.tables {
            writeln!(f, "-- {} ({} rows)", entry.database, entry.result.rows.len())?;
            write!(f, "{}", render_result_set(&entry.result))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbs::engine::ColumnMeta;
    use ldbs::value::DataType;

    fn sample() -> Multitable {
        Multitable {
            tables: vec![
                MultitableEntry {
                    database: "avis".into(),
                    result: ResultSet {
                        columns: vec![
                            ColumnMeta { name: "code".into(), data_type: DataType::Int },
                            ColumnMeta { name: "rate".into(), data_type: DataType::Float },
                        ],
                        rows: vec![vec![Value::Int(1), Value::Float(39.5)]],
                    },
                },
                MultitableEntry {
                    database: "national".into(),
                    result: ResultSet {
                        columns: vec![ColumnMeta {
                            name: "vcode".into(),
                            data_type: DataType::Int,
                        }],
                        rows: vec![vec![Value::Int(7)], vec![Value::Int(8)]],
                    },
                },
            ],
        }
    }

    #[test]
    fn lookup_and_counts() {
        let mt = sample();
        assert_eq!(mt.len(), 2);
        assert_eq!(mt.total_rows(), 3);
        assert!(mt.table("AVIS").is_some());
        assert!(mt.table("delta").is_none());
        assert!(!mt.is_empty());
    }

    #[test]
    fn member_schemas_may_differ() {
        let mt = sample();
        assert_eq!(mt.table("avis").unwrap().columns.len(), 2);
        assert_eq!(mt.table("national").unwrap().columns.len(), 1);
    }

    #[test]
    fn display_renders_each_member() {
        let text = sample().to_string();
        assert!(text.contains("-- avis (1 rows)"));
        assert!(text.contains("-- national (2 rows)"));
        assert!(text.contains("| code | rate |"));
        assert!(text.contains("| 39.5 |"));
    }

    #[test]
    fn render_handles_empty_result() {
        let rs = ResultSet { columns: vec![], rows: vec![] };
        let text = render_result_set(&rs);
        assert!(text.starts_with('+'));
    }

    fn heterogeneous() -> Multitable {
        Multitable {
            tables: vec![
                MultitableEntry {
                    database: "avis".into(),
                    result: ResultSet {
                        columns: vec![
                            ColumnMeta { name: "code".into(), data_type: DataType::Int },
                            ColumnMeta { name: "status".into(), data_type: DataType::Char(10) },
                            ColumnMeta { name: "rate".into(), data_type: DataType::Float },
                        ],
                        rows: vec![vec![
                            Value::Int(1),
                            Value::Str("free".into()),
                            Value::Float(39.5),
                        ]],
                    },
                },
                MultitableEntry {
                    database: "national".into(),
                    result: ResultSet {
                        columns: vec![
                            ColumnMeta { name: "status".into(), data_type: DataType::Char(10) },
                            ColumnMeta { name: "code".into(), data_type: DataType::Int },
                        ],
                        rows: vec![
                            vec![Value::Str("free".into()), Value::Int(7)],
                            vec![Value::Str("taken".into()), Value::Int(8)],
                        ],
                    },
                },
            ],
        }
    }

    #[test]
    fn common_columns_respect_first_member_order() {
        let mt = heterogeneous();
        assert_eq!(mt.common_columns(), vec!["code".to_string(), "status".to_string()]);
    }

    #[test]
    fn union_all_merges_with_provenance() {
        let mt = heterogeneous();
        let merged = mt.union_all().unwrap();
        assert_eq!(
            merged.columns.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["mdb", "code", "status"]
        );
        assert_eq!(merged.rows.len(), 3);
        assert_eq!(merged.rows[0][0], Value::Str("avis".into()));
        assert_eq!(
            merged.rows[1],
            vec![Value::Str("national".into()), Value::Int(7), Value::Str("free".into())]
        );
    }

    #[test]
    fn project_union_rejects_missing_columns() {
        let mt = heterogeneous();
        assert!(mt.project_union(&["rate"]).is_err()); // national lacks rate
        assert!(mt.project_union(&["ghost"]).is_err());
        assert!(mt.project_union(&["code"]).is_ok());
    }

    #[test]
    fn union_of_empty_multitable_is_empty() {
        let mt = Multitable::default();
        assert!(mt.common_columns().is_empty());
        let merged = mt.union_all().unwrap();
        assert_eq!(merged.rows.len(), 0);
        assert_eq!(merged.columns.len(), 1); // just the provenance column
    }
}
