//! Cost-based planning of cross-database joins (paper §5).
//!
//! The paper argues that multidatabase optimisation is about *data flow
//! control* — which site reduces, what crosses the wire, in what order the
//! coordinator combines partials — rather than individual database
//! operations. This module supplies the missing ingredient: per-site
//! statistics. Each LDBS collects them locally with `ANALYZE`
//! ([`ldbs::stats`]), the coordinator pulls them over the `STATS` wire
//! exchange ([`crate::wire::SiteTableStats`]) and assembles a
//! [`PlannerContext`], against which the executor estimates every decomposed
//! subquery's shipped rows and bytes.
//!
//! The estimates drive three decisions in [`crate::executor::Executor::run_cross_db`]:
//!
//! * **reducer choice** — the semi-join reducer becomes the subquery with the
//!   smallest estimated partial, not the one with the most WHERE conjuncts;
//! * **reduce-or-not, per edge** — the key set ships iff the bytes it is
//!   predicted to prune from the target's partial exceed the bytes of the key
//!   list itself, replacing the fixed [`crate::executor::DEFAULT_SEMIJOIN_CAP`];
//! * **global join order** — the modified global query's FROM list is sorted
//!   by ascending estimated partial cardinality.
//!
//! Every decision degrades independently: a database with no (or stale)
//! statistics simply contributes no estimate, and the affected decision falls
//! back to the pre-statistics heuristic, byte-for-byte.

use crate::translate::DbSubquery;
use crate::wire::SiteTableStats;
use ldbs::eval::literal_value;
use ldbs::stats::{ColumnStats, TableStats};
use ldbs::value::{CanonicalKey, Value};
use msql_lang::{BinaryOp, ColumnRef, Expr, Literal, Select, SelectItem, UnaryOp};
use std::collections::HashMap;

/// Selectivity assumed for a conjunct the estimator cannot price (an
/// arithmetic comparison, a LIKE, a subquery…).
pub const UNKNOWN_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated byte width of a column the statistics say nothing about.
const DEFAULT_COLUMN_WIDTH: f64 = 8.0;

/// Extra mutations a statistics snapshot tolerates before the planner stops
/// trusting it (slack for tiny tables, where a handful of inserts would
/// otherwise invalidate perfectly serviceable statistics).
pub const STALENESS_SLACK: u64 = 16;

/// Whether a statistics snapshot is still fresh enough to plan with: the
/// mutations since `ANALYZE` must not exceed half the analyzed row count
/// (plus [`STALENESS_SLACK`]). Beyond that the estimates are as likely to
/// mislead as the heuristics they replace.
pub fn is_fresh(s: &SiteTableStats) -> bool {
    s.dml_since <= s.stats.row_count / 2 + STALENESS_SLACK
}

/// Estimated size of one shipped partial result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Expected row count.
    pub rows: f64,
    /// Expected payload bytes (rows × estimated row width).
    pub bytes: f64,
}

/// The coordinator's statistics context for one statement: database →
/// table → snapshot, fresh snapshots only (see [`is_fresh`]).
#[derive(Debug, Clone, Default)]
pub struct PlannerContext {
    tables: HashMap<String, HashMap<String, SiteTableStats>>,
}

impl PlannerContext {
    /// Installs one database's exported statistics, keeping only snapshots
    /// that are still [`is_fresh`].
    pub fn insert_db(&mut self, database: &str, tables: Vec<SiteTableStats>) {
        let entry = self.tables.entry(database.to_ascii_lowercase()).or_default();
        for t in tables {
            if is_fresh(&t) {
                entry.insert(t.table.to_ascii_lowercase(), t);
            }
        }
    }

    /// True when no usable snapshot was installed at all.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(|t| t.is_empty())
    }

    /// The snapshot for `database.table`, if fresh statistics exist.
    pub fn table(&self, database: &str, table: &str) -> Option<&TableStats> {
        self.tables
            .get(&database.to_ascii_lowercase())?
            .get(&table.to_ascii_lowercase())
            .map(|s| &s.stats)
    }

    /// Estimates one decomposed subquery's shipped partial. `None` when any
    /// table it reads lacks fresh statistics — the caller must then keep the
    /// heuristic path for every decision involving this subquery.
    pub fn estimate_subquery(&self, sub: &DbSubquery) -> Option<Estimate> {
        self.estimate_select(&sub.database, &sub.select)
    }

    /// Estimates an arbitrary single-database SELECT (rows after the WHERE,
    /// bytes after projection).
    pub fn estimate_select(&self, database: &str, sel: &Select) -> Option<Estimate> {
        let bindings = self.bindings(database, sel)?;
        let mut rows: f64 = 1.0;
        for (_, ts) in &bindings {
            rows *= ts.row_count as f64;
        }
        if let Some(w) = &sel.where_clause {
            rows *= selectivity(w, &bindings);
        }
        let bytes = rows * row_width(sel, &bindings);
        Some(Estimate { rows, bytes })
    }

    /// NDV of `binding.column` inside `sub` — prices a semi-join filter
    /// shipped *to* that subquery (`min(1, keys / ndv)` of its rows survive).
    pub fn join_key_ndv(&self, sub: &DbSubquery, binding: &str, column: &str) -> Option<u64> {
        let bindings = self.bindings(&sub.database, &sub.select)?;
        let want = binding.to_ascii_lowercase();
        let (_, ts) = bindings.iter().find(|(name, _)| *name == want)?;
        ts.column(column).map(|c| c.ndv)
    }

    /// Resolves a SELECT's FROM list to `(binding name, statistics)` pairs.
    /// `None` as soon as one table has no fresh snapshot.
    fn bindings<'a>(
        &'a self,
        database: &str,
        sel: &Select,
    ) -> Option<Vec<(String, &'a TableStats)>> {
        let mut out = Vec::with_capacity(sel.from.len());
        for tref in &sel.from {
            let ts = self.table(database, tref.table.as_str())?;
            out.push((tref.binding_name().to_ascii_lowercase(), ts));
        }
        Some(out)
    }
}

/// Rough encoded width of one value in a shipped partial, in bytes.
pub fn value_width(v: &Value) -> f64 {
    match v {
        Value::Null => 1.0,
        Value::Int(_) | Value::Float(_) => 8.0,
        Value::Bool(_) => 1.0,
        Value::Str(s) => s.len().clamp(1, 255) as f64,
    }
}

/// Average width of a column, interpolated from its min/max extremes.
fn column_width(col: &ColumnStats) -> f64 {
    match (&col.min, &col.max) {
        (Some(lo), Some(hi)) => (value_width(lo) + value_width(hi)) / 2.0,
        _ => DEFAULT_COLUMN_WIDTH,
    }
}

/// Resolves a column reference against the FROM bindings: the qualified
/// binding when given, otherwise the first binding exporting the name.
fn find_column<'a>(
    bindings: &[(String, &'a TableStats)],
    c: &ColumnRef,
) -> Option<(&'a TableStats, &'a ColumnStats)> {
    if let Some(t) = &c.table {
        let want = t.as_str().to_ascii_lowercase();
        let (_, ts) = bindings.iter().find(|(name, _)| *name == want)?;
        return ts.column(c.column.as_str()).map(|cs| (*ts, cs));
    }
    bindings.iter().find_map(|(_, ts)| ts.column(c.column.as_str()).map(|cs| (*ts, cs)))
}

/// Estimated row width of a projection, in bytes.
fn row_width(sel: &Select, bindings: &[(String, &TableStats)]) -> f64 {
    let mut width = 0.0;
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (_, ts) in bindings {
                    width += ts.columns.iter().map(column_width).sum::<f64>();
                }
            }
            SelectItem::QualifiedWildcard(name) => {
                let want = name.as_str().to_ascii_lowercase();
                if let Some((_, ts)) = bindings.iter().find(|(b, _)| *b == want) {
                    width += ts.columns.iter().map(column_width).sum::<f64>();
                }
            }
            SelectItem::Expr { expr, .. } => {
                width += match expr {
                    Expr::Column(c) => find_column(bindings, c)
                        .map_or(DEFAULT_COLUMN_WIDTH, |(_, cs)| column_width(cs)),
                    _ => DEFAULT_COLUMN_WIDTH,
                };
            }
        }
    }
    width.max(1.0)
}

fn literal_key(l: &Literal) -> Option<CanonicalKey> {
    literal_value(l).canonical_key()
}

/// Fraction of a column's rows that are NULL.
fn null_fraction(ts: &TableStats, col: &ColumnStats) -> f64 {
    if ts.row_count == 0 {
        0.0
    } else {
        col.null_count as f64 / ts.row_count as f64
    }
}

/// Selectivity of `column = literal`: zero outside the observed [min, max]
/// envelope, `1/NDV` inside it (uniform over the distinct values).
fn eq_selectivity(col: &ColumnStats, key: &CanonicalKey) -> f64 {
    if col.ndv == 0 {
        return 0.0;
    }
    if let (Some(lo), Some(hi)) = (
        col.min.as_ref().and_then(Value::canonical_key),
        col.max.as_ref().and_then(Value::canonical_key),
    ) {
        if *key < lo || *key > hi {
            return 0.0;
        }
    }
    1.0 / col.ndv as f64
}

/// Selectivity of a `column < / <= / > / >= literal` comparison: the
/// equi-depth histogram's fraction below the key when present, the min/max
/// envelope as a coarse 0-or-1 bound otherwise, [`UNKNOWN_SELECTIVITY`] as
/// the last resort. Scaled by the non-null fraction (NULL never compares).
fn range_selectivity(ts: &TableStats, col: &ColumnStats, op: BinaryOp, key: &CanonicalKey) -> f64 {
    let non_null = 1.0 - null_fraction(ts, col);
    let below = col.histogram_fraction_below(key).or_else(|| {
        let lo = col.min.as_ref().and_then(Value::canonical_key)?;
        let hi = col.max.as_ref().and_then(Value::canonical_key)?;
        if *key < lo {
            Some(0.0)
        } else if *key > hi {
            Some(1.0)
        } else {
            None
        }
    });
    let Some(below) = below else { return UNKNOWN_SELECTIVITY * non_null };
    let frac = match op {
        BinaryOp::Lt | BinaryOp::LtEq => below,
        BinaryOp::Gt | BinaryOp::GtEq => 1.0 - below,
        _ => UNKNOWN_SELECTIVITY,
    };
    (frac * non_null).clamp(0.0, 1.0)
}

/// Selectivity of a predicate over the FROM bindings. Conservative: anything
/// the estimator cannot decompose prices at [`UNKNOWN_SELECTIVITY`], and the
/// result is always clamped into `[0, 1]`.
pub fn selectivity(e: &Expr, bindings: &[(String, &TableStats)]) -> f64 {
    let s = match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            selectivity(left, bindings) * selectivity(right, bindings)
        }
        Expr::Binary { left, op: BinaryOp::Or, right } => {
            let (l, r) = (selectivity(left, bindings), selectivity(right, bindings));
            l + r - l * r
        }
        Expr::Unary { op: UnaryOp::Not, expr } => 1.0 - selectivity(expr, bindings),
        Expr::Binary { left, op, right } => comparison_selectivity(left, *op, right, bindings),
        Expr::InList { expr, list, negated } => {
            let s = match expr.as_ref() {
                Expr::Column(c) => find_column(bindings, c)
                    .map(|(_, cs)| {
                        if cs.ndv == 0 {
                            0.0
                        } else {
                            (list.len() as f64 / cs.ndv as f64).min(1.0)
                        }
                    })
                    .unwrap_or(UNKNOWN_SELECTIVITY),
                _ => UNKNOWN_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let s = match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) => {
                    match (find_column(bindings, c), literal_key(lo), literal_key(hi)) {
                        (Some((ts, cs)), Some(lo), Some(hi)) => {
                            let below_hi = range_selectivity(ts, cs, BinaryOp::LtEq, &hi);
                            let below_lo = range_selectivity(ts, cs, BinaryOp::Lt, &lo);
                            (below_hi - below_lo).max(0.0)
                        }
                        _ => UNKNOWN_SELECTIVITY,
                    }
                }
                _ => UNKNOWN_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::IsNull { expr, negated } => {
            let s = match expr.as_ref() {
                Expr::Column(c) => find_column(bindings, c)
                    .map(|(ts, cs)| null_fraction(ts, cs))
                    .unwrap_or(UNKNOWN_SELECTIVITY),
                _ => UNKNOWN_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        _ => UNKNOWN_SELECTIVITY,
    };
    s.clamp(0.0, 1.0)
}

/// Selectivity of one `left op right` comparison conjunct.
fn comparison_selectivity(
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    bindings: &[(String, &TableStats)],
) -> f64 {
    match (left, right) {
        // column op literal (and the mirrored literal op column).
        (Expr::Column(c), Expr::Literal(l)) => column_literal(c, op, l, bindings),
        (Expr::Literal(l), Expr::Column(c)) => column_literal(c, mirror(op), l, bindings),
        // column = column: a local equi-join conjunct — 1 / max(NDV).
        (Expr::Column(a), Expr::Column(b)) if op == BinaryOp::Eq => {
            match (find_column(bindings, a), find_column(bindings, b)) {
                (Some((_, ca)), Some((_, cb))) => {
                    let ndv = ca.ndv.max(cb.ndv);
                    if ndv == 0 {
                        0.0
                    } else {
                        1.0 / ndv as f64
                    }
                }
                _ => UNKNOWN_SELECTIVITY,
            }
        }
        _ => UNKNOWN_SELECTIVITY,
    }
}

fn column_literal(
    c: &ColumnRef,
    op: BinaryOp,
    l: &Literal,
    bindings: &[(String, &TableStats)],
) -> f64 {
    let (Some((ts, cs)), Some(key)) = (find_column(bindings, c), literal_key(l)) else {
        return UNKNOWN_SELECTIVITY;
    };
    match op {
        BinaryOp::Eq => eq_selectivity(cs, &key),
        BinaryOp::NotEq => 1.0 - eq_selectivity(cs, &key),
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            range_selectivity(ts, cs, op, &key)
        }
        _ => UNKNOWN_SELECTIVITY,
    }
}

/// Mirrors a comparison across `=` for `literal op column` conjuncts.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbs::schema::{ColumnSchema, TableSchema};
    use ldbs::stats::analyze_table;
    use ldbs::table::Table;
    use ldbs::value::DataType;
    use msql_lang::parser::parse_statement;
    use msql_lang::{QueryBody, Statement};

    /// A `cars` table with `n` rows: code 0..n, carst cycling over three
    /// statuses with heavy skew towards `available`.
    fn cars_stats(n: i64) -> SiteTableStats {
        let mut t = Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("carst", DataType::Char(10)),
            ],
        ));
        for i in 0..n {
            let status = if i % 10 == 0 { "rented" } else { "available" };
            t.insert(vec![Value::Int(i), Value::Str(status.into())]).unwrap();
        }
        SiteTableStats { table: "cars".into(), dml_since: 0, stats: analyze_table(&t) }
    }

    fn select_of(sql: &str) -> Select {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!("not a query") };
        let QueryBody::Select(s) = q.body else { panic!("not a select") };
        s
    }

    fn ctx() -> PlannerContext {
        let mut ctx = PlannerContext::default();
        ctx.insert_db("avis", vec![cars_stats(100)]);
        ctx
    }

    #[test]
    fn equality_estimates_one_over_ndv() {
        let ctx = ctx();
        let sel = select_of("SELECT code FROM cars WHERE code = 7");
        let est = ctx.estimate_select("avis", &sel).unwrap();
        assert!((est.rows - 1.0).abs() < 1e-9, "100 rows / 100 distinct codes, got {}", est.rows);
    }

    #[test]
    fn equality_outside_envelope_is_zero() {
        let ctx = ctx();
        let sel = select_of("SELECT code FROM cars WHERE code = 1000");
        let est = ctx.estimate_select("avis", &sel).unwrap();
        assert_eq!(est.rows, 0.0);
    }

    #[test]
    fn skewed_equality_uses_ndv_not_row_count() {
        // carst has NDV 2: `= 'rented'` estimates half the rows even though
        // the true share is 10% — uniform over distinct values, as designed.
        let ctx = ctx();
        let sel = select_of("SELECT code FROM cars WHERE carst = 'rented'");
        let est = ctx.estimate_select("avis", &sel).unwrap();
        assert!((est.rows - 50.0).abs() < 1e-9, "got {}", est.rows);
    }

    #[test]
    fn range_uses_histogram_fraction() {
        let ctx = ctx();
        let low = ctx
            .estimate_select("avis", &select_of("SELECT code FROM cars WHERE code < 10"))
            .unwrap();
        let high = ctx
            .estimate_select("avis", &select_of("SELECT code FROM cars WHERE code < 90"))
            .unwrap();
        assert!(low.rows < high.rows, "histogram fraction must be monotone");
        assert!(high.rows > 50.0, "< 90 covers most of the table, got {}", high.rows);
    }

    #[test]
    fn conjunction_multiplies_and_or_unions() {
        let ctx = ctx();
        let and = ctx
            .estimate_select(
                "avis",
                &select_of("SELECT code FROM cars WHERE code = 7 AND carst = 'rented'"),
            )
            .unwrap();
        assert!((and.rows - 0.5).abs() < 1e-9, "1/100 × 1/2 of 100 rows, got {}", and.rows);
        let or = ctx
            .estimate_select(
                "avis",
                &select_of("SELECT code FROM cars WHERE code = 7 OR carst = 'rented'"),
            )
            .unwrap();
        assert!(or.rows > and.rows);
    }

    #[test]
    fn in_list_scales_by_ndv_and_null_is_null_fraction() {
        let ctx = ctx();
        let inl = ctx
            .estimate_select("avis", &select_of("SELECT code FROM cars WHERE code IN (1, 2, 3)"))
            .unwrap();
        assert!((inl.rows - 3.0).abs() < 1e-9, "got {}", inl.rows);
        let isnull = ctx
            .estimate_select("avis", &select_of("SELECT code FROM cars WHERE code IS NULL"))
            .unwrap();
        assert_eq!(isnull.rows, 0.0, "no NULL codes were analyzed");
    }

    #[test]
    fn missing_table_yields_no_estimate() {
        let ctx = ctx();
        assert!(ctx.estimate_select("avis", &select_of("SELECT x FROM unknown")).is_none());
        assert!(ctx.estimate_select("hertz", &select_of("SELECT code FROM cars")).is_none());
    }

    #[test]
    fn stale_snapshots_are_dropped_on_insert() {
        let mut stats = cars_stats(100);
        stats.dml_since = 100 / 2 + STALENESS_SLACK + 1;
        assert!(!is_fresh(&stats));
        let mut ctx = PlannerContext::default();
        ctx.insert_db("avis", vec![stats]);
        assert!(ctx.is_empty());
        assert!(ctx.estimate_select("avis", &select_of("SELECT code FROM cars")).is_none());
    }

    #[test]
    fn bytes_scale_with_projection_width() {
        let ctx = ctx();
        let narrow = ctx.estimate_select("avis", &select_of("SELECT code FROM cars")).unwrap();
        let wide = ctx.estimate_select("avis", &select_of("SELECT code, carst FROM cars")).unwrap();
        assert_eq!(narrow.rows, wide.rows);
        assert!(wide.bytes > narrow.bytes);
    }

    #[test]
    fn unknown_conjunct_prices_at_one_third() {
        let ctx = ctx();
        let est = ctx
            .estimate_select("avis", &select_of("SELECT code FROM cars WHERE code + 1 = 2"))
            .unwrap();
        assert!((est.rows - 100.0 * UNKNOWN_SELECTIVITY).abs() < 1e-9);
    }
}
