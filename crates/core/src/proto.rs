//! The engine ↔ LAM request/response protocol.
//!
//! One request message yields exactly one response message. Requests carry a
//! header line plus optional payload lines; SQL commands are escaped (so
//! they occupy one line each) with [`crate::wire::escape`].

use crate::error::MdbsError;
use crate::wire::{escape, unescape};

/// Frames a message body with a correlation id: `@<id>` on the first line,
/// the body after it. The id lets a retrying client match responses to the
/// logical request they answer (stale duplicates are discarded) and lets the
/// LAM server deduplicate resends: a retried request is executed at most
/// once, later copies are answered from a response cache. Bodies without the
/// prefix (hand-written test clients) pass through unchanged on both sides.
pub fn encode_with_correlation(id: u64, body: &str) -> String {
    format!("@{id}\n{body}")
}

/// Splits an optional correlation prefix off a message body. Returns the id
/// (if present and well-formed) and the remaining body.
pub fn split_correlation(body: &str) -> (Option<u64>, &str) {
    let Some(rest) = body.strip_prefix('@') else { return (None, body) };
    let Some((id_text, tail)) = rest.split_once('\n') else { return (None, body) };
    match id_text.parse::<u64>() {
        Ok(id) => (Some(id), tail),
        Err(_) => (None, body),
    }
}

/// How a task's commands are committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMode {
    /// Run inside one transaction and stop in prepared-to-commit.
    NoCommit,
    /// Autocommit each command.
    Auto,
}

impl TaskMode {
    fn as_str(&self) -> &'static str {
        match self {
            TaskMode::NoCommit => "NOCOMMIT",
            TaskMode::Auto => "AUTO",
        }
    }
}

/// A request to a LAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a persistent local transaction under a task name (deferred
    /// global transactions, §3.2.2).
    Begin {
        /// Task name for later Exec/Prepare/Commit/Abort.
        name: String,
        /// Target database.
        database: String,
    },
    /// Execute more commands inside a transaction opened with Begin.
    Exec {
        /// The task.
        task: String,
        /// SQL commands.
        commands: Vec<String>,
    },
    /// Vote: move a Begin-opened transaction to prepared-to-commit.
    Prepare {
        /// The task.
        task: String,
    },
    /// Execute a task's commands against a database.
    Task {
        /// Task name (used later by Commit/Abort).
        name: String,
        /// Commit discipline.
        mode: TaskMode,
        /// Target database on the service.
        database: String,
        /// SQL commands in order.
        commands: Vec<String>,
    },
    /// Second commit phase for a prepared task.
    Commit {
        /// The task.
        task: String,
    },
    /// Roll a prepared task back.
    Abort {
        /// The task.
        task: String,
    },
    /// Recovery: settle an in-doubt prepared task per the coordinator's
    /// logged (or presumed-abort) decision. The LAM answers from its
    /// transaction state — `C`/`A` for a task it still holds prepared, its
    /// recorded outcome for a task it already settled, and `A` (presumed
    /// abort) for a task it never heard of or never prepared.
    Resolve {
        /// The task.
        task: String,
        /// True to commit, false to abort.
        commit: bool,
    },
    /// Run compensating commands (autocommit) for a committed task.
    Compensate {
        /// The task being compensated (for logging).
        task: String,
        /// Target database.
        database: String,
        /// The compensating SQL commands.
        commands: Vec<String>,
    },
    /// Evaluate one local subquery of a decomposed cross-database join and
    /// return its serialized result set. When `baseline` is present (the
    /// unreduced subquery, sent only under tracing), the LAM also evaluates
    /// it and reports its row/byte volume so semi-join savings can be
    /// measured without shipping the unreduced rows.
    Partial {
        /// Target database.
        database: String,
        /// The (possibly semi-join-reduced) subquery to evaluate.
        sql: String,
        /// Unreduced subquery to measure (result discarded, never shipped).
        baseline: Option<String>,
    },
    /// Evaluate one pre-reduced site query of an aggregation/top-k pushdown
    /// and return its serialized result set. Like [`Request::Partial`] but
    /// the subquery aggregates (or truncates) locally, so the response also
    /// reports how many reduced groups/rows it shipped; `baseline` (sent
    /// only under tracing) is the unpushed subquery, evaluated to measure
    /// the row/byte volume the pushdown kept off the wire.
    PartialAgg {
        /// Target database.
        database: String,
        /// The pushed-down (pre-aggregating or top-k) site query.
        sql: String,
        /// Unpushed subquery to measure (result discarded, never shipped).
        baseline: Option<String>,
    },
    /// Fetch the public Local Conceptual Schema of a database.
    Schema {
        /// The database.
        database: String,
    },
    /// Fetch the optimizer statistics a database has collected via
    /// `ANALYZE` (the coordinator caches them in the GDD tier). Tables
    /// without statistics are simply absent from the answer.
    Stats {
        /// The database.
        database: String,
        /// Restrict the export to one table, or fetch all analyzed tables.
        table: Option<String>,
    },
    /// Create a temporary table from a serialized result set and load its
    /// rows (coordinator collection of partial results).
    Load {
        /// Target database.
        database: String,
        /// Temp table name.
        table: String,
        /// `wire::encode_result_set` payload.
        payload: String,
    },
    /// Drop a temporary table.
    DropTemp {
        /// Target database.
        database: String,
        /// Temp table name.
        table: String,
    },
    /// Create and load several temporary tables in one round trip — the
    /// coordinator collects all partial results of a cross-database join
    /// with a single exchange instead of one `LOAD` per site.
    LoadMany {
        /// Target database.
        database: String,
        /// `(temp table, wire::encode_result_set payload)` pairs.
        parts: Vec<(String, String)>,
    },
    /// Drop several temporary tables in one round trip.
    DropMany {
        /// Target database.
        database: String,
        /// Temp table names.
        tables: Vec<String>,
    },
    /// Liveness probe.
    Ping,
    /// Stop the LAM server thread.
    Shutdown,
}

/// A response from a LAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Task execution finished with a status code (`P`/`C`/`A`/`E`), an
    /// affected-row count, and an optional serialized result set.
    TaskDone {
        /// Status code.
        status: char,
        /// Rows affected by DML commands.
        affected: u64,
        /// Serialized result set of the last SELECT, if any.
        payload: Option<String>,
        /// Error description when the status is not `P`/`C`.
        error: Option<String>,
    },
    /// A [`Request::Partial`] finished: the reduced result set (if the
    /// subquery succeeded) plus the measured volume of the unreduced
    /// baseline (zero when no baseline was requested or it failed).
    PartialDone {
        /// Serialized result set of the reduced subquery.
        payload: Option<String>,
        /// Error description when the subquery failed.
        error: Option<String>,
        /// Rows the unreduced baseline would have shipped.
        full_rows: u64,
        /// Payload bytes the unreduced baseline would have shipped.
        full_bytes: u64,
        /// Access path the local engine took for the reduced subquery
        /// (`probe` or `scan`), when the engine reported one.
        access: Option<String>,
    },
    /// A [`Request::PartialAgg`] finished: the pre-reduced result set plus
    /// the measured volume of the unpushed baseline (zero when no baseline
    /// was requested or it failed).
    PartialAggDone {
        /// Serialized result set of the pushed site query.
        payload: Option<String>,
        /// Error description when the site query failed.
        error: Option<String>,
        /// Reduced groups (or top-k rows) the site shipped.
        groups: u64,
        /// Rows the unpushed subquery would have shipped.
        full_rows: u64,
        /// Payload bytes the unpushed subquery would have shipped.
        full_bytes: u64,
    },
    /// Generic success.
    Ok,
    /// Success with a payload (schema replies).
    OkPayload {
        /// The payload.
        payload: String,
    },
    /// Failure.
    Err {
        /// What went wrong.
        message: String,
    },
}

impl Request {
    /// Encodes the request as a message body.
    pub fn encode(&self) -> String {
        match self {
            Request::Begin { name, database } => format!("BEGIN {name} {database}"),
            Request::Exec { task, commands } => {
                let mut out = format!("EXEC {task}\n");
                for c in commands {
                    out.push_str(&escape(c));
                    out.push('\n');
                }
                out
            }
            Request::Prepare { task } => format!("PREPARE {task}"),
            Request::Task { name, mode, database, commands } => {
                let mut out = format!("TASK {name} {} {database}\n", mode.as_str());
                for c in commands {
                    out.push_str(&escape(c));
                    out.push('\n');
                }
                out
            }
            Request::Commit { task } => format!("COMMIT {task}"),
            Request::Abort { task } => format!("ABORT {task}"),
            Request::Resolve { task, commit } => {
                format!("RESOLVE {task} {}", if *commit { "COMMIT" } else { "ABORT" })
            }
            Request::Compensate { task, database, commands } => {
                let mut out = format!("COMP {task} {database}\n");
                for c in commands {
                    out.push_str(&escape(c));
                    out.push('\n');
                }
                out
            }
            Request::Partial { database, sql, baseline } => {
                let mut out = format!("PARTIAL {database}\n");
                out.push_str(&escape(sql));
                out.push('\n');
                if let Some(b) = baseline {
                    out.push_str(&escape(b));
                    out.push('\n');
                }
                out
            }
            Request::PartialAgg { database, sql, baseline } => {
                let mut out = format!("PARTIALAGG {database}\n");
                out.push_str(&escape(sql));
                out.push('\n');
                if let Some(b) = baseline {
                    out.push_str(&escape(b));
                    out.push('\n');
                }
                out
            }
            Request::Schema { database } => format!("SCHEMA {database}"),
            Request::Stats { database, table } => match table {
                Some(t) => format!("STATS {database} {t}"),
                None => format!("STATS {database}"),
            },
            Request::Load { database, table, payload } => {
                format!("LOAD {database} {table}\n{payload}")
            }
            Request::DropTemp { database, table } => format!("DROPTEMP {database} {table}"),
            Request::LoadMany { database, parts } => {
                // Length-prefixed framing: payloads are multi-line, so each
                // part header carries the exact byte count that follows it.
                let mut out = format!("LOADMANY {database}\n");
                for (table, payload) in parts {
                    out.push_str(&format!("{table} {}\n", payload.len()));
                    out.push_str(payload);
                }
                out
            }
            Request::DropMany { database, tables } => {
                format!("DROPMANY {database} {}", tables.join(" "))
            }
            Request::Ping => "PING".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Decodes a message body into a request.
    pub fn decode(body: &str) -> Result<Request, MdbsError> {
        let (header, payload) = match body.split_once('\n') {
            Some((h, p)) => (h, p),
            None => (body, ""),
        };
        let words: Vec<&str> = header.split_whitespace().collect();
        let decode_commands = |payload: &str| -> Result<Vec<String>, MdbsError> {
            payload.lines().filter(|l| !l.is_empty()).map(unescape).collect()
        };
        match words.as_slice() {
            ["BEGIN", name, database] => {
                Ok(Request::Begin { name: name.to_string(), database: database.to_string() })
            }
            ["EXEC", task] => {
                Ok(Request::Exec { task: task.to_string(), commands: decode_commands(payload)? })
            }
            ["PREPARE", task] => Ok(Request::Prepare { task: task.to_string() }),
            ["TASK", name, mode, database] => {
                let mode = match *mode {
                    "NOCOMMIT" => TaskMode::NoCommit,
                    "AUTO" => TaskMode::Auto,
                    other => {
                        return Err(MdbsError::Wire(format!("unknown task mode `{other}`")));
                    }
                };
                Ok(Request::Task {
                    name: name.to_string(),
                    mode,
                    database: database.to_string(),
                    commands: decode_commands(payload)?,
                })
            }
            ["COMMIT", task] => Ok(Request::Commit { task: task.to_string() }),
            ["ABORT", task] => Ok(Request::Abort { task: task.to_string() }),
            ["RESOLVE", task, verdict] => {
                let commit = match *verdict {
                    "COMMIT" => true,
                    "ABORT" => false,
                    other => {
                        return Err(MdbsError::Wire(format!("unknown RESOLVE verdict `{other}`")));
                    }
                };
                Ok(Request::Resolve { task: task.to_string(), commit })
            }
            ["COMP", task, database] => Ok(Request::Compensate {
                task: task.to_string(),
                database: database.to_string(),
                commands: decode_commands(payload)?,
            }),
            ["PARTIAL", database] => {
                let lines = decode_commands(payload)?;
                let mut lines = lines.into_iter();
                let sql = lines
                    .next()
                    .ok_or_else(|| MdbsError::Wire("PARTIAL without a subquery".to_string()))?;
                Ok(Request::Partial { database: database.to_string(), sql, baseline: lines.next() })
            }
            ["PARTIALAGG", database] => {
                let lines = decode_commands(payload)?;
                let mut lines = lines.into_iter();
                let sql = lines
                    .next()
                    .ok_or_else(|| MdbsError::Wire("PARTIALAGG without a subquery".to_string()))?;
                Ok(Request::PartialAgg {
                    database: database.to_string(),
                    sql,
                    baseline: lines.next(),
                })
            }
            ["SCHEMA", database] => Ok(Request::Schema { database: database.to_string() }),
            ["STATS", database] => {
                Ok(Request::Stats { database: database.to_string(), table: None })
            }
            ["STATS", database, table] => Ok(Request::Stats {
                database: database.to_string(),
                table: Some(table.to_string()),
            }),
            ["LOAD", database, table] => Ok(Request::Load {
                database: database.to_string(),
                table: table.to_string(),
                payload: payload.to_string(),
            }),
            ["DROPTEMP", database, table] => {
                Ok(Request::DropTemp { database: database.to_string(), table: table.to_string() })
            }
            ["LOADMANY", database] => {
                let mut parts = Vec::new();
                let mut rest = payload;
                while !rest.is_empty() {
                    let (head, tail) = rest.split_once('\n').ok_or_else(|| {
                        MdbsError::Wire("LOADMANY part without a header line".to_string())
                    })?;
                    let (table, len) = head.split_once(' ').ok_or_else(|| {
                        MdbsError::Wire(format!("malformed LOADMANY part header `{head}`"))
                    })?;
                    let len: usize = len.parse().map_err(|_| {
                        MdbsError::Wire(format!("bad LOADMANY part length `{len}`"))
                    })?;
                    if tail.len() < len || !tail.is_char_boundary(len) {
                        return Err(MdbsError::Wire(format!(
                            "truncated LOADMANY part for `{table}`"
                        )));
                    }
                    parts.push((table.to_string(), tail[..len].to_string()));
                    rest = &tail[len..];
                }
                Ok(Request::LoadMany { database: database.to_string(), parts })
            }
            ["DROPMANY", database, tables @ ..] => Ok(Request::DropMany {
                database: database.to_string(),
                tables: tables.iter().map(|t| t.to_string()).collect(),
            }),
            ["PING"] => Ok(Request::Ping),
            ["SHUTDOWN"] => Ok(Request::Shutdown),
            _ => Err(MdbsError::Wire(format!("unknown request `{header}`"))),
        }
    }
}

impl Response {
    /// Encodes the response as a message body.
    pub fn encode(&self) -> String {
        match self {
            Response::TaskDone { status, affected, payload, error } => {
                let err = match error {
                    Some(e) => escape(e),
                    None => "-".to_string(),
                };
                let mut out = format!("OK TASK {status} {affected} {err}\n");
                if let Some(p) = payload {
                    out.push_str(p);
                }
                out
            }
            Response::PartialDone { payload, error, full_rows, full_bytes, access } => {
                let err = match error {
                    Some(e) => escape(e),
                    None => "-".to_string(),
                };
                let acc = match access {
                    Some(a) => escape(a),
                    None => "-".to_string(),
                };
                let mut out = format!("OK PARTIAL {full_rows} {full_bytes} {acc} {err}\n");
                if let Some(p) = payload {
                    out.push_str(p);
                }
                out
            }
            Response::PartialAggDone { payload, error, groups, full_rows, full_bytes } => {
                let err = match error {
                    Some(e) => escape(e),
                    None => "-".to_string(),
                };
                let mut out = format!("OK PARTIALAGG {groups} {full_rows} {full_bytes} {err}\n");
                if let Some(p) = payload {
                    out.push_str(p);
                }
                out
            }
            Response::Ok => "OK".to_string(),
            Response::OkPayload { payload } => format!("OK PAYLOAD\n{payload}"),
            Response::Err { message } => format!("ERR {}", escape(message)),
        }
    }

    /// Decodes a message body into a response.
    pub fn decode(body: &str) -> Result<Response, MdbsError> {
        let (header, payload) = match body.split_once('\n') {
            Some((h, p)) => (h, p),
            None => (body, ""),
        };
        if let Some(msg) = header.strip_prefix("ERR ") {
            return Ok(Response::Err { message: unescape(msg)? });
        }
        if header == "OK" {
            return Ok(Response::Ok);
        }
        if header == "OK PAYLOAD" {
            return Ok(Response::OkPayload { payload: payload.to_string() });
        }
        // `OK PARTIALAGG` must be tested before `OK PARTIAL `: the latter is
        // a prefix of the former.
        if let Some(rest) = header.strip_prefix("OK PARTIALAGG ") {
            // `<groups> <full_rows> <full_bytes> <error-or-dash>`; the error
            // is the tail of the line (it may contain spaces).
            let mut parts = rest.splitn(4, ' ');
            let groups_text = parts.next().unwrap_or("");
            let rows_text = parts.next().unwrap_or("");
            let bytes_text = parts.next().unwrap_or("");
            let err = parts.next().unwrap_or("-");
            let groups: u64 = groups_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad group count `{groups_text}`")))?;
            let full_rows: u64 = rows_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad baseline rows `{rows_text}`")))?;
            let full_bytes: u64 = bytes_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad baseline bytes `{bytes_text}`")))?;
            let error = if err == "-" { None } else { Some(unescape(err)?) };
            let payload = if payload.is_empty() { None } else { Some(payload.to_string()) };
            return Ok(Response::PartialAggDone { payload, error, groups, full_rows, full_bytes });
        }
        if let Some(rest) = header.strip_prefix("OK PARTIAL ") {
            // `<full_rows> <full_bytes> <access-or-dash> <error-or-dash>`;
            // the error is the tail of the line (it may contain spaces).
            let mut parts = rest.splitn(4, ' ');
            let rows_text = parts.next().unwrap_or("");
            let bytes_text = parts.next().unwrap_or("");
            let acc = parts.next().unwrap_or("-");
            let err = parts.next().unwrap_or("-");
            let full_rows: u64 = rows_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad baseline rows `{rows_text}`")))?;
            let full_bytes: u64 = bytes_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad baseline bytes `{bytes_text}`")))?;
            let access = if acc == "-" { None } else { Some(unescape(acc)?) };
            let error = if err == "-" { None } else { Some(unescape(err)?) };
            let payload = if payload.is_empty() { None } else { Some(payload.to_string()) };
            return Ok(Response::PartialDone { payload, error, full_rows, full_bytes, access });
        }
        if let Some(rest) = header.strip_prefix("OK TASK ") {
            // `<status> <affected> <error-or-dash>`; the error is the tail of
            // the line (it may contain spaces).
            let mut parts = rest.splitn(3, ' ');
            let status_text = parts.next().unwrap_or("");
            let affected_text = parts.next().unwrap_or("");
            let err = parts.next().unwrap_or("-");
            let status = status_text
                .chars()
                .next()
                .filter(|_| status_text.len() == 1)
                .ok_or_else(|| MdbsError::Wire(format!("bad status `{status_text}`")))?;
            let affected: u64 = affected_text
                .parse()
                .map_err(|_| MdbsError::Wire(format!("bad affected count `{affected_text}`")))?;
            let error = if err == "-" { None } else { Some(unescape(err)?) };
            let payload = if payload.is_empty() { None } else { Some(payload.to_string()) };
            return Ok(Response::TaskDone { status, affected, payload, error });
        }
        Err(MdbsError::Wire(format!("unknown response `{header}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: Request) {
        let enc = r.encode();
        assert_eq!(Request::decode(&enc).unwrap(), r, "encoded: {enc}");
    }

    fn roundtrip_response(r: Response) {
        let enc = r.encode();
        assert_eq!(Response::decode(&enc).unwrap(), r, "encoded: {enc}");
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Task {
            name: "T1".into(),
            mode: TaskMode::NoCommit,
            database: "continental".into(),
            commands: vec![
                "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'".into(),
                "SELECT 'multi\nline | literal' FROM flights".into(),
            ],
        });
        roundtrip_request(Request::Commit { task: "T1".into() });
        roundtrip_request(Request::Abort { task: "T1".into() });
        roundtrip_request(Request::Resolve { task: "T1".into(), commit: true });
        roundtrip_request(Request::Resolve { task: "T1".into(), commit: false });
        roundtrip_request(Request::Compensate {
            task: "T1".into(),
            database: "continental".into(),
            commands: vec!["UPDATE flights SET rate = rate / 1.1".into()],
        });
        roundtrip_request(Request::Schema { database: "avis".into() });
        roundtrip_request(Request::Stats { database: "avis".into(), table: None });
        roundtrip_request(Request::Stats { database: "avis".into(), table: Some("cars".into()) });
        roundtrip_request(Request::Load {
            database: "avis".into(),
            table: "part_national".into(),
            payload: "COLS code:int\nR I:1\n".into(),
        });
        roundtrip_request(Request::DropTemp { database: "avis".into(), table: "t".into() });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Begin { name: "G1".into(), database: "avis".into() });
        roundtrip_request(Request::Exec {
            task: "G1".into(),
            commands: vec!["UPDATE cars SET rate = 1".into()],
        });
        roundtrip_request(Request::Prepare { task: "G1".into() });
        roundtrip_request(Request::Partial {
            database: "avis".into(),
            sql: "SELECT code AS b_c_code FROM cars WHERE rate IN (10, 20)".into(),
            baseline: None,
        });
        roundtrip_request(Request::Partial {
            database: "avis".into(),
            sql: "SELECT code AS b_c_code FROM cars WHERE rate IN (10, 20)".into(),
            baseline: Some("SELECT code AS b_c_code\nFROM cars".into()),
        });
        roundtrip_request(Request::PartialAgg {
            database: "avis".into(),
            sql: "SELECT cartype AS b_c_cartype, COUNT(*) AS agg_cnt FROM cars GROUP BY cartype"
                .into(),
            baseline: None,
        });
        roundtrip_request(Request::PartialAgg {
            database: "avis".into(),
            sql: "SELECT COUNT(*) AS agg_cnt FROM cars".into(),
            baseline: Some("SELECT code AS b_c_code\nFROM cars".into()),
        });
        roundtrip_request(Request::LoadMany { database: "avis".into(), parts: vec![] });
        roundtrip_request(Request::LoadMany {
            database: "avis".into(),
            parts: vec![
                ("part_national".into(), "COLS code:int\nR I:1\n".into()),
                ("part_avis".into(), "COLS rate:float\nR F:39.5\nR F:25\n".into()),
                ("part_empty".into(), String::new()),
            ],
        });
        roundtrip_request(Request::DropMany { database: "avis".into(), tables: vec![] });
        roundtrip_request(Request::DropMany {
            database: "avis".into(),
            tables: vec!["part_national".into(), "part_avis".into()],
        });
    }

    #[test]
    fn partial_without_sql_rejected() {
        assert!(Request::decode("PARTIAL avis").is_err());
        assert!(Request::decode("PARTIAL avis\n").is_err());
    }

    #[test]
    fn malformed_loadmany_is_rejected() {
        // Header with no length word.
        assert!(Request::decode("LOADMANY avis\npart_t\nx").is_err());
        // Non-numeric length.
        assert!(Request::decode("LOADMANY avis\npart_t abc\nx").is_err());
        // Length pointing past the end of the body.
        assert!(Request::decode("LOADMANY avis\npart_t 99\nshort").is_err());
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::OkPayload { payload: "TABLE t x:int\n".into() });
        roundtrip_response(Response::Err { message: "lock conflict | details\nline2".into() });
        roundtrip_response(Response::TaskDone {
            status: 'P',
            affected: 3,
            payload: None,
            error: None,
        });
        roundtrip_response(Response::TaskDone {
            status: 'C',
            affected: 0,
            payload: Some("COLS code:int\nR I:1\n".into()),
            error: None,
        });
        roundtrip_response(Response::TaskDone {
            status: 'A',
            affected: 0,
            payload: None,
            error: Some("simulated deadlock".into()),
        });
        roundtrip_response(Response::PartialDone {
            payload: Some("COLS code:int\nR I:1\n".into()),
            error: None,
            full_rows: 12,
            full_bytes: 340,
            access: Some("probe".into()),
        });
        roundtrip_response(Response::PartialDone {
            payload: Some("COLS code:int\nR I:1\n".into()),
            error: None,
            full_rows: 12,
            full_bytes: 340,
            access: None,
        });
        roundtrip_response(Response::PartialDone {
            payload: None,
            error: Some("unknown table | details\nline2".into()),
            full_rows: 0,
            full_bytes: 0,
            access: Some("scan".into()),
        });
        roundtrip_response(Response::PartialAggDone {
            payload: Some("COLS b_c_cartype:char agg_cnt:int\nR S:bus I:3\n".into()),
            error: None,
            groups: 1,
            full_rows: 40,
            full_bytes: 900,
        });
        roundtrip_response(Response::PartialAggDone {
            payload: None,
            error: Some("unknown column | details\nline2".into()),
            groups: 0,
            full_rows: 0,
            full_bytes: 0,
        });
    }

    #[test]
    fn partialagg_without_sql_rejected() {
        assert!(Request::decode("PARTIALAGG avis").is_err());
        assert!(Request::decode("PARTIALAGG avis\n").is_err());
    }

    #[test]
    fn partialagg_header_is_not_mistaken_for_partial() {
        // `OK PARTIAL ` is a prefix of `OK PARTIALAGG `; make sure the
        // decoder keeps the two apart in both directions.
        let agg = Response::PartialAggDone {
            payload: None,
            error: None,
            groups: 2,
            full_rows: 5,
            full_bytes: 100,
        };
        assert!(matches!(
            Response::decode(&agg.encode()).unwrap(),
            Response::PartialAggDone { groups: 2, full_rows: 5, full_bytes: 100, .. }
        ));
        let plain = Response::PartialDone {
            payload: None,
            error: None,
            full_rows: 5,
            full_bytes: 100,
            access: None,
        };
        assert!(matches!(Response::decode(&plain.encode()).unwrap(), Response::PartialDone { .. }));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode("FROB x").is_err());
        assert!(Request::decode("TASK t BADMODE db").is_err());
        assert!(Request::decode("RESOLVE t MAYBE").is_err());
        assert!(Response::decode("NOPE").is_err());
        assert!(Response::decode("OK TASK PP 3 -").is_err());
        assert!(Response::decode("OK TASK P x -").is_err());
    }

    #[test]
    fn correlation_frame_roundtrips() {
        let framed = encode_with_correlation(42, "PING");
        assert_eq!(split_correlation(&framed), (Some(42), "PING"));
        let multi = encode_with_correlation(7, "OK PAYLOAD\nTABLE t x:int\n");
        assert_eq!(split_correlation(&multi), (Some(7), "OK PAYLOAD\nTABLE t x:int\n"));
    }

    #[test]
    fn unframed_bodies_pass_through() {
        assert_eq!(split_correlation("PING"), (None, "PING"));
        assert_eq!(split_correlation("@notanumber\nPING"), (None, "@notanumber\nPING"));
        assert_eq!(split_correlation("@12"), (None, "@12"), "id without body line");
    }

    #[test]
    fn task_with_no_commands_roundtrips() {
        roundtrip_request(Request::Task {
            name: "T".into(),
            mode: TaskMode::Auto,
            database: "d".into(),
            commands: vec![],
        });
    }
}
