//! MSQL return codes.
//!
//! "The translator receives back DOL return codes, which describe the
//! execution status reached by the engine. These codes are used as MSQL
//! return codes" (paper §4.1).

use crate::translate::MTX_FAILED;

/// Successful execution (for multitransactions: the preferred state).
pub const SUCCESS: i32 = 0;

/// A vital update was rolled back (successfully aborted, in the paper's
/// terms: consistent, but the work was not done).
pub const ABORTED: i32 = 1;

/// Human-readable meaning of a return code in the context it was produced.
pub fn describe(code: i32, multitransaction: bool) -> String {
    if multitransaction {
        match code {
            MTX_FAILED => "multitransaction failed: no acceptable state reachable; all \
                           subqueries rolled back or compensated"
                .to_string(),
            n if n >= 0 => format!("multitransaction committed acceptable state #{n}"),
            other => format!("unknown return code {other}"),
        }
    } else {
        match code {
            SUCCESS => "query successful: all vital subqueries committed".to_string(),
            ABORTED => "query aborted: vital subqueries rolled back or compensated".to_string(),
            other => format!("unknown return code {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_distinguish_contexts() {
        assert!(describe(SUCCESS, false).contains("successful"));
        assert!(describe(ABORTED, false).contains("aborted"));
        assert!(describe(0, true).contains("state #0"));
        assert!(describe(1, true).contains("state #1"));
        assert!(describe(MTX_FAILED, true).contains("no acceptable state"));
    }
}
