//! Retry policy and execution-level fault accounting.
//!
//! The paper's prototype ran over an unreliable campus network; §3.2 treats a
//! subquery that cannot be reached as *aborted* and lets the VITAL semantics
//! decide whether the whole statement fails. This module adds the layer the
//! paper leaves to the communication substrate: a bounded retry policy for
//! transient faults (timeouts, dropped messages, partitions that heal), with
//! deterministic backoff so simulated runs stay reproducible.

use netsim::FaultKind;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// How a [`crate::lamclient::LamClient`] responds to transient network
/// faults. The default policy performs a single attempt (no retries), which
/// preserves the seed behaviour: a lost message surfaces as a timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per request, including the first (min 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Overall deadline for one logical request across all its attempts.
    pub deadline: Duration,
    /// Seed for the deterministic jitter mixed into each backoff. Two runs
    /// with the same seed back off identically — no wall-clock randomness.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: one attempt, faults surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            deadline: Duration::from_secs(60),
            jitter_seed: 0,
        }
    }

    /// A sensible fault-tolerant policy: `max_attempts` tries with a small
    /// exponential backoff.
    pub fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(60),
            jitter_seed: 0x5EED,
        }
    }

    /// True when the policy allows more than one attempt.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The pause before attempt `next_attempt` (2 = first retry).
    /// Exponential in the retry index, plus deterministic jitter of at most
    /// half the base backoff, derived from `jitter_seed` and the attempt
    /// number alone.
    pub fn backoff(&self, next_attempt: u32) -> Duration {
        if next_attempt <= 1 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = (next_attempt - 2).min(10);
        let base = self.base_backoff.saturating_mul(1u32 << exp);
        let half = self.base_backoff.as_micros() as u64 / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(self.jitter_seed ^ u64::from(next_attempt)) % (half + 1)
        };
        base + Duration::from_micros(jitter)
    }
}

/// SplitMix64: a tiny, high-quality mixer for deterministic jitter.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Communication telemetry for one named task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTelemetry {
    /// Network attempts spent executing the task (1 = no retries).
    pub attempts: u32,
    /// The last fault observed while executing the task, if any.
    pub fault: Option<FaultKind>,
}

/// Execution-level fault and retry counters, aggregated across every LAM
/// request a plan (or session) issues. Exposed on
/// [`crate::executor::UpdateReport`] / [`crate::executor::MtxReport`] and via
/// [`crate::federation::Federation::exec_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Logical calls issued (each may span several attempts). The invariant
    /// `retries == attempts - calls` holds by construction.
    pub calls: u64,
    /// Total request attempts, including first tries.
    pub attempts: u64,
    /// Attempts beyond the first (resends).
    pub retries: u64,
    /// Transient faults observed (timeout, drop, partition).
    pub transient_faults: u64,
    /// Terminal faults observed (unknown site, closed endpoint).
    pub terminal_faults: u64,
    /// Requests that ultimately succeeded only after at least one retry.
    pub recovered: u64,
    /// Non-vital subqueries tolerated as failed (graceful degradation,
    /// §3.2's "the multiquery can succeed without them").
    pub degraded: u64,
    /// Per-task attempt/fault telemetry, keyed by DOL task name. Ordered so
    /// `Debug`/render output is deterministic and diffable.
    pub per_task: BTreeMap<String, TaskTelemetry>,
}

impl ExecStats {
    /// Records one observed fault by kind.
    pub fn record_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Transient => self.transient_faults += 1,
            FaultKind::Terminal => self.terminal_faults += 1,
        }
    }

    /// Records the outcome of one logical call: how many attempts it used
    /// and the faults it saw on the way.
    pub fn record_call(&mut self, attempts: u32, faults: &[FaultKind], succeeded: bool) {
        self.calls += 1;
        self.attempts += u64::from(attempts.max(1));
        self.retries += u64::from(attempts.saturating_sub(1));
        for k in faults {
            self.record_fault(*k);
        }
        if succeeded && attempts > 1 {
            self.recovered += 1;
        }
    }

    /// Records task-level telemetry (merged into
    /// [`crate::executor::DbOutcome`] by the executor).
    pub fn record_task(&mut self, task: &str, attempts: u32, fault: Option<FaultKind>) {
        self.per_task.insert(task.to_string(), TaskTelemetry { attempts, fault });
    }

    /// Telemetry for a task, if the executor talked to its LAM.
    pub fn task(&self, task: &str) -> Option<TaskTelemetry> {
        self.per_task.get(task).copied()
    }

    /// Folds another stats cell into this one (per-run → per-session
    /// aggregation). Per-task entries of `other` win on name collision
    /// (they are newer).
    pub fn merge(&mut self, other: &ExecStats) {
        self.calls += other.calls;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.transient_faults += other.transient_faults;
        self.terminal_faults += other.terminal_faults;
        self.recovered += other.recovered;
        self.degraded += other.degraded;
        for (task, telemetry) in &other.per_task {
            self.per_task.insert(task.clone(), *telemetry);
        }
    }
}

/// Stats shared between a client/factory and the executor that reads them.
pub type SharedExecStats = Arc<Mutex<ExecStats>>;

/// A fresh shared stats cell.
pub fn shared_stats() -> SharedExecStats {
    Arc::new(Mutex::new(ExecStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_single_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.enabled());
        assert_eq!(p.backoff(2), Duration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::retries(5);
        let b2 = p.backoff(2);
        let b3 = p.backoff(3);
        let b4 = p.backoff(4);
        assert_eq!(b2, p.backoff(2), "same seed, same attempt, same pause");
        assert!(b3 >= b2.saturating_sub(p.base_backoff), "roughly doubling");
        assert!(b4 > b2);
        // Jitter is bounded by half the base backoff.
        assert!(b2 <= p.base_backoff + p.base_backoff / 2 + Duration::from_micros(1));
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let a = RetryPolicy { jitter_seed: 1, ..RetryPolicy::retries(5) };
        let b = RetryPolicy { jitter_seed: 2, ..RetryPolicy::retries(5) };
        // Not guaranteed for every attempt, but across several attempts the
        // sequences must differ.
        let seq_a: Vec<_> = (2..8).map(|i| a.backoff(i)).collect();
        let seq_b: Vec<_> = (2..8).map(|i| b.backoff(i)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn stats_record_call_counts_retries_and_recoveries() {
        let mut s = ExecStats::default();
        s.record_call(1, &[], true);
        s.record_call(3, &[FaultKind::Transient, FaultKind::Transient], true);
        s.record_call(2, &[FaultKind::Transient, FaultKind::Terminal], false);
        assert_eq!(s.calls, 3);
        assert_eq!(s.attempts, 6);
        assert_eq!(s.retries, 3);
        assert_eq!(s.retries, s.attempts - s.calls);
        assert_eq!(s.transient_faults, 3);
        assert_eq!(s.terminal_faults, 1);
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn task_telemetry_is_keyed_by_name() {
        let mut s = ExecStats::default();
        s.record_task("T1", 4, Some(FaultKind::Transient));
        assert_eq!(
            s.task("T1"),
            Some(TaskTelemetry { attempts: 4, fault: Some(FaultKind::Transient) })
        );
        assert_eq!(s.task("T2"), None);
    }
}
