//! Session scope: the current `USE` databases and `LET` semantic variables.

use crate::error::MdbsError;
use msql_lang::{LetStatement, SemanticVariable, UseStatement};

/// One database in the current scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeDb {
    /// Database name.
    pub database: String,
    /// Alias from `USE (db alias)`, if any.
    pub alias: Option<String>,
    /// VITAL designator (paper §3.2).
    pub vital: bool,
}

impl ScopeDb {
    /// The name this element is referred to by (alias if present) — what
    /// COMP clauses and acceptable states use.
    pub fn key(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.database)
    }
}

/// The query scope: databases plus semantic variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionScope {
    /// Scope databases in USE order.
    pub databases: Vec<ScopeDb>,
    /// Declared semantic variables.
    pub variables: Vec<SemanticVariable>,
}

impl SessionScope {
    /// An empty scope.
    pub fn new() -> Self {
        SessionScope::default()
    }

    /// Applies a USE statement: `USE` replaces the scope (and invalidates
    /// semantic variables, whose bindings were positional in the old scope);
    /// `USE CURRENT` appends to it.
    pub fn apply_use(&mut self, u: &UseStatement) -> Result<(), MdbsError> {
        if !u.current {
            self.databases.clear();
            self.variables.clear();
        }
        for e in &u.elements {
            let database = e.database.as_str().to_string();
            if e.database.is_multiple() {
                return Err(MdbsError::Parse(format!(
                    "USE cannot take a wildcard database name `{database}`"
                )));
            }
            let element = ScopeDb {
                database,
                alias: e.alias.as_ref().map(|a| a.to_ascii_lowercase()),
                vital: e.vital,
            };
            if self.databases.iter().any(|d| d.key() == element.key()) {
                return Err(MdbsError::Parse(format!(
                    "duplicate scope name `{}` in USE",
                    element.key()
                )));
            }
            self.databases.push(element);
        }
        Ok(())
    }

    /// Adds LET variables, validating them against the current scope: one
    /// binding per scope database (positional, in USE order), all paths of
    /// the variable's arity.
    pub fn apply_let(&mut self, l: &LetStatement) -> Result<(), MdbsError> {
        if self.databases.is_empty() {
            return Err(MdbsError::EmptyScope);
        }
        for var in &l.variables {
            if var.names.len() < 2 {
                return Err(MdbsError::BadSemanticVariable(format!(
                    "variable `{}` needs at least a table and a column component",
                    var.names.join(".")
                )));
            }
            if var.bindings.len() != self.databases.len() {
                return Err(MdbsError::BadSemanticVariable(format!(
                    "variable `{}` has {} bindings for {} databases in scope",
                    var.names.join("."),
                    var.bindings.len(),
                    self.databases.len()
                )));
            }
            for b in &var.bindings {
                if b.len() != var.names.len() {
                    return Err(MdbsError::BadSemanticVariable(format!(
                        "binding `{}` does not match the arity of `{}`",
                        b.join("."),
                        var.names.join(".")
                    )));
                }
            }
            let mut lowered = var.clone();
            lowered.names = lowered.names.iter().map(|n| n.to_ascii_lowercase()).collect();
            lowered.bindings = lowered
                .bindings
                .iter()
                .map(|b| b.iter().map(|n| n.to_ascii_lowercase()).collect())
                .collect();
            self.variables.push(lowered);
        }
        Ok(())
    }

    /// Resolves a database name or alias to its scope element.
    pub fn resolve(&self, name: &str) -> Option<&ScopeDb> {
        let lower = name.to_ascii_lowercase();
        self.databases.iter().find(|d| d.key() == lower || d.database == lower)
    }

    /// Index of a database (by name or alias) in USE order.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.databases.iter().position(|d| d.key() == lower || d.database == lower)
    }

    /// The vital set: scope elements designated VITAL.
    pub fn vital_set(&self) -> Vec<&ScopeDb> {
        self.databases.iter().filter(|d| d.vital).collect()
    }

    /// If `head` is a semantic table variable, the bound table name for the
    /// `db_index`-th scope database.
    pub fn table_binding(&self, head: &str, db_index: usize) -> Option<&str> {
        let lower = head.to_ascii_lowercase();
        self.variables
            .iter()
            .find(|v| v.names[0] == lower)
            .and_then(|v| v.bindings.get(db_index))
            .map(|b| b[0].as_str())
    }

    /// If `component` is a column component of a semantic variable (whose
    /// head matches `head` when given), the bound column name for the
    /// `db_index`-th scope database.
    pub fn column_binding(
        &self,
        head: Option<&str>,
        component: &str,
        db_index: usize,
    ) -> Option<&str> {
        let comp = component.to_ascii_lowercase();
        let head = head.map(|h| h.to_ascii_lowercase());
        for v in &self.variables {
            if let Some(h) = &head {
                if v.names[0] != *h {
                    continue;
                }
            }
            if let Some(k) = v.names[1..].iter().position(|n| *n == comp) {
                return v.bindings.get(db_index).map(|b| b[k + 1].as_str());
            }
        }
        None
    }

    /// True if `name` is the head (table variable) of any semantic variable.
    pub fn is_table_variable(&self, name: &str) -> bool {
        let lower = name.to_ascii_lowercase();
        self.variables.iter().any(|v| v.names[0] == lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msql_lang::{parse_statement, Statement};

    fn use_stmt(sql: &str) -> UseStatement {
        match parse_statement(sql).unwrap() {
            Statement::Use(u) => u,
            other => panic!("{other:?}"),
        }
    }

    fn let_stmt(sql: &str) -> LetStatement {
        match parse_statement(sql).unwrap() {
            Statement::Let(l) => l,
            other => panic!("{other:?}"),
        }
    }

    fn paper_scope() -> SessionScope {
        let mut s = SessionScope::new();
        s.apply_use(&use_stmt("USE avis national")).unwrap();
        s.apply_let(&let_stmt("LET car.type.status BE cars.cartype.carst vehicle.vty.vstat"))
            .unwrap();
        s
    }

    #[test]
    fn use_replaces_and_current_appends() {
        let mut s = SessionScope::new();
        s.apply_use(&use_stmt("USE avis national")).unwrap();
        assert_eq!(s.databases.len(), 2);
        s.apply_use(&use_stmt("USE continental")).unwrap();
        assert_eq!(s.databases.len(), 1);
        s.apply_use(&use_stmt("USE CURRENT delta")).unwrap();
        assert_eq!(s.databases.len(), 2);
        assert_eq!(s.databases[1].database, "delta");
    }

    #[test]
    fn use_clears_variables() {
        let mut s = paper_scope();
        assert_eq!(s.variables.len(), 1);
        s.apply_use(&use_stmt("USE continental")).unwrap();
        assert!(s.variables.is_empty());
    }

    #[test]
    fn vital_and_alias_resolution() {
        let mut s = SessionScope::new();
        s.apply_use(&use_stmt("USE (continental cont) VITAL delta united VITAL")).unwrap();
        let vitals: Vec<&str> = s.vital_set().iter().map(|d| d.key()).collect();
        assert_eq!(vitals, vec!["cont", "united"]);
        assert_eq!(s.resolve("cont").unwrap().database, "continental");
        assert_eq!(s.resolve("continental").unwrap().key(), "cont");
        assert_eq!(s.index_of("united"), Some(2));
        assert!(s.resolve("avis").is_none());
    }

    #[test]
    fn duplicate_scope_name_rejected() {
        let mut s = SessionScope::new();
        assert!(s.apply_use(&use_stmt("USE avis avis")).is_err());
    }

    #[test]
    fn let_bindings_resolve_positionally() {
        let s = paper_scope();
        assert!(s.is_table_variable("car"));
        assert!(!s.is_table_variable("cars"));
        assert_eq!(s.table_binding("car", 0), Some("cars"));
        assert_eq!(s.table_binding("CAR", 1), Some("vehicle"));
        assert_eq!(s.column_binding(Some("car"), "type", 0), Some("cartype"));
        assert_eq!(s.column_binding(Some("car"), "type", 1), Some("vty"));
        assert_eq!(s.column_binding(None, "status", 1), Some("vstat"));
        assert_eq!(s.column_binding(None, "rate", 0), None);
    }

    #[test]
    fn let_arity_validation() {
        let mut s = SessionScope::new();
        s.apply_use(&use_stmt("USE avis national")).unwrap();
        // Only one binding for two databases.
        assert!(matches!(
            s.apply_let(&let_stmt("LET car.type BE cars.cartype")),
            Err(MdbsError::BadSemanticVariable(_))
        ));
        // Binding arity mismatch.
        assert!(matches!(
            s.apply_let(&let_stmt("LET car.type BE cars.cartype vehicle.vty.vstat")),
            Err(MdbsError::BadSemanticVariable(_))
        ));
        // LET before USE.
        let mut empty = SessionScope::new();
        assert!(matches!(
            empty.apply_let(&let_stmt("LET car.type BE cars.cartype vehicle.vty")),
            Err(MdbsError::EmptyScope)
        ));
    }

    #[test]
    fn single_component_variable_rejected() {
        let mut s = SessionScope::new();
        s.apply_use(&use_stmt("USE avis national")).unwrap();
        assert!(s.apply_let(&let_stmt("LET car BE cars vehicle")).is_err());
    }
}
