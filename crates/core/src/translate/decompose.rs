//! Decomposition (paper §4.3, phase 3).
//!
//! *"Each global fully qualified elementary query Q is decomposed into SQL
//! subqueries q1 ... qn and a global modified query Q'. The decomposition of
//! Q is based on the location of the accessed data items and is performed
//! using query graph analysis. The global query is transformed into a set of
//! the largest possible local subqueries, one for each involved LDBS. One of
//! the LDBSs is designated as the coordinator and will evaluate the modified
//! global query."*
//!
//! Given a SELECT whose FROM spans several databases, this module:
//!
//! 1. resolves each table to its owning database (explicit qualifier, or a
//!    unique GDD match within the scope);
//! 2. splits the WHERE conjunction into *local* conjuncts (all columns from
//!    one database — pushed down) and *global* conjuncts (cross-database —
//!    kept in Q');
//! 3. builds, per database, the largest local subquery projecting exactly
//!    the columns the global phase needs (renamed `b_<binding>_<column>` so
//!    partial results cannot collide);
//! 4. builds Q' over the partial-result tables `part_<db>`, and picks the
//!    database with the most bindings as coordinator.

use crate::error::MdbsError;
use crate::scope::SessionScope;
use catalog::{GddTable, GlobalDataDictionary};
use msql_lang::*;

/// One local subquery of a decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct DbSubquery {
    /// The database that evaluates it.
    pub database: String,
    /// The largest local subquery.
    pub select: Select,
    /// Name of the partial-result table at the coordinator.
    pub part_table: String,
}

/// One side of a cross-database equi-join edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSide {
    /// Database owning the column.
    pub database: String,
    /// FROM binding the column belongs to (alias or table name).
    pub binding: String,
    /// Column name in the local table.
    pub column: String,
    /// The column's renamed projection in the shipped partial
    /// (`b_<binding>_<column>`).
    pub part_column: String,
}

/// A cross-database equality `left = right` found among the global
/// conjuncts. These are the semi-join reduction opportunities: the distinct
/// key values of one side's partial can be shipped to the other side as an
/// `IN (…)` filter so only matching rows cross the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinKey {
    /// One end of the equality.
    pub left: JoinSide,
    /// The other end (always a different database).
    pub right: JoinSide,
}

impl JoinKey {
    /// The side of this edge living in `database`, if any.
    pub fn side_in(&self, database: &str) -> Option<&JoinSide> {
        if self.left.database == database {
            Some(&self.left)
        } else if self.right.database == database {
            Some(&self.right)
        } else {
            None
        }
    }

    /// The side of this edge *not* living in `database`, if the edge touches
    /// `database` at all.
    pub fn side_opposite(&self, database: &str) -> Option<&JoinSide> {
        if self.left.database == database {
            Some(&self.right)
        } else if self.right.database == database {
            Some(&self.left)
        } else {
            None
        }
    }
}

/// A decomposed global query.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Per-database subqueries (the coordinator's own included).
    pub subqueries: Vec<DbSubquery>,
    /// The database that evaluates the modified global query.
    pub coordinator: String,
    /// The modified global query Q' over the `part_<db>` tables.
    pub global_query: Select,
    /// Cross-database equi-join edges extracted from the global conjuncts.
    pub join_keys: Vec<JoinKey>,
    /// Aggregation / top-k pushdown plan, when the query's shape allows the
    /// sites to pre-reduce their partials and the MDBS layer to merge them
    /// without a coordinator. `None` means the classic ship-everything plan
    /// (above fields) is the only option; the fields above are *always*
    /// populated so the executor can fall back byte-identically.
    pub pushdown: Option<PushdownPlan>,
}

/// A plan for answering a cross-database query from pre-reduced partials
/// merged at the MDBS layer, instead of shipping raw rows to a coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum PushdownPlan {
    /// Decomposable GROUP BY aggregation: sites group by (join keys ∪ own
    /// group keys) and ship partial states; groups are hash-merged here.
    Aggregate(AggPushdown),
    /// Site-local top-k under `ORDER BY … LIMIT k` on a pure product: each
    /// site ships its own top k rows and the merge takes the global top k.
    TopK(TopKPushdown),
}

/// The kind of a pushed aggregate, with its decomposable partial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` — derived from the per-group row counts alone.
    CountStar,
    /// `COUNT(col)` — per-group non-null count, scaled by the other side.
    Count,
    /// `SUM(col)` — per-group partial sum, scaled by the other side's count.
    Sum,
    /// `AVG(col)` — kept as an exact (sum, count) pair until the final merge.
    Avg,
    /// `MIN(col)` — per-group minimum, folded across matching groups.
    Min,
    /// `MAX(col)` — per-group maximum, folded across matching groups.
    Max,
}

/// One aggregate of the global query and where its partial state lives.
#[derive(Debug, Clone, PartialEq)]
pub struct AggState {
    /// Aggregate kind.
    pub kind: AggKind,
    /// Index (into [`AggPushdown::sites`]) of the site owning the argument
    /// column. Unused for `CountStar`, which reads both sites' row counts.
    pub site: usize,
    /// Shipped column holding the partial value (sum for `Sum`/`Avg`,
    /// min/max for `Min`/`Max`). `None` for the count-only kinds.
    pub value_col: Option<String>,
    /// Shipped column holding the partial non-null count (`Count`, `Avg`).
    pub count_col: Option<String>,
}

/// One column of the merged output, in user projection order.
#[derive(Debug, Clone, PartialEq)]
pub enum AggOutput {
    /// A GROUP BY key, identified by its slot in the grouping tuple.
    Key {
        /// Position in the grouping tuple.
        slot: usize,
        /// User-visible column name.
        name: String,
    },
    /// An aggregate, identified by its index in [`AggPushdown::aggs`].
    Agg {
        /// Index into [`AggPushdown::aggs`].
        agg: usize,
        /// User-visible column name.
        name: String,
    },
}

/// One site of an aggregate pushdown: the rewritten subquery plus the
/// shipped-column names the merge reads back out of its partial.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSite {
    /// The site's rewritten subquery: GROUP BY (join keys ∪ own group keys)
    /// projecting the keys, `COUNT(*)`, and the owned partial states.
    pub select: Select,
    /// Shipped aliases of this site's join-key columns, aligned with
    /// [`Decomposition::join_keys`] edge order across both sites.
    pub join_cols: Vec<String>,
    /// Shipped aliases of this site's GROUP BY keys as `(slot, alias)`.
    pub key_cols: Vec<(usize, String)>,
    /// Shipped alias of the per-group `COUNT(*)`.
    pub count_col: String,
}

/// A decomposable aggregation pushed down to the sites.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPushdown {
    /// One entry per decomposition subquery, same order.
    pub sites: Vec<AggSite>,
    /// Number of GROUP BY keys in the global grouping tuple.
    pub slots: usize,
    /// The global aggregates, in first-appearance order.
    pub aggs: Vec<AggState>,
    /// Output columns in user projection order.
    pub output: Vec<AggOutput>,
    /// `ORDER BY` over the merged output as `(output index, direction)`.
    pub order_by: Vec<(usize, SortOrder)>,
    /// `LIMIT` applied after the merge (never pushed below the grouping).
    pub limit: Option<u64>,
}

/// One site of a top-k pushdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSite {
    /// The site's subquery with its own ORDER BY components, deterministic
    /// tie-breaks and `LIMIT k` appended.
    pub select: Select,
}

/// One component of the global ORDER BY, pointing at a shipped column.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOrder {
    /// Site owning the column.
    pub site: usize,
    /// Shipped (renamed) column alias.
    pub col: String,
    /// Sort direction.
    pub order: SortOrder,
}

/// A site-local top-k pushdown for `ORDER BY … LIMIT k` over a pure product
/// (no cross-database conjuncts): any global top-k row is the pairing of
/// per-site rows that each survive their own site's top k.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKPushdown {
    /// One entry per decomposition subquery, same order.
    pub sites: Vec<TopKSite>,
    /// Output columns in user projection order as
    /// `(site, shipped column, user-visible name)`.
    pub output: Vec<(usize, String, String)>,
    /// The global ORDER BY sequence over shipped columns.
    pub order_by: Vec<TopKOrder>,
    /// `LIMIT k`.
    pub limit: u64,
}

#[derive(Debug, Clone)]
struct Binding {
    /// Name the query knows this table by (alias or table name).
    name: String,
    /// Owning database.
    database: String,
    /// Original table reference (db qualifier stripped).
    tref: TableRef,
    /// Exported definition.
    def: GddTable,
}

/// Decomposes a (fully qualified, wildcard-free) SELECT.
pub fn decompose(
    sel: &Select,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
) -> Result<Decomposition, MdbsError> {
    if sel.from.is_empty() {
        return Err(MdbsError::Unsupported("decomposition requires at least one table".into()));
    }
    // Resolve bindings.
    let mut bindings: Vec<Binding> = Vec::with_capacity(sel.from.len());
    for tref in &sel.from {
        if tref.table.is_multiple() {
            return Err(MdbsError::Unsupported(format!(
                "wildcard table `{}` cannot be combined with cross-database joins",
                tref.table
            )));
        }
        let database = match &tref.database {
            Some(q) => scope
                .resolve(q.as_str())
                .map(|d| d.database.clone())
                .ok_or_else(|| MdbsError::NotInScope(q.as_str().to_string()))?,
            None => {
                // A unique scope database exporting this table.
                let mut owners = Vec::new();
                for d in &scope.databases {
                    if gdd.table(&d.database, tref.table.as_str()).is_ok() {
                        owners.push(d.database.clone());
                    }
                }
                match owners.len() {
                    1 => owners.remove(0),
                    0 => {
                        return Err(MdbsError::NotPertinent(format!(
                            "no database in scope exports table `{}`",
                            tref.table
                        )))
                    }
                    _ => {
                        return Err(MdbsError::NotPertinent(format!(
                            "table `{}` is exported by several databases in scope; \
                             qualify it",
                            tref.table
                        )))
                    }
                }
            }
        };
        let def = gdd
            .table(&database, tref.table.as_str())
            .map_err(|e| MdbsError::Catalog(e.to_string()))?
            .clone();
        let name = tref.binding_name().to_ascii_lowercase();
        if bindings.iter().any(|b| b.name == name) {
            return Err(MdbsError::NotPertinent(format!("duplicate binding `{name}`")));
        }
        bindings.push(Binding {
            name,
            database,
            tref: TableRef { database: None, table: tref.table.clone(), alias: tref.alias.clone() },
            def,
        });
    }

    // Involved databases in first-appearance order.
    let mut databases: Vec<String> = Vec::new();
    for b in &bindings {
        if !databases.contains(&b.database) {
            databases.push(b.database.clone());
        }
    }

    // Split WHERE into conjuncts and classify them.
    let mut local_conjuncts: Vec<(String, Expr)> = Vec::new();
    let mut global_conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = &sel.where_clause {
        for conjunct in split_conjuncts(w) {
            let used = used_databases(&conjunct, &bindings)?;
            match used.as_slice() {
                [] | [_] if !contains_subquery(&conjunct) => {
                    if let [db] = used.as_slice() {
                        local_conjuncts.push((db.clone(), strip_db_qualifiers(&conjunct)));
                    } else {
                        // Constant conjunct: give it to the global query.
                        global_conjuncts.push(conjunct.clone());
                    }
                }
                _ => {
                    if contains_subquery(&conjunct) {
                        return Err(MdbsError::Unsupported(
                            "subqueries are not supported in cross-database joins".into(),
                        ));
                    }
                    global_conjuncts.push(conjunct.clone());
                }
            }
        }
    }

    // Needed columns per binding: everything the global phase references.
    let mut needed: Vec<(String, String)> = Vec::new(); // (binding, column)
    let mut pending: Vec<ColumnRef> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for b in &bindings {
                    for c in &b.def.columns {
                        let pair = (b.name.clone(), c.name.clone());
                        if !needed.contains(&pair) {
                            needed.push(pair);
                        }
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let target = t.as_str();
                let b =
                    bindings.iter().find(|b| b.name == target || b.def.name == target).ok_or_else(
                        || MdbsError::NotPertinent(format!("unknown binding `{target}`")),
                    )?;
                for c in &b.def.columns {
                    let pair = (b.name.clone(), c.name.clone());
                    if !needed.contains(&pair) {
                        needed.push(pair);
                    }
                }
            }
            SelectItem::Expr { expr, .. } => {
                expr.walk_columns(&mut |c| pending.push(c.clone()));
            }
        }
    }
    for g in &global_conjuncts {
        g.walk_columns(&mut |c| pending.push(c.clone()));
    }
    for g in &sel.group_by {
        g.walk_columns(&mut |c| pending.push(c.clone()));
    }
    if let Some(h) = &sel.having {
        h.walk_columns(&mut |c| pending.push(c.clone()));
    }
    for o in &sel.order_by {
        o.expr.walk_columns(&mut |c| pending.push(c.clone()));
    }
    for c in &pending {
        let (b, col) = resolve_column(c, &bindings)?;
        let pair = (b.name.clone(), col);
        if !needed.contains(&pair) {
            needed.push(pair);
        }
    }

    // Local subqueries.
    let mut subqueries = Vec::with_capacity(databases.len());
    for db in &databases {
        let db_bindings: Vec<&Binding> = bindings.iter().filter(|b| b.database == *db).collect();
        let mut items = Vec::new();
        for (bname, col) in &needed {
            if db_bindings.iter().any(|b| b.name == *bname) {
                items.push(SelectItem::Expr {
                    expr: Expr::Column(ColumnRef::with_table(bname.clone(), col.clone())),
                    alias: Some(part_column(bname, col)),
                    optional: false,
                });
            }
        }
        if items.is_empty() {
            // The global phase needs nothing from this database (it only
            // filters locally); project a constant so the subquery is valid.
            items.push(SelectItem::Expr {
                expr: Expr::Literal(Literal::Int(1)),
                alias: Some("one".into()),
                optional: false,
            });
        }
        let mut where_clause: Option<Expr> = None;
        for (cdb, conj) in &local_conjuncts {
            if cdb == db {
                where_clause = Some(match where_clause {
                    Some(acc) => acc.and(conj.clone()),
                    None => conj.clone(),
                });
            }
        }
        subqueries.push(DbSubquery {
            database: db.clone(),
            select: Select {
                distinct: false,
                items,
                from: db_bindings.iter().map(|b| b.tref.clone()).collect(),
                where_clause,
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
            },
            part_table: format!("part_{db}"),
        });
    }

    // Coordinator: most bindings; ties by first appearance.
    let coordinator = databases
        .iter()
        .max_by_key(|db| {
            (
                bindings.iter().filter(|b| &b.database == *db).count(),
                // invert index so earlier databases win ties
                usize::MAX - databases.iter().position(|d| d == *db).unwrap(),
            )
        })
        .unwrap()
        .clone();

    // The modified global query Q'.
    let rewrite = |e: &Expr| rewrite_global(e, &bindings);
    let mut items = Vec::with_capacity(sel.items.len());
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for b in &bindings {
                    for c in &b.def.columns {
                        items.push(SelectItem::Expr {
                            expr: Expr::Column(ColumnRef::with_table(
                                format!("part_{}", b.database),
                                part_column(&b.name, &c.name),
                            )),
                            alias: Some(c.name.clone()),
                            optional: false,
                        });
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let target = t.as_str();
                let b = bindings
                    .iter()
                    .find(|b| b.name == target || b.def.name == target)
                    .expect("validated above");
                for c in &b.def.columns {
                    items.push(SelectItem::Expr {
                        expr: Expr::Column(ColumnRef::with_table(
                            format!("part_{}", b.database),
                            part_column(&b.name, &c.name),
                        )),
                        alias: Some(c.name.clone()),
                        optional: false,
                    });
                }
            }
            SelectItem::Expr { expr, alias, .. } => {
                let alias = alias.clone().or_else(|| {
                    // Preserve the user-visible name of plain column items.
                    match expr {
                        Expr::Column(c) => Some(c.column.as_str().to_string()),
                        _ => None,
                    }
                });
                items.push(SelectItem::Expr { expr: rewrite(expr)?, alias, optional: false });
            }
        }
    }
    let mut where_clause: Option<Expr> = None;
    for g in &global_conjuncts {
        let rewritten = rewrite(g)?;
        where_clause = Some(match where_clause {
            Some(acc) => acc.and(rewritten),
            None => rewritten,
        });
    }
    let global_query = Select {
        distinct: sel.distinct,
        items,
        from: subqueries.iter().map(|s| TableRef::named(s.part_table.clone())).collect(),
        where_clause,
        group_by: sel.group_by.iter().map(&rewrite).collect::<Result<_, _>>()?,
        having: sel.having.as_ref().map(&rewrite).transpose()?,
        order_by: sel
            .order_by
            .iter()
            .map(|o| Ok(OrderByItem { expr: rewrite(&o.expr)?, order: o.order }))
            .collect::<Result<_, MdbsError>>()?,
        limit: sel.limit,
    };

    // Cross-database equi-join edges among the global conjuncts. Every
    // column here already went through `resolve_column` (via
    // `used_databases`), so resolution cannot fail; the guard is belt and
    // braces.
    let mut join_keys = Vec::new();
    for g in &global_conjuncts {
        let Expr::Binary { left, op: BinaryOp::Eq, right } = g else { continue };
        let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref()) else { continue };
        let (Ok((lb, lcol)), Ok((rb, rcol))) =
            (resolve_column(l, &bindings), resolve_column(r, &bindings))
        else {
            continue;
        };
        if lb.database == rb.database {
            continue;
        }
        let side = |b: &Binding, col: &str| JoinSide {
            database: b.database.clone(),
            binding: b.name.clone(),
            column: col.to_string(),
            part_column: part_column(&b.name, col),
        };
        join_keys.push(JoinKey { left: side(lb, &lcol), right: side(rb, &rcol) });
    }

    // Pushdown analysis. Pure: only inspects what was built above, so every
    // unsupported shape degrades to `pushdown: None` with the classic plan
    // untouched (byte-identical fallback).
    let pushdown = plan_aggregate_pushdown(
        sel,
        &bindings,
        &databases,
        &subqueries,
        &global_conjuncts,
        &join_keys,
    )
    .map(PushdownPlan::Aggregate)
    .or_else(|| {
        plan_topk_pushdown(sel, &bindings, &databases, &subqueries, &global_conjuncts)
            .map(PushdownPlan::TopK)
    });

    Ok(Decomposition { subqueries, coordinator, global_query, join_keys, pushdown })
}

/// Plans an aggregate pushdown, or `None` when the query's shape is not
/// decomposable. Supported shape: exactly two sites, every global conjunct a
/// cross-database equi-join edge, GROUP BY keys and aggregate arguments all
/// plain columns, no DISTINCT / HAVING / `COUNT(DISTINCT …)`, and every
/// ORDER BY expression matching a projected item. Each site then groups by
/// (its join-key columns ∪ its GROUP BY keys) and ships per-group partial
/// states that merge exactly (Yan-Larson eager aggregation): counts and sums
/// scale by the other side's group cardinality, min/max fold, and AVG stays
/// a (sum, count) pair until the end.
fn plan_aggregate_pushdown(
    sel: &Select,
    bindings: &[Binding],
    databases: &[String],
    subqueries: &[DbSubquery],
    global_conjuncts: &[Expr],
    join_keys: &[JoinKey],
) -> Option<AggPushdown> {
    if databases.len() != 2 || subqueries.len() != 2 {
        return None;
    }
    if sel.distinct || sel.having.is_some() {
        return None;
    }
    // Every global conjunct must be one of the extracted equi-join edges;
    // anything else (inequalities, OR trees, constants) blocks the pushdown.
    if join_keys.len() != global_conjuncts.len() {
        return None;
    }
    let site_of = |b: &Binding| databases.iter().position(|d| *d == b.database).unwrap();

    // GROUP BY keys: plain resolvable columns only.
    let mut slots: Vec<(usize, String, String)> = Vec::new(); // (site, binding, column)
    for g in &sel.group_by {
        let Expr::Column(c) = g else { return None };
        let (b, col) = resolve_column(c, bindings).ok()?;
        slots.push((site_of(b), b.name.clone(), col));
    }

    // Projected items: group keys and decomposable aggregates.
    let mut aggs: Vec<AggState> = Vec::new();
    let mut agg_args: Vec<Option<(usize, String, String)>> = Vec::new(); // (site, binding, col)
    let mut output: Vec<AggOutput> = Vec::new();
    for item in &sel.items {
        let SelectItem::Expr { expr, alias, .. } = item else { return None };
        match expr {
            Expr::Column(c) => {
                let (b, col) = resolve_column(c, bindings).ok()?;
                let slot = slots
                    .iter()
                    .position(|(s, bn, cn)| *s == site_of(b) && *bn == b.name && *cn == col)?;
                let name = alias.clone().unwrap_or_else(|| c.column.as_str().to_string());
                output.push(AggOutput::Key { slot, name });
            }
            Expr::Aggregate { kind, arg, distinct } => {
                if *distinct {
                    return None;
                }
                let (akind, arg_site) = match (kind, arg) {
                    (AggregateKind::Count, None) => (AggKind::CountStar, None),
                    (_, Some(a)) => {
                        let Expr::Column(c) = a.as_ref() else { return None };
                        let (b, col) = resolve_column(c, bindings).ok()?;
                        let k = match kind {
                            AggregateKind::Count => AggKind::Count,
                            AggregateKind::Sum => AggKind::Sum,
                            AggregateKind::Avg => AggKind::Avg,
                            AggregateKind::Min => AggKind::Min,
                            AggregateKind::Max => AggKind::Max,
                        };
                        (k, Some((site_of(b), b.name.clone(), col)))
                    }
                    // SUM(*) etc. never parse; COUNT with no argument is the
                    // only argument-free aggregate.
                    _ => return None,
                };
                let i = aggs.len();
                let (value_col, count_col) = match akind {
                    AggKind::CountStar => (None, None),
                    AggKind::Count => (None, Some(format!("agg{i}_c"))),
                    AggKind::Sum => (Some(format!("agg{i}_s")), None),
                    AggKind::Avg => (Some(format!("agg{i}_s")), Some(format!("agg{i}_c"))),
                    AggKind::Min | AggKind::Max => (Some(format!("agg{i}_m")), None),
                };
                aggs.push(AggState {
                    kind: akind,
                    site: arg_site.as_ref().map(|(s, _, _)| *s).unwrap_or(0),
                    value_col,
                    count_col,
                });
                agg_args.push(arg_site);
                let name = alias.clone().unwrap_or_else(|| kind.name().to_ascii_lowercase());
                output.push(AggOutput::Agg { agg: i, name });
            }
            _ => return None,
        }
    }
    // Not an aggregate query at all → nothing to push.
    if aggs.is_empty() && slots.is_empty() {
        return None;
    }
    // The merge emits groups in sorted-key order, not the engine's
    // first-seen order, so a bare LIMIT without ORDER BY would truncate a
    // different prefix. ORDER BY itself must map onto projected items.
    if sel.limit.is_some() && sel.order_by.is_empty() {
        return None;
    }
    let mut order_by: Vec<(usize, SortOrder)> = Vec::new();
    for o in &sel.order_by {
        let pos = sel.items.iter().position(|it| match it {
            SelectItem::Expr { expr, .. } => *expr == o.expr,
            _ => false,
        })?;
        order_by.push((pos, o.order));
    }

    // Per-site rewritten subqueries.
    let mut sites = Vec::with_capacity(subqueries.len());
    for (si, sub) in subqueries.iter().enumerate() {
        let db = &sub.database;
        let mut items: Vec<SelectItem> = Vec::new();
        let mut group_by: Vec<Expr> = Vec::new();
        let push_key = |items: &mut Vec<SelectItem>,
                        group_by: &mut Vec<Expr>,
                        binding: &str,
                        column: &str,
                        alias: String| {
            if items
                .iter()
                .any(|it| matches!(it, SelectItem::Expr { alias: Some(a), .. } if *a == alias))
            {
                return;
            }
            let expr = Expr::Column(ColumnRef::with_table(binding.to_string(), column.to_string()));
            group_by.push(expr.clone());
            items.push(SelectItem::Expr { expr, alias: Some(alias), optional: false });
        };
        let mut join_cols = Vec::with_capacity(join_keys.len());
        for k in join_keys {
            let side = k.side_in(db)?;
            push_key(
                &mut items,
                &mut group_by,
                &side.binding,
                &side.column,
                side.part_column.clone(),
            );
            join_cols.push(side.part_column.clone());
        }
        let mut key_cols = Vec::new();
        for (slot, (s, bn, cn)) in slots.iter().enumerate() {
            if *s == si {
                let alias = part_column(bn, cn);
                push_key(&mut items, &mut group_by, bn, cn, alias.clone());
                key_cols.push((slot, alias));
            }
        }
        let count_col = "agg_cnt".to_string();
        items.push(SelectItem::Expr {
            expr: Expr::Aggregate { kind: AggregateKind::Count, arg: None, distinct: false },
            alias: Some(count_col.clone()),
            optional: false,
        });
        for (ai, (a, arg)) in aggs.iter().zip(&agg_args).enumerate() {
            let Some((arg_site, bn, cn)) = arg else { continue };
            if *arg_site != si {
                continue;
            }
            let arg_expr = Expr::Column(ColumnRef::with_table(bn.clone(), cn.clone()));
            let mut push_agg = |kind: AggregateKind, alias: &str| {
                items.push(SelectItem::Expr {
                    expr: Expr::Aggregate {
                        kind,
                        arg: Some(Box::new(arg_expr.clone())),
                        distinct: false,
                    },
                    alias: Some(alias.to_string()),
                    optional: false,
                });
            };
            match a.kind {
                AggKind::CountStar => {}
                AggKind::Count => push_agg(AggregateKind::Count, &format!("agg{ai}_c")),
                AggKind::Sum => push_agg(AggregateKind::Sum, &format!("agg{ai}_s")),
                AggKind::Avg => {
                    push_agg(AggregateKind::Sum, &format!("agg{ai}_s"));
                    push_agg(AggregateKind::Count, &format!("agg{ai}_c"));
                }
                AggKind::Min => push_agg(AggregateKind::Min, &format!("agg{ai}_m")),
                AggKind::Max => push_agg(AggregateKind::Max, &format!("agg{ai}_m")),
            }
        }
        sites.push(AggSite {
            select: Select {
                distinct: false,
                items,
                from: sub.select.from.clone(),
                where_clause: sub.select.where_clause.clone(),
                group_by,
                having: None,
                order_by: Vec::new(),
                limit: None,
            },
            join_cols,
            key_cols,
            count_col,
        });
    }

    Some(AggPushdown { sites, slots: slots.len(), aggs, output, order_by, limit: sel.limit })
}

/// Plans a top-k pushdown, or `None` when the shape does not allow one.
/// Supported shape: exactly two sites, an empty global WHERE (pure product —
/// a cross-database conjunct could eliminate a row pairing and invalidate
/// per-site pruning), plain-column projection and ORDER BY, no aggregation
/// machinery, and `LIMIT k`. Each site orders by its own components of the
/// global sort (their relative order preserved), breaks ties over its
/// remaining projected columns for determinism, and ships only its top k;
/// the global top k is then a merge of the ≤ k×k candidate pairings.
fn plan_topk_pushdown(
    sel: &Select,
    bindings: &[Binding],
    databases: &[String],
    subqueries: &[DbSubquery],
    global_conjuncts: &[Expr],
) -> Option<TopKPushdown> {
    if databases.len() != 2 || subqueries.len() != 2 {
        return None;
    }
    if !global_conjuncts.is_empty() {
        return None;
    }
    if sel.distinct || !sel.group_by.is_empty() || sel.having.is_some() {
        return None;
    }
    if sel.order_by.is_empty() {
        return None;
    }
    let limit = sel.limit?;
    let site_of = |b: &Binding| databases.iter().position(|d| *d == b.database).unwrap();

    let mut output: Vec<(usize, String, String)> = Vec::new();
    for item in &sel.items {
        let SelectItem::Expr { expr: Expr::Column(c), alias, .. } = item else { return None };
        let (b, col) = resolve_column(c, bindings).ok()?;
        let name = alias.clone().unwrap_or_else(|| c.column.as_str().to_string());
        output.push((site_of(b), part_column(&b.name, &col), name));
    }
    // The global sort sequence, each component resolved to its owning site.
    let mut order_by: Vec<TopKOrder> = Vec::new();
    let mut site_orders: Vec<Vec<OrderByItem>> = vec![Vec::new(); subqueries.len()];
    for o in &sel.order_by {
        let Expr::Column(c) = &o.expr else { return None };
        let (b, col) = resolve_column(c, bindings).ok()?;
        let site = site_of(b);
        order_by.push(TopKOrder { site, col: part_column(&b.name, &col), order: o.order });
        site_orders[site].push(OrderByItem {
            expr: Expr::Column(ColumnRef::with_table(b.name.clone(), col)),
            order: o.order,
        });
    }

    let mut sites = Vec::with_capacity(subqueries.len());
    for (si, sub) in subqueries.iter().enumerate() {
        let mut order = site_orders[si].clone();
        // Deterministic tie-break: every other shipped column, ascending, so
        // the site's kept prefix (and thus the shipped bytes) is stable
        // across runs even when the ordered components tie.
        for it in &sub.select.items {
            let SelectItem::Expr { expr, .. } = it else { continue };
            if !order.iter().any(|o| o.expr == *expr) {
                order.push(OrderByItem { expr: expr.clone(), order: SortOrder::Asc });
            }
        }
        let mut select = sub.select.clone();
        select.order_by = order;
        select.limit = Some(limit);
        sites.push(TopKSite { select });
    }

    Some(TopKPushdown { sites, output, order_by, limit })
}

/// `b_<binding>_<column>` — the renamed projection of a needed column.
fn part_column(binding: &str, column: &str) -> String {
    format!("b_{binding}_{column}")
}

/// Flattens an AND tree into conjuncts.
fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

fn contains_subquery(e: &Expr) -> bool {
    match e {
        Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => true,
        Expr::Unary { expr, .. } => contains_subquery(expr),
        Expr::Binary { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::Aggregate { arg: Some(a), .. } => contains_subquery(a),
        Expr::Function { args, .. } => args.iter().any(contains_subquery),
        Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_subquery(expr) || contains_subquery(low) || contains_subquery(high)
        }
        Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Like { expr, pattern, .. } => contains_subquery(expr) || contains_subquery(pattern),
        _ => false,
    }
}

/// Resolves a column reference to its binding.
fn resolve_column<'b>(
    c: &ColumnRef,
    bindings: &'b [Binding],
) -> Result<(&'b Binding, String), MdbsError> {
    if c.column.is_multiple() {
        return Err(MdbsError::Unsupported(format!(
            "wildcard column `{}` cannot be combined with cross-database joins",
            c.column
        )));
    }
    let col = c.column.as_str().to_string();
    if let Some(t) = &c.table {
        let target = t.as_str();
        let b = bindings
            .iter()
            .find(|b| b.name == target || b.def.name == target)
            .ok_or_else(|| MdbsError::NotPertinent(format!("unknown table `{target}`")))?;
        if b.def.column(&col).is_none() {
            return Err(MdbsError::NotPertinent(format!("unknown column `{target}.{col}`")));
        }
        return Ok((b, col));
    }
    let mut owner = None;
    for b in bindings {
        if b.def.column(&col).is_some() {
            if owner.is_some() {
                return Err(MdbsError::NotPertinent(format!("ambiguous column `{col}`")));
            }
            owner = Some(b);
        }
    }
    owner
        .map(|b| (b, col.clone()))
        .ok_or_else(|| MdbsError::NotPertinent(format!("unknown column `{col}`")))
}

/// Databases referenced by an expression.
fn used_databases(e: &Expr, bindings: &[Binding]) -> Result<Vec<String>, MdbsError> {
    let mut out: Vec<String> = Vec::new();
    let mut err = None;
    e.walk_columns(&mut |c| {
        if err.is_some() {
            return;
        }
        match resolve_column(c, bindings) {
            Ok((b, _)) => {
                if !out.contains(&b.database) {
                    out.push(b.database.clone());
                }
            }
            Err(e) => err = Some(e),
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Strips database qualifiers from column references (for pushdown).
fn strip_db_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(ColumnRef {
            database: None,
            table: c.table.clone(),
            column: c.column.clone(),
        }),
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(strip_db_qualifiers(expr)) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(strip_db_qualifiers(left)),
            op: *op,
            right: Box::new(strip_db_qualifiers(right)),
        },
        Expr::Aggregate { kind, arg, distinct } => Expr::Aggregate {
            kind: *kind,
            arg: arg.as_ref().map(|a| Box::new(strip_db_qualifiers(a))),
            distinct: *distinct,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(strip_db_qualifiers).collect(),
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(strip_db_qualifiers(expr)),
            list: list.iter().map(strip_db_qualifiers).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(strip_db_qualifiers(expr)),
            low: Box::new(strip_db_qualifiers(low)),
            high: Box::new(strip_db_qualifiers(high)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(strip_db_qualifiers(expr)), negated: *negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(strip_db_qualifiers(expr)),
            pattern: Box::new(strip_db_qualifiers(pattern)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Rewrites an expression for the global query: every column becomes
/// `part_<db>.b_<binding>_<column>`.
fn rewrite_global(e: &Expr, bindings: &[Binding]) -> Result<Expr, MdbsError> {
    Ok(match e {
        Expr::Column(c) => {
            let (b, col) = resolve_column(c, bindings)?;
            Expr::Column(ColumnRef::with_table(
                format!("part_{}", b.database),
                part_column(&b.name, &col),
            ))
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_global(expr, bindings)?) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_global(left, bindings)?),
            op: *op,
            right: Box::new(rewrite_global(right, bindings)?),
        },
        Expr::Aggregate { kind, arg, distinct } => Expr::Aggregate {
            kind: *kind,
            arg: match arg {
                Some(a) => Some(Box::new(rewrite_global(a, bindings)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_global(a, bindings)).collect::<Result<_, _>>()?,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_global(expr, bindings)?),
            list: list.iter().map(|x| rewrite_global(x, bindings)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_global(expr, bindings)?),
            low: Box::new(rewrite_global(low, bindings)?),
            high: Box::new(rewrite_global(high, bindings)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(rewrite_global(expr, bindings)?), negated: *negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_global(expr, bindings)?),
            pattern: Box::new(rewrite_global(pattern, bindings)?),
            negated: *negated,
        },
        Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            return Err(MdbsError::Unsupported(
                "subqueries are not supported in cross-database joins".into(),
            ))
        }
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::GddColumn;
    use msql_lang::printer::print_select;
    use msql_lang::TypeName;

    fn gdd() -> GlobalDataDictionary {
        let mut g = GlobalDataDictionary::new();
        g.register_database("avis", "svc4").unwrap();
        g.put_table(
            "avis",
            GddTable::new(
                "cars",
                ["code", "cartype", "rate", "carst"]
                    .iter()
                    .map(|c| GddColumn::new(*c, TypeName::Char(0)))
                    .collect(),
            ),
        )
        .unwrap();
        g.register_database("continental", "svc1").unwrap();
        g.put_table(
            "continental",
            GddTable::new(
                "flights",
                ["flnu", "source", "destination", "rate"]
                    .iter()
                    .map(|c| GddColumn::new(*c, TypeName::Char(0)))
                    .collect(),
            ),
        )
        .unwrap();
        g
    }

    fn scope() -> SessionScope {
        let mut s = SessionScope::new();
        let Statement::Use(u) = msql_lang::parse_statement("USE avis continental").unwrap() else {
            panic!()
        };
        s.apply_use(&u).unwrap();
        s
    }

    fn select(sql: &str) -> Select {
        let Statement::Query(q) = msql_lang::parse_statement(sql).unwrap() else { panic!() };
        let QueryBody::Select(s) = q.body else { panic!() };
        s
    }

    #[test]
    fn cross_db_join_splits_local_and_global_predicates() {
        let d = decompose(
            &select(
                "SELECT c.code, f.flnu FROM avis.cars c, continental.flights f
                 WHERE c.carst = 'available' AND f.source = 'Houston' AND c.rate < f.rate",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert_eq!(d.subqueries.len(), 2);
        let avis = d.subqueries.iter().find(|s| s.database == "avis").unwrap();
        let cont = d.subqueries.iter().find(|s| s.database == "continental").unwrap();
        // Local predicates pushed down.
        let avis_sql = print_select(&avis.select);
        assert!(avis_sql.contains("carst = 'available'"), "{avis_sql}");
        assert!(!avis_sql.contains("Houston"), "{avis_sql}");
        let cont_sql = print_select(&cont.select);
        assert!(cont_sql.contains("source = 'Houston'"), "{cont_sql}");
        // Projections renamed.
        assert!(avis_sql.contains("AS b_c_code"), "{avis_sql}");
        assert!(avis_sql.contains("AS b_c_rate"), "{avis_sql}");
        // Global query joins the parts on the cross-db predicate.
        let g = print_select(&d.global_query);
        assert!(g.contains("part_avis"), "{g}");
        assert!(g.contains("part_continental"), "{g}");
        assert!(g.contains("part_avis.b_c_rate < part_continental.b_f_rate"), "{g}");
    }

    #[test]
    fn unqualified_tables_resolve_through_gdd() {
        let d = decompose(
            &select("SELECT code, flnu FROM cars, flights WHERE rate = 1"),
            &scope(),
            &gdd(),
        );
        // `rate` exists in both → ambiguous.
        assert!(matches!(d, Err(MdbsError::NotPertinent(_))));

        let d = decompose(
            &select("SELECT code, flnu FROM cars, flights WHERE cars.rate = flights.rate"),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert_eq!(d.subqueries.len(), 2);
    }

    #[test]
    fn coordinator_has_most_bindings() {
        let d = decompose(
            &select(
                "SELECT a.code FROM avis.cars a, avis.cars b, continental.flights f
                 WHERE a.code = b.code AND a.rate = f.rate",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert_eq!(d.coordinator, "avis");
        // avis' subquery joins its two bindings locally.
        let avis = d.subqueries.iter().find(|s| s.database == "avis").unwrap();
        assert_eq!(avis.select.from.len(), 2);
    }

    #[test]
    fn single_db_decomposition_is_trivial() {
        let d = decompose(&select("SELECT code FROM avis.cars WHERE rate > 10"), &scope(), &gdd())
            .unwrap();
        assert_eq!(d.subqueries.len(), 1);
        assert_eq!(d.coordinator, "avis");
    }

    #[test]
    fn subqueries_in_join_are_unsupported() {
        let err = decompose(
            &select(
                "SELECT c.code FROM avis.cars c, continental.flights f
                 WHERE c.rate = f.rate AND c.code IN (SELECT code FROM cars)",
            ),
            &scope(),
            &gdd(),
        );
        assert!(matches!(err, Err(MdbsError::Unsupported(_))));
    }

    #[test]
    fn aggregates_stay_in_global_query() {
        let d = decompose(
            &select(
                "SELECT COUNT(*), MAX(c.rate) FROM avis.cars c, continental.flights f
                 WHERE c.rate < f.rate",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        let g = print_select(&d.global_query);
        assert!(g.contains("COUNT(*)"), "{g}");
        assert!(g.contains("MAX(part_avis.b_c_rate)"), "{g}");
        // Local subqueries have no aggregates.
        for s in &d.subqueries {
            assert!(!print_select(&s.select).contains("MAX("));
        }
    }

    #[test]
    fn equi_join_keys_are_extracted() {
        let d = decompose(
            &select(
                "SELECT c.code, f.flnu FROM avis.cars c, continental.flights f
                 WHERE c.rate = f.rate AND c.carst = 'available' AND c.code < f.flnu",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        // Only the cross-db *equality* is a join key: the local conjunct and
        // the `<` comparison are not.
        assert_eq!(d.join_keys.len(), 1);
        let k = &d.join_keys[0];
        assert_eq!((k.left.database.as_str(), k.left.column.as_str()), ("avis", "rate"));
        assert_eq!(k.left.part_column, "b_c_rate");
        assert_eq!((k.right.database.as_str(), k.right.column.as_str()), ("continental", "rate"));
        assert_eq!(k.right.part_column, "b_f_rate");
        assert_eq!(k.side_in("avis").unwrap().binding, "c");
        assert_eq!(k.side_opposite("avis").unwrap().binding, "f");
        assert!(k.side_in("delta").is_none());
    }

    #[test]
    fn same_database_equality_is_not_a_join_key() {
        let d = decompose(
            &select(
                "SELECT a.code FROM avis.cars a, avis.cars b, continental.flights f
                 WHERE a.code = b.code AND a.rate = f.rate",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert_eq!(d.join_keys.len(), 1, "a.code = b.code stays local to avis");
        assert_eq!(d.join_keys[0].left.column, "rate");
    }

    #[test]
    fn unknown_qualifier_is_error() {
        let err = decompose(&select("SELECT x FROM delta.flight"), &scope(), &gdd());
        assert!(matches!(err, Err(MdbsError::NotInScope(_))));
    }

    #[test]
    fn group_by_aggregation_plans_a_pushdown() {
        let d = decompose(
            &select(
                "SELECT c.cartype, COUNT(*), SUM(f.rate), AVG(c.rate)
                 FROM avis.cars c, continental.flights f
                 WHERE c.rate = f.rate GROUP BY c.cartype",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        let Some(PushdownPlan::Aggregate(p)) = &d.pushdown else {
            panic!("expected aggregate pushdown: {:?}", d.pushdown)
        };
        assert_eq!(p.sites.len(), 2);
        assert_eq!(p.slots, 1);
        assert_eq!(p.aggs.len(), 3);
        assert_eq!(p.aggs[0].kind, AggKind::CountStar);
        assert_eq!(p.aggs[1].kind, AggKind::Sum);
        assert_eq!(p.aggs[2].kind, AggKind::Avg);
        assert!(p.aggs[2].value_col.is_some() && p.aggs[2].count_col.is_some());
        // Site 0 (avis) groups by its join key and the GROUP BY key, ships
        // COUNT(*) and the AVG partial; site 1 ships SUM's partial.
        let avis = print_select(&p.sites[0].select);
        assert!(avis.contains("GROUP BY c.rate, c.cartype"), "{avis}");
        assert!(avis.contains("COUNT(*) AS agg_cnt"), "{avis}");
        assert!(avis.contains("SUM(c.rate) AS agg2_s"), "{avis}");
        assert!(avis.contains("COUNT(c.rate) AS agg2_c"), "{avis}");
        let cont = print_select(&p.sites[1].select);
        assert!(cont.contains("SUM(f.rate) AS agg1_s"), "{cont}");
        assert_eq!(p.sites[0].join_cols, vec!["b_c_rate".to_string()]);
        assert_eq!(p.sites[1].join_cols, vec!["b_f_rate".to_string()]);
        assert_eq!(p.sites[0].key_cols, vec![(0, "b_c_cartype".to_string())]);
        assert!(p.sites[1].key_cols.is_empty());
        // Output order mirrors the projection.
        assert_eq!(p.output[0], AggOutput::Key { slot: 0, name: "cartype".into() });
        assert_eq!(p.output[1], AggOutput::Agg { agg: 0, name: "count".into() });
        // The classic plan is still fully populated for fallback.
        assert!(print_select(&d.global_query).contains("part_avis"));
    }

    #[test]
    fn join_key_that_is_also_group_key_is_shipped_once() {
        let d = decompose(
            &select(
                "SELECT c.rate, COUNT(*) FROM avis.cars c, continental.flights f
                 WHERE c.rate = f.rate GROUP BY c.rate",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        let Some(PushdownPlan::Aggregate(p)) = &d.pushdown else { panic!() };
        let avis = print_select(&p.sites[0].select);
        assert_eq!(avis.matches("b_c_rate").count(), 1, "{avis}");
        assert_eq!(p.sites[0].key_cols, vec![(0, "b_c_rate".to_string())]);
    }

    #[test]
    fn unsupported_aggregate_shapes_fall_back() {
        let cases = [
            // non-equi global conjunct
            "SELECT COUNT(*) FROM avis.cars c, continental.flights f WHERE c.rate < f.rate",
            // HAVING
            "SELECT c.cartype, COUNT(*) FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate GROUP BY c.cartype HAVING COUNT(*) > 1",
            // DISTINCT aggregation
            "SELECT DISTINCT c.cartype FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate GROUP BY c.cartype",
            // COUNT(DISTINCT …)
            "SELECT COUNT(DISTINCT c.code) FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate",
            // aggregate over an expression
            "SELECT SUM(c.rate + 1) FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate",
            // projected column outside GROUP BY
            "SELECT c.code, COUNT(*) FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate GROUP BY c.cartype",
            // LIMIT without ORDER BY truncates first-seen groups, not merged
            "SELECT c.cartype, COUNT(*) FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate GROUP BY c.cartype LIMIT 2",
        ];
        for sql in cases {
            let d = decompose(&select(sql), &scope(), &gdd()).unwrap();
            assert!(d.pushdown.is_none(), "expected fallback for {sql}");
        }
    }

    #[test]
    fn ordered_limited_product_plans_a_topk_pushdown() {
        let d = decompose(
            &select(
                "SELECT c.code, f.flnu FROM avis.cars c, continental.flights f
                 WHERE c.carst = 'available'
                 ORDER BY c.code DESC, f.flnu LIMIT 5",
            ),
            &scope(),
            &gdd(),
        )
        .unwrap();
        let Some(PushdownPlan::TopK(p)) = &d.pushdown else {
            panic!("expected top-k pushdown: {:?}", d.pushdown)
        };
        assert_eq!(p.limit, 5);
        assert_eq!(p.output.len(), 2);
        assert_eq!(p.output[0], (0, "b_c_code".to_string(), "code".to_string()));
        assert_eq!(p.order_by.len(), 2);
        assert_eq!(p.order_by[0].site, 0);
        assert_eq!(p.order_by[0].order, SortOrder::Desc);
        // Each site keeps its local filter, orders by its own components and
        // caps at k.
        let avis = print_select(&p.sites[0].select);
        assert!(avis.contains("carst = 'available'"), "{avis}");
        assert!(avis.contains("ORDER BY c.code DESC"), "{avis}");
        assert!(avis.ends_with("LIMIT 5"), "{avis}");
        let cont = print_select(&p.sites[1].select);
        assert!(cont.contains("ORDER BY f.flnu"), "{cont}");
        assert!(cont.ends_with("LIMIT 5"), "{cont}");
    }

    #[test]
    fn unsupported_topk_shapes_fall_back() {
        let cases = [
            // cross-database conjunct: per-site pruning could starve pairs
            "SELECT c.code, f.flnu FROM avis.cars c, continental.flights f
             WHERE c.rate = f.rate ORDER BY c.code LIMIT 5",
            // no LIMIT
            "SELECT c.code FROM avis.cars c, continental.flights f ORDER BY c.code",
            // no ORDER BY
            "SELECT c.code FROM avis.cars c, continental.flights f LIMIT 5",
            // DISTINCT collapses across sites after pairing
            "SELECT DISTINCT c.code FROM avis.cars c, continental.flights f
             ORDER BY c.code LIMIT 5",
            // computed projection
            "SELECT c.rate + 1 FROM avis.cars c, continental.flights f
             ORDER BY c.rate LIMIT 5",
        ];
        for sql in cases {
            let d = decompose(&select(sql), &scope(), &gdd()).unwrap();
            assert!(d.pushdown.is_none(), "expected fallback for {sql}");
        }
    }
}
