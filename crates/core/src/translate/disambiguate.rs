//! Disambiguation (paper §4.3, phase 2).
//!
//! "All possible substitutions of multiple identifiers are generated and non
//! pertinent queries are discarded during disambiguation." GDD-invalid
//! substitutions are already pruned during expansion; this phase finishes
//! the job:
//!
//! * duplicate candidates (identical statements for the same database) are
//!   merged;
//! * databases with no pertinent candidate simply do not participate;
//! * if *no* database has a pertinent candidate the query is rejected;
//! * for modification statements, at most one subquery per database is
//!   enforced — the assumption §3.4 states explicitly ("MSQL queries are
//!   assumed to generate at most one subquery per database"), which the
//!   commitment machinery relies on.

use crate::error::MdbsError;
use crate::translate::expand::LocalQuery;
use msql_lang::printer::print;
use msql_lang::{QueryBody, Statement};

/// Is the statement a modification (vs. retrieval)?
fn is_modification(stmt: &Statement) -> bool {
    match stmt {
        Statement::Query(q) => !matches!(q.body, QueryBody::Select(_)),
        _ => true,
    }
}

/// Prunes and validates expanded candidates.
pub fn disambiguate(candidates: Vec<LocalQuery>) -> Result<Vec<LocalQuery>, MdbsError> {
    let mut out: Vec<LocalQuery> = Vec::with_capacity(candidates.len());
    for c in candidates {
        let duplicate = out
            .iter()
            .any(|existing| existing.database == c.database && existing.statement == c.statement);
        if !duplicate {
            out.push(c);
        }
    }
    if out.is_empty() {
        return Err(MdbsError::NotPertinent(
            "no database in scope exports the referenced objects".into(),
        ));
    }
    // One subquery per database for modifications.
    for (i, a) in out.iter().enumerate() {
        if !is_modification(&a.statement) {
            continue;
        }
        for b in &out[i + 1..] {
            if a.database == b.database {
                return Err(MdbsError::NotPertinent(format!(
                    "ambiguous substitution: database `{}` received two modification \
                     subqueries ({} / {})",
                    a.database,
                    print(&a.statement),
                    print(&b.statement),
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msql_lang::parse_statement;

    fn local(db: &str, sql: &str) -> LocalQuery {
        LocalQuery {
            database: db.to_string(),
            key: db.to_string(),
            vital: false,
            statement: parse_statement(sql).unwrap(),
        }
    }

    #[test]
    fn dedups_identical_candidates() {
        let out = disambiguate(vec![
            local("avis", "SELECT code FROM cars"),
            local("avis", "SELECT code FROM cars"),
            local("national", "SELECT vcode FROM vehicle"),
        ])
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_result_is_an_error() {
        assert!(matches!(disambiguate(Vec::new()), Err(MdbsError::NotPertinent(_))));
    }

    #[test]
    fn two_selects_per_db_are_allowed() {
        let out = disambiguate(vec![
            local("avis", "SELECT code FROM cars"),
            local("avis", "SELECT rate FROM cars"),
        ])
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn two_updates_per_db_are_rejected() {
        let err = disambiguate(vec![
            local("avis", "UPDATE cars SET rate = 1"),
            local("avis", "UPDATE cars SET rate = 2"),
        ]);
        assert!(matches!(err, Err(MdbsError::NotPertinent(_))));
    }
}
