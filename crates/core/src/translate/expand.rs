//! Multiple-identifier substitution (paper §4.3, phase 1).
//!
//! For every database in the current scope, this module derives the *local*
//! variant of the query body:
//!
//! * semantic table/column variables (`LET car.type.status BE ...`) are
//!   replaced by their positional bindings;
//! * multiple identifiers (`flight%`, `%code`) are matched against the
//!   Global Data Dictionary; "all possible substitutions of multiple
//!   identifiers are generated";
//! * optional columns (`~rate`) are dropped for databases that lack them
//!   (schema-heterogeneity resolution, §2);
//! * candidates that reference objects a database does not export are *not
//!   pertinent* and are discarded (the paper's disambiguation phase prunes
//!   them).
//!
//! The result is a list of [`LocalQuery`]s — at most a handful per database,
//! each printable as plain SQL for that database.

use crate::error::MdbsError;
use crate::scope::SessionScope;
use catalog::{GddTable, GlobalDataDictionary};
use msql_lang::*;
use std::collections::HashMap;

/// One fully qualified elementary query bound to one database.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalQuery {
    /// The target database.
    pub database: String,
    /// The scope key (alias if the USE gave one) — what COMP clauses and
    /// acceptable states refer to.
    pub key: String,
    /// Whether the database is VITAL in the scope.
    pub vital: bool,
    /// The local statement (no wildcards, no remote references).
    pub statement: Statement,
}

/// Outcome of rewriting one candidate.
enum Rejection {
    /// The candidate references something this database does not export.
    NotPertinent,
    /// A real error that must abort the whole translation.
    Hard(MdbsError),
}

impl From<MdbsError> for Rejection {
    fn from(e: MdbsError) -> Self {
        Rejection::Hard(e)
    }
}

type Rw<T> = Result<T, Rejection>;

/// Expands a query body over every database in scope.
pub fn expand(
    body: &QueryBody,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
) -> Result<Vec<LocalQuery>, MdbsError> {
    if scope.databases.is_empty() {
        return Err(MdbsError::EmptyScope);
    }
    let mut out = Vec::new();
    for (i, db) in scope.databases.iter().enumerate() {
        if !gdd.has_database(&db.database) {
            // Scope names a database the federation has not imported; that
            // is a user error, not mere non-pertinence.
            return Err(MdbsError::Catalog(format!(
                "database `{}` is in scope but not imported into the GDD",
                db.database
            )));
        }
        let statements = expand_for_db(body, scope, gdd, i)?;
        for statement in statements {
            out.push(LocalQuery {
                database: db.database.clone(),
                key: db.key().to_string(),
                vital: db.vital,
                statement,
            });
        }
    }
    Ok(out)
}

/// Expands a body for the `db_index`-th scope database; empty = not
/// pertinent.
pub fn expand_for_db(
    body: &QueryBody,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
    db_index: usize,
) -> Result<Vec<Statement>, MdbsError> {
    let db_name = scope.databases[db_index].database.clone();

    // Phase 1: per-table-reference substitution options, in traversal order.
    let mut table_refs = Vec::new();
    collect_table_refs(body, &mut table_refs);
    let mut per_ref_options: Vec<Vec<String>> = Vec::with_capacity(table_refs.len());
    for tref in &table_refs {
        let options = table_options(tref, scope, gdd, db_index)?;
        if options.is_empty() {
            return Ok(Vec::new()); // not pertinent to this database
        }
        per_ref_options.push(options);
    }

    // Phase 2: cartesian product over table choices.
    let mut candidates = Vec::new();
    for table_choice in cartesian(&per_ref_options) {
        // Resolved table definitions for this choice.
        let mut resolved: Vec<&GddTable> = Vec::new();
        for name in &table_choice {
            let t = gdd.table(&db_name, name).map_err(|e| MdbsError::Catalog(e.to_string()))?;
            if !resolved.iter().any(|r| r.name == t.name) {
                resolved.push(t);
            }
        }

        // Phase 3: wild column identifiers and their options.
        let mut wilds: Vec<WildOccurrence> = Vec::new();
        collect_wild_columns(body, scope, db_index, false, &mut wilds);
        let mut merged: Vec<(String, bool)> = Vec::new(); // (text, only_optional)
        for w in &wilds {
            match merged.iter_mut().find(|(t, _)| *t == w.text) {
                Some((_, only_opt)) => *only_opt &= w.optional,
                None => merged.push((w.text.clone(), w.optional)),
            }
        }
        let mut wild_names: Vec<String> = Vec::new();
        let mut wild_options: Vec<Vec<Option<String>>> = Vec::new();
        let mut pertinent = true;
        for (text, only_optional) in &merged {
            let pattern = WildName::new(text.clone());
            let mut options: Vec<Option<String>> = Vec::new();
            for table in &resolved {
                for col in &table.columns {
                    if pattern.matches(&col.name)
                        && !options.iter().any(|o| o.as_deref() == Some(col.name.as_str()))
                    {
                        options.push(Some(col.name.clone()));
                    }
                }
            }
            if options.is_empty() {
                if *only_optional {
                    options.push(None); // drop the optional item
                } else {
                    pertinent = false;
                    break;
                }
            }
            wild_names.push(text.clone());
            wild_options.push(options);
        }
        if !pertinent {
            continue;
        }

        // Phase 4: cartesian over wild-column choices, then rewrite.
        for wild_choice in cartesian(&wild_options) {
            let subst: HashMap<String, Option<String>> =
                wild_names.iter().cloned().zip(wild_choice.iter().cloned()).collect();
            let mut rewriter = Rewriter {
                scope,
                db_index,
                db_name: &db_name,
                assignments: table_choice.clone(),
                next_assignment: 0,
                binding_map: HashMap::new(),
                alias_heads: HashMap::new(),
                subst: &subst,
                resolved: resolved.clone(),
                select_aliases: Vec::new(),
            };
            match rewriter.rewrite_body(body) {
                Ok(stmt) => {
                    if !candidates.contains(&stmt) {
                        candidates.push(stmt);
                    }
                }
                Err(Rejection::NotPertinent) => continue,
                Err(Rejection::Hard(e)) => return Err(e),
            }
        }
    }
    Ok(candidates)
}

/// Cartesian product of option lists.
fn cartesian<T: Clone>(options: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new()];
    for opts in options {
        let mut next = Vec::with_capacity(out.len() * opts.len());
        for prefix in &out {
            for o in opts {
                let mut row = prefix.clone();
                row.push(o.clone());
                next.push(row);
            }
        }
        out = next;
    }
    out
}

// ------------------------------------------------------- table-ref collection

fn collect_table_refs<'a>(body: &'a QueryBody, out: &mut Vec<&'a TableRef>) {
    match body {
        QueryBody::Select(s) => collect_select_tables(s, out),
        QueryBody::Update(u) => {
            out.push(&u.table);
            for a in &u.assignments {
                collect_expr_tables(&a.value, out);
            }
            if let Some(w) = &u.where_clause {
                collect_expr_tables(w, out);
            }
        }
        QueryBody::Insert(i) => {
            out.push(&i.table);
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            collect_expr_tables(e, out);
                        }
                    }
                }
                InsertSource::Select(s) => collect_select_tables(s, out),
            }
        }
        QueryBody::Delete(d) => {
            out.push(&d.table);
            if let Some(w) = &d.where_clause {
                collect_expr_tables(w, out);
            }
        }
    }
}

fn collect_select_tables<'a>(s: &'a Select, out: &mut Vec<&'a TableRef>) {
    for t in &s.from {
        out.push(t);
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr_tables(expr, out);
        }
    }
    if let Some(w) = &s.where_clause {
        collect_expr_tables(w, out);
    }
    for g in &s.group_by {
        collect_expr_tables(g, out);
    }
    if let Some(h) = &s.having {
        collect_expr_tables(h, out);
    }
    for o in &s.order_by {
        collect_expr_tables(&o.expr, out);
    }
}

fn collect_expr_tables<'a>(e: &'a Expr, out: &mut Vec<&'a TableRef>) {
    match e {
        Expr::Subquery(s) => collect_select_tables(s, out),
        Expr::InSubquery { expr, subquery, .. } => {
            collect_expr_tables(expr, out);
            collect_select_tables(subquery, out);
        }
        Expr::Exists { subquery, .. } => collect_select_tables(subquery, out),
        Expr::Unary { expr, .. } => collect_expr_tables(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_expr_tables(left, out);
            collect_expr_tables(right, out);
        }
        Expr::Aggregate { arg: Some(a), .. } => collect_expr_tables(a, out),
        Expr::Function { args, .. } => {
            for a in args {
                collect_expr_tables(a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_tables(expr, out);
            for x in list {
                collect_expr_tables(x, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_expr_tables(expr, out);
            collect_expr_tables(low, out);
            collect_expr_tables(high, out);
        }
        Expr::IsNull { expr, .. } => collect_expr_tables(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_expr_tables(expr, out);
            collect_expr_tables(pattern, out);
        }
        _ => {}
    }
}

fn table_options(
    tref: &TableRef,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
    db_index: usize,
) -> Result<Vec<String>, MdbsError> {
    let db = &scope.databases[db_index];
    if let Some(q) = &tref.database {
        // Explicit database qualifier: pertinent only when it names this
        // scope element.
        let Some(target) = scope.resolve(q.as_str()) else {
            return Err(MdbsError::NotInScope(q.as_str().to_string()));
        };
        if target.database != db.database {
            return Ok(Vec::new());
        }
    }
    let name = &tref.table;
    if scope.is_table_variable(name.as_str()) {
        let Some(binding) = scope.table_binding(name.as_str(), db_index) else {
            return Ok(Vec::new());
        };
        return Ok(match gdd.table(&db.database, binding) {
            Ok(t) => vec![t.name.clone()],
            Err(_) => Vec::new(),
        });
    }
    if name.is_multiple() {
        let matches =
            gdd.match_tables(&db.database, name).map_err(|e| MdbsError::Catalog(e.to_string()))?;
        return Ok(matches.into_iter().map(|t| t.name.clone()).collect());
    }
    Ok(match gdd.table(&db.database, name.as_str()) {
        Ok(t) => vec![t.name.clone()],
        Err(_) => Vec::new(),
    })
}

// ------------------------------------------------ wild-column collection

struct WildOccurrence {
    text: String,
    optional: bool,
}

fn collect_wild_columns(
    body: &QueryBody,
    scope: &SessionScope,
    db_index: usize,
    optional_ctx: bool,
    out: &mut Vec<WildOccurrence>,
) {
    let mut push_col = |c: &ColumnRef, optional: bool, out: &mut Vec<WildOccurrence>| {
        if c.column.is_multiple()
            && scope
                .column_binding(c.table.as_ref().map(|t| t.as_str()), c.column.as_str(), db_index)
                .is_none()
        {
            out.push(WildOccurrence { text: c.column.as_str().to_string(), optional });
        }
    };
    let mut walk_expr = ExprWalker { push: &mut push_col };
    match body {
        QueryBody::Select(s) => walk_expr.select(s, optional_ctx, out),
        QueryBody::Update(u) => {
            for a in &u.assignments {
                if a.column.is_multiple() {
                    out.push(WildOccurrence {
                        text: a.column.as_str().to_string(),
                        optional: false,
                    });
                }
                walk_expr.expr(&a.value, false, out);
            }
            if let Some(w) = &u.where_clause {
                walk_expr.expr(w, false, out);
            }
        }
        QueryBody::Insert(i) => {
            for c in &i.columns {
                if c.is_multiple() {
                    out.push(WildOccurrence { text: c.as_str().to_string(), optional: false });
                }
            }
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            walk_expr.expr(e, false, out);
                        }
                    }
                }
                InsertSource::Select(s) => walk_expr.select(s, false, out),
            }
        }
        QueryBody::Delete(d) => {
            if let Some(w) = &d.where_clause {
                walk_expr.expr(w, false, out);
            }
        }
    }
}

struct ExprWalker<'f> {
    push: &'f mut dyn FnMut(&ColumnRef, bool, &mut Vec<WildOccurrence>),
}

impl<'f> ExprWalker<'f> {
    fn select(&mut self, s: &Select, optional_ctx: bool, out: &mut Vec<WildOccurrence>) {
        for item in &s.items {
            if let SelectItem::Expr { expr, optional, .. } = item {
                self.expr(expr, optional_ctx || *optional, out);
            }
        }
        if let Some(w) = &s.where_clause {
            self.expr(w, optional_ctx, out);
        }
        for g in &s.group_by {
            self.expr(g, optional_ctx, out);
        }
        if let Some(h) = &s.having {
            self.expr(h, optional_ctx, out);
        }
        for o in &s.order_by {
            self.expr(&o.expr, optional_ctx, out);
        }
    }

    fn expr(&mut self, e: &Expr, optional: bool, out: &mut Vec<WildOccurrence>) {
        match e {
            Expr::Column(c) => (self.push)(c, optional, out),
            Expr::Subquery(s) => self.select(s, optional, out),
            Expr::InSubquery { expr, subquery, .. } => {
                self.expr(expr, optional, out);
                self.select(subquery, optional, out);
            }
            Expr::Exists { subquery, .. } => self.select(subquery, optional, out),
            Expr::Unary { expr, .. } => self.expr(expr, optional, out),
            Expr::Binary { left, right, .. } => {
                self.expr(left, optional, out);
                self.expr(right, optional, out);
            }
            Expr::Aggregate { arg: Some(a), .. } => self.expr(a, optional, out),
            Expr::Function { args, .. } => {
                for a in args {
                    self.expr(a, optional, out);
                }
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr, optional, out);
                for x in list {
                    self.expr(x, optional, out);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                self.expr(expr, optional, out);
                self.expr(low, optional, out);
                self.expr(high, optional, out);
            }
            Expr::IsNull { expr, .. } => self.expr(expr, optional, out),
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr, optional, out);
                self.expr(pattern, optional, out);
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------- rewriting

struct Rewriter<'a> {
    scope: &'a SessionScope,
    db_index: usize,
    db_name: &'a str,
    /// Concrete table names per table reference, in traversal order.
    assignments: Vec<String>,
    next_assignment: usize,
    /// Original FROM name (semantic head / wild text / concrete) → binding
    /// name column qualifiers should use after rewriting.
    binding_map: HashMap<String, String>,
    /// Binding name (alias or concrete) → the original FROM name, so column
    /// qualifiers that use an alias still resolve semantic variables.
    alias_heads: HashMap<String, String>,
    /// Wild column text → chosen concrete column (None = drop optional item).
    subst: &'a HashMap<String, Option<String>>,
    resolved: Vec<&'a GddTable>,
    select_aliases: Vec<String>,
}

impl<'a> Rewriter<'a> {
    fn rewrite_body(&mut self, body: &QueryBody) -> Rw<Statement> {
        match body {
            QueryBody::Select(s) => {
                let sel = self.rewrite_select(s, true)?;
                Ok(Statement::select(sel))
            }
            QueryBody::Update(u) => {
                let table = self.rewrite_table(&u.table)?;
                let target_name = table.table.as_str().to_string();
                let mut assignments = Vec::with_capacity(u.assignments.len());
                for a in &u.assignments {
                    let column = self.rewrite_target_column(&a.column, &target_name)?;
                    let value = self.rewrite_expr(&a.value)?;
                    assignments.push(Assignment { column: WildName::new(column), value });
                }
                let where_clause = match &u.where_clause {
                    Some(w) => Some(self.rewrite_expr(w)?),
                    None => None,
                };
                Ok(Statement::update(Update { table, assignments, where_clause }))
            }
            QueryBody::Insert(i) => {
                let table = self.rewrite_table(&i.table)?;
                let target_name = table.table.as_str().to_string();
                let mut columns = Vec::with_capacity(i.columns.len());
                for c in &i.columns {
                    columns.push(WildName::new(self.rewrite_target_column(c, &target_name)?));
                }
                let source = match &i.source {
                    InsertSource::Values(rows) => {
                        let mut out_rows = Vec::with_capacity(rows.len());
                        for row in rows {
                            let mut out_row = Vec::with_capacity(row.len());
                            for e in row {
                                out_row.push(self.rewrite_expr(e)?);
                            }
                            out_rows.push(out_row);
                        }
                        InsertSource::Values(out_rows)
                    }
                    InsertSource::Select(s) => {
                        InsertSource::Select(Box::new(self.rewrite_select(s, false)?))
                    }
                };
                Ok(Statement::Query(MsqlQuery {
                    use_clause: None,
                    lets: Vec::new(),
                    body: QueryBody::Insert(Insert { table, columns, source }),
                    comps: Vec::new(),
                }))
            }
            QueryBody::Delete(d) => {
                let table = self.rewrite_table(&d.table)?;
                let where_clause = match &d.where_clause {
                    Some(w) => Some(self.rewrite_expr(w)?),
                    None => None,
                };
                Ok(Statement::Query(MsqlQuery {
                    use_clause: None,
                    lets: Vec::new(),
                    body: QueryBody::Delete(Delete { table, where_clause }),
                    comps: Vec::new(),
                }))
            }
        }
    }

    fn rewrite_table(&mut self, tref: &TableRef) -> Rw<TableRef> {
        let assigned = self
            .assignments
            .get(self.next_assignment)
            .cloned()
            .ok_or_else(|| MdbsError::Internal("table assignment underflow".into()))?;
        self.next_assignment += 1;
        let binding =
            tref.alias.clone().map(|a| a.to_ascii_lowercase()).unwrap_or_else(|| assigned.clone());
        self.binding_map.insert(tref.table.as_str().to_string(), binding.clone());
        self.alias_heads.insert(binding, tref.table.as_str().to_string());
        Ok(TableRef { database: None, table: WildName::new(assigned), alias: tref.alias.clone() })
    }

    fn rewrite_select(&mut self, s: &Select, top_level: bool) -> Rw<Select> {
        let mut from = Vec::with_capacity(s.from.len());
        for t in &s.from {
            from.push(self.rewrite_table(t)?);
        }
        if top_level {
            for item in &s.items {
                if let SelectItem::Expr { alias: Some(a), .. } = item {
                    self.select_aliases.push(a.to_ascii_lowercase());
                }
            }
        }
        let mut items = Vec::with_capacity(s.items.len());
        for item in &s.items {
            match item {
                SelectItem::Wildcard => items.push(SelectItem::Wildcard),
                SelectItem::QualifiedWildcard(t) => {
                    let mapped = self
                        .binding_map
                        .get(t.as_str())
                        .cloned()
                        .unwrap_or_else(|| t.as_str().to_string());
                    items.push(SelectItem::QualifiedWildcard(WildName::new(mapped)));
                }
                SelectItem::Expr { expr, alias, optional } => {
                    match self.rewrite_expr(expr) {
                        Ok(e) => items.push(SelectItem::Expr {
                            expr: e,
                            alias: alias.clone(),
                            // Once resolved, the column is no longer optional
                            // in the local statement.
                            optional: false,
                        }),
                        Err(Rejection::NotPertinent) if *optional => {
                            // Schema heterogeneity: this database lacks the
                            // optional column; drop the item (paper §2).
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        if items.is_empty() {
            return Err(Rejection::NotPertinent);
        }
        let where_clause = match &s.where_clause {
            Some(w) => Some(self.rewrite_expr(w)?),
            None => None,
        };
        let mut group_by = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            group_by.push(self.rewrite_expr(g)?);
        }
        let having = match &s.having {
            Some(h) => Some(self.rewrite_expr(h)?),
            None => None,
        };
        let mut order_by = Vec::with_capacity(s.order_by.len());
        for o in &s.order_by {
            order_by.push(OrderByItem { expr: self.rewrite_expr(&o.expr)?, order: o.order });
        }
        Ok(Select {
            distinct: s.distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit: s.limit,
        })
    }

    /// Rewrites a column that targets a specific table (SET / INSERT column
    /// lists).
    fn rewrite_target_column(&mut self, col: &WildName, target_table: &str) -> Rw<String> {
        let table =
            self.resolved.iter().find(|t| t.name == target_table).ok_or_else(|| {
                MdbsError::Internal(format!("unresolved target `{target_table}`"))
            })?;
        // Semantic column component?
        if let Some(bound) = self.scope.column_binding(None, col.as_str(), self.db_index) {
            let bound = bound.to_string();
            return self.validate_column_in(table, &bound);
        }
        if col.is_multiple() {
            match self.subst.get(col.as_str()) {
                Some(Some(concrete)) => {
                    let concrete = concrete.clone();
                    return self.validate_column_in(table, &concrete);
                }
                _ => return Err(Rejection::NotPertinent),
            }
        }
        self.validate_column_in(table, col.as_str())
    }

    fn validate_column_in(&self, table: &GddTable, column: &str) -> Rw<String> {
        if table.column(column).is_some() {
            Ok(column.to_string())
        } else {
            Err(Rejection::NotPertinent)
        }
    }

    fn rewrite_expr(&mut self, e: &Expr) -> Rw<Expr> {
        Ok(match e {
            Expr::Column(c) => Expr::Column(self.rewrite_column(c)?),
            Expr::Literal(_) => e.clone(),
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(self.rewrite_expr(expr)?) }
            }
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.rewrite_expr(left)?),
                op: *op,
                right: Box::new(self.rewrite_expr(right)?),
            },
            Expr::Aggregate { kind, arg, distinct } => Expr::Aggregate {
                kind: *kind,
                arg: match arg {
                    Some(a) => Some(Box::new(self.rewrite_expr(a)?)),
                    None => None,
                },
                distinct: *distinct,
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args.iter().map(|a| self.rewrite_expr(a)).collect::<Rw<Vec<_>>>()?,
            },
            Expr::Subquery(s) => Expr::Subquery(Box::new(self.rewrite_select(s, false)?)),
            Expr::InSubquery { expr, subquery, negated } => Expr::InSubquery {
                expr: Box::new(self.rewrite_expr(expr)?),
                subquery: Box::new(self.rewrite_select(subquery, false)?),
                negated: *negated,
            },
            Expr::Exists { subquery, negated } => Expr::Exists {
                subquery: Box::new(self.rewrite_select(subquery, false)?),
                negated: *negated,
            },
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(self.rewrite_expr(expr)?),
                list: list.iter().map(|x| self.rewrite_expr(x)).collect::<Rw<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::Between { expr, low, high, negated } => Expr::Between {
                expr: Box::new(self.rewrite_expr(expr)?),
                low: Box::new(self.rewrite_expr(low)?),
                high: Box::new(self.rewrite_expr(high)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(self.rewrite_expr(expr)?), negated: *negated }
            }
            Expr::Like { expr, pattern, negated } => Expr::Like {
                expr: Box::new(self.rewrite_expr(expr)?),
                pattern: Box::new(self.rewrite_expr(pattern)?),
                negated: *negated,
            },
        })
    }

    fn rewrite_column(&mut self, c: &ColumnRef) -> Rw<ColumnRef> {
        // Database qualifier: pertinent only for this database; strip it.
        if let Some(q) = &c.database {
            let Some(target) = self.scope.resolve(q.as_str()) else {
                return Err(Rejection::Hard(MdbsError::NotInScope(q.as_str().to_string())));
            };
            if target.database != self.db_name {
                return Err(Rejection::NotPertinent);
            }
        }
        let orig_qualifier = c.table.as_ref().map(|t| t.as_str().to_string());
        // Semantic column component (qualified by the variable head, by a
        // FROM alias of it, or bare).
        let sem_head = orig_qualifier
            .as_deref()
            .map(|q| self.alias_heads.get(q).map(|s| s.as_str()).unwrap_or(q));
        if let Some(bound) = self.scope.column_binding(sem_head, c.column.as_str(), self.db_index) {
            let bound = bound.to_string();
            self.validate_any(&bound)?;
            let qualifier = orig_qualifier.as_deref().map(|q| self.map_qualifier(q));
            return Ok(ColumnRef {
                database: None,
                table: qualifier.map(WildName::new),
                column: WildName::new(bound),
            });
        }
        // Wild column.
        if c.column.is_multiple() {
            match self.subst.get(c.column.as_str()) {
                Some(Some(concrete)) => {
                    let concrete = concrete.clone();
                    self.validate_any(&concrete)?;
                    let qualifier = orig_qualifier.as_deref().map(|q| self.map_qualifier(q));
                    return Ok(ColumnRef {
                        database: None,
                        table: qualifier.map(WildName::new),
                        column: WildName::new(concrete),
                    });
                }
                // A dropped optional item never reaches here (the item is
                // skipped before its expression is rewritten) — except when
                // the same wild identifier also appears in a mandatory
                // position, which makes the candidate non-pertinent.
                _ => return Err(Rejection::NotPertinent),
            }
        }
        // Concrete column: validate against resolved tables or output
        // aliases (ORDER BY may reference an alias).
        let name = c.column.as_str().to_string();
        if self.select_aliases.contains(&name) && orig_qualifier.is_none() {
            return Ok(ColumnRef::bare(name));
        }
        match &orig_qualifier {
            Some(q) => {
                let mapped = self.map_qualifier(q);
                let table = self.resolved.iter().find(|t| t.name == mapped).copied();
                match table {
                    Some(t) if t.column(&name).is_some() => Ok(ColumnRef {
                        database: None,
                        table: Some(WildName::new(mapped)),
                        column: WildName::new(name),
                    }),
                    // Qualifier may be an alias we cannot see a GddTable
                    // for; fall back to any-table validation.
                    _ => {
                        self.validate_any(&name)?;
                        Ok(ColumnRef {
                            database: None,
                            table: Some(WildName::new(mapped)),
                            column: WildName::new(name),
                        })
                    }
                }
            }
            None => {
                self.validate_any(&name)?;
                Ok(ColumnRef::bare(name))
            }
        }
    }

    fn map_qualifier(&self, q: &str) -> String {
        self.binding_map.get(q).cloned().unwrap_or_else(|| q.to_string())
    }

    fn validate_any(&self, column: &str) -> Rw<()> {
        if self.resolved.iter().any(|t| t.column(column).is_some()) {
            Ok(())
        } else {
            Err(Rejection::NotPertinent)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::GddColumn;
    use msql_lang::printer::print;
    use msql_lang::TypeName;

    /// The paper's appendix schemas in the GDD.
    fn gdd() -> GlobalDataDictionary {
        let mut g = GlobalDataDictionary::new();
        let t = |name: &str, cols: &[&str]| {
            GddTable::new(
                name,
                cols.iter().map(|c| GddColumn::new(*c, TypeName::Char(0))).collect(),
            )
        };
        g.register_database("continental", "svc1").unwrap();
        g.put_table(
            "continental",
            t("flights", &["flnu", "source", "dep", "destination", "arr", "day", "rate"]),
        )
        .unwrap();
        g.put_table("continental", t("f838", &["seatnu", "seatty", "seatstatus", "clientname"]))
            .unwrap();
        g.register_database("delta", "svc2").unwrap();
        g.put_table("delta", t("flight", &["fnu", "source", "dest", "dep", "arr", "day", "rate"]))
            .unwrap();
        g.put_table("delta", t("f747", &["snu", "sty", "sstat", "passname"])).unwrap();
        g.register_database("united", "svc3").unwrap();
        g.put_table("united", t("flight", &["fn", "sour", "dest", "depa", "arri", "day", "rates"]))
            .unwrap();
        g.put_table("united", t("fn727", &["sn", "st", "sst", "pasna"])).unwrap();
        g.register_database("avis", "svc4").unwrap();
        g.put_table(
            "avis",
            t("cars", &["code", "cartype", "rate", "carst", "from", "to", "client"]),
        )
        .unwrap();
        g.register_database("national", "svc5").unwrap();
        g.put_table("national", t("vehicle", &["vcode", "vty", "vstat", "from", "to", "client"]))
            .unwrap();
        g
    }

    fn scope(sql: &str) -> SessionScope {
        let mut s = SessionScope::new();
        let script = msql_lang::parse_script(sql).unwrap();
        for stmt in script.statements {
            match stmt {
                Statement::Use(u) => s.apply_use(&u).unwrap(),
                Statement::Let(l) => s.apply_let(&l).unwrap(),
                other => panic!("{other:?}"),
            }
        }
        s
    }

    fn body(sql: &str) -> QueryBody {
        let Statement::Query(q) = msql_lang::parse_statement(sql).unwrap() else { panic!() };
        q.body
    }

    fn printed(locals: &[LocalQuery]) -> Vec<(String, String)> {
        locals.iter().map(|l| (l.database.clone(), print(&l.statement))).collect()
    }

    #[test]
    fn paper_section2_query_expands_to_two_locals() {
        let s = scope(
            "USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat",
        );
        let locals = expand(
            &body("SELECT %code, type, ~rate FROM car WHERE status = 'available'"),
            &s,
            &gdd(),
        )
        .unwrap();
        let got = printed(&locals);
        assert_eq!(
            got,
            vec![
                (
                    "avis".to_string(),
                    "SELECT code, cartype, rate FROM cars WHERE carst = 'available'".to_string()
                ),
                (
                    "national".to_string(),
                    // national lacks a rate column: the optional item is
                    // dropped (schema heterogeneity, §2).
                    "SELECT vcode, vty FROM vehicle WHERE vstat = 'available'".to_string()
                ),
            ]
        );
    }

    #[test]
    fn paper_section32_update_expands_to_three_locals() {
        let s = scope("USE continental VITAL delta united VITAL");
        let locals = expand(
            &body(
                "UPDATE flight% SET rate% = rate% * 1.1
                 WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
            ),
            &s,
            &gdd(),
        )
        .unwrap();
        let got = printed(&locals);
        assert_eq!(
            got,
            vec![
                (
                    "continental".to_string(),
                    "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'".to_string()
                ),
                (
                    "delta".to_string(),
                    "UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio'".to_string()
                ),
                (
                    "united".to_string(),
                    "UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio'".to_string()
                ),
            ]
        );
        assert!(locals[0].vital);
        assert!(!locals[1].vital);
        assert!(locals[2].vital);
    }

    #[test]
    fn paper_section34_reservation_expands_with_subquery() {
        let s = scope(
            "USE continental delta
             LET fltab.snu.sstat.clname BE
                 f838.seatnu.seatstatus.clientname
                 f747.snu.sstat.passname",
        );
        let locals = expand(
            &body(
                "UPDATE fltab SET sstat = 'TAKEN', clname = 'wenders'
                 WHERE snu = (SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE')",
            ),
            &s,
            &gdd(),
        )
        .unwrap();
        let got = printed(&locals);
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0].1,
            "UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'wenders' \
             WHERE seatnu = (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')"
        );
        assert_eq!(
            got[1].1,
            "UPDATE f747 SET sstat = 'TAKEN', passname = 'wenders' \
             WHERE snu = (SELECT MIN(snu) FROM f747 WHERE sstat = 'FREE')"
        );
    }

    #[test]
    fn non_pertinent_database_is_skipped() {
        // `cars` exists only in avis; national produces no local query.
        let s = scope("USE avis national");
        let locals = expand(&body("SELECT code FROM cars"), &s, &gdd()).unwrap();
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].database, "avis");
    }

    #[test]
    fn db_qualified_table_restricts_pertinence() {
        let s = scope("USE avis national");
        let locals = expand(&body("SELECT vcode FROM national.vehicle"), &s, &gdd()).unwrap();
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].database, "national");
        // The local statement is unqualified.
        assert_eq!(printed(&locals)[0].1, "SELECT vcode FROM vehicle");
    }

    #[test]
    fn qualifier_outside_scope_is_an_error() {
        let s = scope("USE avis");
        assert!(matches!(
            expand(&body("SELECT x FROM continental.flights"), &s, &gdd()),
            Err(MdbsError::NotInScope(_))
        ));
    }

    #[test]
    fn empty_scope_is_an_error() {
        let s = SessionScope::new();
        assert!(matches!(
            expand(&body("SELECT code FROM cars"), &s, &gdd()),
            Err(MdbsError::EmptyScope)
        ));
    }

    #[test]
    fn unimported_database_is_a_catalog_error() {
        let s = scope("USE ghostdb");
        assert!(matches!(expand(&body("SELECT x FROM t"), &s, &gdd()), Err(MdbsError::Catalog(_))));
    }

    #[test]
    fn wild_table_with_multiple_matches_generates_all_substitutions() {
        // In continental, `f%` matches both flights and f838.
        let s = scope("USE continental");
        let locals = expand(&body("SELECT day FROM f%"), &s, &gdd()).unwrap();
        // Only flights has `day`; the f838 substitution is not pertinent.
        assert_eq!(locals.len(), 1);
        assert_eq!(printed(&locals)[0].1, "SELECT day FROM flights");

        // `f%8` matches only f838.
        let locals = expand(&body("SELECT seatnu FROM f%8"), &s, &gdd()).unwrap();
        assert_eq!(locals.len(), 1);
        assert_eq!(printed(&locals)[0].1, "SELECT seatnu FROM f838");
    }

    #[test]
    fn consistent_substitution_within_statement() {
        // rate% appears twice in the §3.2 update; both occurrences must
        // pick the same concrete column.
        let s = scope("USE united");
        let locals =
            expand(&body("UPDATE flight% SET rate% = rate% * 2 WHERE rate% > 0"), &s, &gdd())
                .unwrap();
        assert_eq!(printed(&locals)[0].1, "UPDATE flight SET rates = rates * 2 WHERE rates > 0");
    }

    #[test]
    fn optional_wild_column_dropped_when_unmatched() {
        let s = scope("USE national");
        let locals = expand(&body("SELECT vcode, ~ra% FROM vehicle"), &s, &gdd()).unwrap();
        assert_eq!(printed(&locals)[0].1, "SELECT vcode FROM vehicle");
    }

    #[test]
    fn all_items_dropped_makes_db_non_pertinent() {
        let s = scope("USE national");
        let locals = expand(&body("SELECT ~rate FROM vehicle"), &s, &gdd()).unwrap();
        assert!(locals.is_empty());
    }

    #[test]
    fn alias_preserved_and_qualifiers_mapped() {
        let s = scope(
            "USE avis national
             LET car.type BE cars.cartype vehicle.vty",
        );
        let locals =
            expand(&body("SELECT c.type FROM car c WHERE c.type = 'suv'"), &s, &gdd()).unwrap();
        assert_eq!(printed(&locals)[0].1, "SELECT c.cartype FROM cars c WHERE c.cartype = 'suv'");
        assert_eq!(printed(&locals)[1].1, "SELECT c.vty FROM vehicle c WHERE c.vty = 'suv'");
    }

    #[test]
    fn insert_and_delete_expand() {
        let s = scope("USE avis national");
        let locals =
            expand(&body("INSERT INTO %s (client) VALUES ('wenders')"), &s, &gdd()).unwrap();
        // %s matches cars (avis); vehicle does not end in s.
        assert_eq!(locals.len(), 1);
        assert_eq!(printed(&locals)[0].1, "INSERT INTO cars (client) VALUES ('wenders')");

        let locals = expand(&body("DELETE FROM vehicle WHERE vstat = 'old'"), &s, &gdd()).unwrap();
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].database, "national");
    }
}
