//! The MSQL translator: §4.3's pipeline, phase by phase.
//!
//! ```text
//! MSQL query ──▶ expand (multiple-identifier substitution)
//!            ──▶ disambiguate (discard non-pertinent)
//!            ──▶ decompose (query-graph analysis, cross-db joins only)
//!            ──▶ plangen (DOL execution plan)
//! ```

pub mod decompose;
pub mod disambiguate;
pub mod expand;
pub mod plangen;

use crate::error::MdbsError;
use crate::scope::SessionScope;
use catalog::GlobalDataDictionary;
use msql_lang::{QueryBody, Select};

pub use decompose::{
    decompose, AggKind, AggOutput, AggPushdown, AggSite, AggState, DbSubquery, Decomposition,
    JoinKey, JoinSide, PushdownPlan, TopKOrder, TopKPushdown, TopKSite,
};
pub use disambiguate::disambiguate;
pub use expand::{expand, LocalQuery};
pub use plangen::{
    multitransaction_plan, retrieval_plan, update_plan, DbRoute, GeneratedPlan, MtxQueryPlan,
    PlanTask, MTX_FAILED,
};

/// The two execution shapes a query body can translate to.
#[derive(Debug, Clone, PartialEq)]
pub enum Translated {
    /// A *multiple query*: one elementary query per pertinent database; the
    /// result of a retrieval is a multitable.
    PerDb(Vec<LocalQuery>),
    /// A single global query joining tables of several databases; partial
    /// results are collected at a coordinator.
    CrossDb(Box<Decomposition>),
}

/// Translates a query body under a scope: chooses expansion (multiple query)
/// or decomposition (cross-database join) and runs the appropriate phases.
pub fn translate_body(
    body: &QueryBody,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
) -> Result<Translated, MdbsError> {
    translate_body_traced(body, scope, gdd, &obs::Span::disabled())
}

/// [`translate_body`] with one child span per §4.3 phase (expand,
/// disambiguate, decompose) hung under `span`.
pub fn translate_body_traced(
    body: &QueryBody,
    scope: &SessionScope,
    gdd: &GlobalDataDictionary,
    span: &obs::Span,
) -> Result<Translated, MdbsError> {
    if let QueryBody::Select(sel) = body {
        if is_cross_db_join(sel, scope, gdd) {
            let phase = span.child("decompose");
            let dec = decompose(sel, scope, gdd)?;
            phase.note("subqueries", dec.subqueries.len());
            phase.note("coordinator", &dec.coordinator);
            phase.note("join_keys", dec.join_keys.len());
            return Ok(Translated::CrossDb(Box::new(dec)));
        }
    }
    let candidates = {
        let phase = span.child("expand");
        let candidates = expand(body, scope, gdd)?;
        phase.note("candidates", candidates.len());
        candidates
    };
    let phase = span.child("disambiguate");
    let pertinent = disambiguate(candidates)?;
    phase.note("pertinent", pertinent.len());
    Ok(Translated::PerDb(pertinent))
}

/// A SELECT is a cross-database join when its FROM clause contains two or
/// more concrete tables owned by distinct scope databases (by explicit
/// qualifier or unique GDD ownership). Semantic variables and wildcards keep
/// the query in the replication (multiple-query) regime.
fn is_cross_db_join(sel: &Select, scope: &SessionScope, gdd: &GlobalDataDictionary) -> bool {
    if sel.from.len() < 2 {
        return false;
    }
    let mut owners: Vec<String> = Vec::new();
    for tref in &sel.from {
        if tref.table.is_multiple() || scope.is_table_variable(tref.table.as_str()) {
            return false;
        }
        let owner = match &tref.database {
            Some(q) => match scope.resolve(q.as_str()) {
                Some(d) => d.database.clone(),
                None => return false, // let expansion raise the scope error
            },
            None => {
                let mut found: Option<String> = None;
                for d in &scope.databases {
                    if gdd.table(&d.database, tref.table.as_str()).is_ok() {
                        if found.is_some() {
                            // Owned by several databases: this is the
                            // replication case (same table everywhere).
                            return false;
                        }
                        found = Some(d.database.clone());
                    }
                }
                match found {
                    Some(db) => db,
                    None => return false,
                }
            }
        };
        if !owners.contains(&owner) {
            owners.push(owner);
        }
    }
    owners.len() >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::{GddColumn, GddTable};
    use msql_lang::{parse_statement, Statement, TypeName};

    fn gdd() -> GlobalDataDictionary {
        let mut g = GlobalDataDictionary::new();
        g.register_database("avis", "s1").unwrap();
        g.put_table(
            "avis",
            GddTable::new(
                "cars",
                vec![
                    GddColumn::new("code", TypeName::Int),
                    GddColumn::new("rate", TypeName::Float),
                ],
            ),
        )
        .unwrap();
        g.register_database("continental", "s2").unwrap();
        g.put_table(
            "continental",
            GddTable::new(
                "flights",
                vec![
                    GddColumn::new("flnu", TypeName::Int),
                    GddColumn::new("rate", TypeName::Float),
                ],
            ),
        )
        .unwrap();
        g
    }

    fn scope() -> SessionScope {
        let mut s = SessionScope::new();
        let Statement::Use(u) = parse_statement("USE avis continental").unwrap() else { panic!() };
        s.apply_use(&u).unwrap();
        s
    }

    fn body(sql: &str) -> QueryBody {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        q.body
    }

    #[test]
    fn single_table_select_goes_per_db() {
        let t = translate_body(&body("SELECT code FROM cars"), &scope(), &gdd()).unwrap();
        assert!(matches!(t, Translated::PerDb(ref v) if v.len() == 1));
    }

    #[test]
    fn qualified_cross_db_join_goes_to_decomposition() {
        let t = translate_body(
            &body("SELECT c.code FROM avis.cars c, continental.flights f WHERE c.rate = f.rate"),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert!(matches!(t, Translated::CrossDb(_)));
    }

    #[test]
    fn unqualified_unique_ownership_also_detected() {
        let t = translate_body(
            &body("SELECT code FROM cars, flights WHERE cars.rate = flights.rate"),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert!(matches!(t, Translated::CrossDb(_)));
    }

    #[test]
    fn updates_never_decompose() {
        let t = translate_body(&body("UPDATE cars SET rate = 1"), &scope(), &gdd()).unwrap();
        assert!(matches!(t, Translated::PerDb(_)));
    }

    #[test]
    fn same_db_join_goes_per_db() {
        let t = translate_body(
            &body("SELECT a.code FROM avis.cars a, avis.cars b WHERE a.code = b.code"),
            &scope(),
            &gdd(),
        )
        .unwrap();
        assert!(matches!(t, Translated::PerDb(_)));
    }
}
