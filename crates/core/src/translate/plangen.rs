//! DOL plan generation (paper §4.3, phase 4).
//!
//! Turns disambiguated local queries into DOL programs:
//!
//! * **retrieval plans** — one autocommit task per database, results
//!   collected by the engine into a multitable;
//! * **update plans** — the §3.2 vital-set semantics: vital subqueries on
//!   2PC services run `NOCOMMIT` and are committed only when *all* vital
//!   subqueries succeeded, otherwise all are rolled back; vital subqueries
//!   on autocommit-only services require a COMP clause (§3.3) and are
//!   compensated on the abort path; non-vital subqueries autocommit and
//!   never affect the outcome;
//! * **multitransaction plans** — the §3.4 acceptable-termination-state
//!   machinery: all subqueries execute (prepared where possible), then the
//!   states are tested in preference order; the first reachable one is
//!   installed by committing its members and aborting/compensating
//!   everything else.
//!
//! `DOLSTATUS` conventions: `0` = success (for multitransactions: the
//! preferred state), `1..` = index of the achieved acceptable state,
//! [`MTX_FAILED`] = no acceptable state reachable, `1` = vital update
//! aborted.

use crate::error::MdbsError;
use crate::translate::expand::LocalQuery;
use crate::wal::{DecisionPlan, WalTask};
use dol::{DolCond, DolProgram, DolStmt, TaskDef, TaskStatus};
use msql_lang::printer::print;
use std::collections::HashMap;

/// DOLSTATUS for a failed multitransaction (no acceptable state reachable).
pub const MTX_FAILED: i32 = 99;

/// Where a database lives and what its service can do — derived from the
/// GDD (service) and the Auxiliary Directory (site, commit mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbRoute {
    /// Database name.
    pub database: String,
    /// Network site of its LAM.
    pub site: String,
    /// Whether the service offers a prepared-to-commit state for DML.
    pub supports_2pc: bool,
}

/// One task of a generated plan, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTask {
    /// DOL task name.
    pub task: String,
    /// Target database.
    pub database: String,
    /// Scope key (alias or database name).
    pub key: String,
    /// VITAL designation.
    pub vital: bool,
    /// True when the task carries a compensation block.
    pub compensated: bool,
}

/// A generated DOL program plus task provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedPlan {
    /// The program.
    pub program: DolProgram,
    /// Task metadata in task order.
    pub tasks: Vec<PlanTask>,
    /// Write-ahead-log material, present for every plan with a settle phase
    /// (vital updates and multitransactions). `None` means a coordinator
    /// crash leaves nothing to recover: every task autocommits and no
    /// decision is ever taken.
    pub recovery: Option<PlanRecovery>,
}

/// Everything the executor logs at BEGIN plus the DECIDE-code translation
/// table — precomputed here so recovery never has to re-derive settle
/// semantics from DOL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRecovery {
    /// Every task with its routing and compensation, in task order.
    pub tasks: Vec<WalTask>,
    /// What each `DECIDE` code means: which tasks commit, which are
    /// compensated, which acceptable state (if any) is installed.
    pub decisions: HashMap<i32, DecisionPlan>,
    /// Acceptable termination states in preference order (task names). For
    /// vital updates: the single all-vitals state.
    pub states: Vec<Vec<String>>,
    /// Tasks the §3.4 consistency oracle covers. Non-vital update tasks are
    /// excluded: they commit under either decision, by design.
    pub oracle: Vec<String>,
    /// Tasks compensated when recovery finds no decision record and
    /// presumes abort.
    pub abort_compensate: Vec<String>,
}

fn route_for<'r>(
    routes: &'r HashMap<String, DbRoute>,
    database: &str,
) -> Result<&'r DbRoute, MdbsError> {
    routes.get(database).ok_or_else(|| {
        MdbsError::Catalog(format!("no route (service/site) known for database `{database}`"))
    })
}

fn open_statements(
    locals: &[&LocalQuery],
    routes: &HashMap<String, DbRoute>,
) -> Result<(Vec<DolStmt>, Vec<String>), MdbsError> {
    let mut opens = Vec::new();
    let mut aliases = Vec::new();
    for l in locals {
        if aliases.contains(&l.key) {
            continue;
        }
        let route = route_for(routes, &l.database)?;
        opens.push(DolStmt::Open {
            service: l.database.clone(),
            site: route.site.clone(),
            alias: l.key.clone(),
        });
        aliases.push(l.key.clone());
    }
    Ok((opens, aliases))
}

/// Generates a retrieval plan: one autocommit task per local query.
pub fn retrieval_plan(
    locals: &[LocalQuery],
    routes: &HashMap<String, DbRoute>,
) -> Result<GeneratedPlan, MdbsError> {
    let refs: Vec<&LocalQuery> = locals.iter().collect();
    let (mut statements, aliases) = open_statements(&refs, routes)?;
    let mut tasks = Vec::new();
    for (i, l) in locals.iter().enumerate() {
        let name = format!("Q{}", i + 1);
        statements.push(DolStmt::Task(TaskDef {
            name: name.clone(),
            service: l.key.clone(),
            nocommit: false,
            commands: vec![print(&l.statement)],
            compensation: Vec::new(),
        }));
        tasks.push(PlanTask {
            task: name,
            database: l.database.clone(),
            key: l.key.clone(),
            vital: l.vital,
            compensated: false,
        });
    }
    statements.push(DolStmt::SetStatus(0));
    statements.push(DolStmt::Close { aliases });
    Ok(GeneratedPlan { program: DolProgram { statements }, tasks, recovery: None })
}

/// Generates the §3.2/§3.3 vital-update plan.
///
/// `comps` maps scope keys to compensating SQL commands (from COMP clauses).
pub fn update_plan(
    locals: &[LocalQuery],
    comps: &HashMap<String, Vec<String>>,
    routes: &HashMap<String, DbRoute>,
) -> Result<GeneratedPlan, MdbsError> {
    let refs: Vec<&LocalQuery> = locals.iter().collect();
    let (mut statements, aliases) = open_statements(&refs, routes)?;
    let mut tasks = Vec::new();
    let mut wal_tasks = Vec::new();
    // Vital tasks that run prepared (2PC) vs. compensated (autocommit-only).
    let mut prepared_vitals: Vec<String> = Vec::new();
    let mut compensated_vitals: Vec<String> = Vec::new();
    let mut vitals: Vec<String> = Vec::new();

    for (i, l) in locals.iter().enumerate() {
        let name = format!("T{}", i + 1);
        let route = route_for(routes, &l.database)?;
        let compensation = comps.get(&l.key).cloned().unwrap_or_default();
        let nocommit = l.vital && route.supports_2pc;
        if l.vital && !route.supports_2pc {
            if compensation.is_empty() {
                // §3.3: "our prototype MDBS raises an error condition and
                // refuses to process the query".
                return Err(MdbsError::VitalWithoutCompensation { database: l.key.clone() });
            }
            compensated_vitals.push(name.clone());
        } else if l.vital {
            prepared_vitals.push(name.clone());
        }
        if l.vital {
            vitals.push(name.clone());
        }
        statements.push(DolStmt::Task(TaskDef {
            name: name.clone(),
            service: l.key.clone(),
            nocommit,
            commands: vec![print(&l.statement)],
            compensation: compensation.clone(),
        }));
        wal_tasks.push(WalTask {
            name: name.clone(),
            database: l.database.clone(),
            site: route.site.clone(),
            compensation: compensation.clone(),
        });
        tasks.push(PlanTask {
            task: name,
            database: l.database.clone(),
            key: l.key.clone(),
            vital: l.vital,
            compensated: !compensation.is_empty(),
        });
    }

    if prepared_vitals.is_empty() && compensated_vitals.is_empty() {
        // "If all subqueries are NON VITAL the multiple query is always
        // successful."
        statements.push(DolStmt::SetStatus(0));
    } else {
        let mut cond: Option<DolCond> = None;
        for t in &prepared_vitals {
            let c = DolCond::StatusEq { task: t.clone(), status: TaskStatus::Prepared };
            cond = Some(match cond {
                Some(acc) => DolCond::And(Box::new(acc), Box::new(c)),
                None => c,
            });
        }
        for t in &compensated_vitals {
            let c = DolCond::StatusEq { task: t.clone(), status: TaskStatus::Committed };
            cond = Some(match cond {
                Some(acc) => DolCond::And(Box::new(acc), Box::new(c)),
                None => c,
            });
        }
        // DECIDE logs the settle decision (WAL) before any second-phase
        // message goes out; recovery replays it after a coordinator crash.
        let mut then_branch = vec![DolStmt::Decide(0)];
        if !prepared_vitals.is_empty() {
            then_branch.push(DolStmt::Commit { tasks: prepared_vitals.clone() });
        }
        then_branch.push(DolStmt::SetStatus(0));
        let mut else_branch = vec![DolStmt::Decide(1)];
        if !prepared_vitals.is_empty() {
            // ABORT is a no-op for tasks that already aborted locally.
            else_branch.push(DolStmt::Abort { tasks: prepared_vitals.clone() });
        }
        for t in &compensated_vitals {
            // Compensate only the ones that actually committed.
            else_branch.push(DolStmt::If {
                cond: DolCond::StatusEq { task: t.clone(), status: TaskStatus::Committed },
                then_branch: vec![DolStmt::Compensate { task: t.clone() }],
                else_branch: Vec::new(),
            });
        }
        else_branch.push(DolStmt::SetStatus(1));
        statements.push(DolStmt::If {
            cond: cond.expect("vital set non-empty"),
            then_branch,
            else_branch,
        });
    }
    statements.push(DolStmt::Close { aliases });
    // A vital-free update never decides anything, so there is nothing to
    // log or recover; otherwise the WAL needs the decision table: DECIDE 0
    // commits the prepared vitals, DECIDE 1 rolls back and compensates the
    // autocommitted ones. The oracle covers vitals only — non-vital tasks
    // commit under either decision, by design (§3.2).
    let recovery = if vitals.is_empty() {
        None
    } else {
        Some(PlanRecovery {
            tasks: wal_tasks,
            decisions: HashMap::from([
                (
                    0,
                    DecisionPlan {
                        state: Some(0),
                        commit: prepared_vitals,
                        compensate: Vec::new(),
                    },
                ),
                (
                    1,
                    DecisionPlan {
                        state: None,
                        commit: Vec::new(),
                        compensate: compensated_vitals.clone(),
                    },
                ),
            ]),
            states: vec![vitals.clone()],
            oracle: vitals,
            abort_compensate: compensated_vitals,
        })
    };
    Ok(GeneratedPlan { program: DolProgram { statements }, tasks, recovery })
}

/// One component query of a multitransaction, ready for planning.
#[derive(Debug, Clone)]
pub struct MtxQueryPlan {
    /// The disambiguated local queries of this component.
    pub locals: Vec<LocalQuery>,
    /// COMP clauses of this component, keyed by scope key.
    pub comps: HashMap<String, Vec<String>>,
}

/// Generates the §3.4 multitransaction plan.
///
/// `states` lists the acceptable termination states in preference order,
/// each a conjunction of scope keys. Task names are the scope keys
/// themselves (the paper refers to subqueries by database name/alias).
pub fn multitransaction_plan(
    queries: &[MtxQueryPlan],
    states: &[Vec<String>],
    routes: &HashMap<String, DbRoute>,
) -> Result<GeneratedPlan, MdbsError> {
    // Flatten and check key uniqueness ("The aliasing mechanism in the USE
    // statement allows database names to be unique inside a
    // multitransaction specification").
    let mut all: Vec<(&LocalQuery, &HashMap<String, Vec<String>>)> = Vec::new();
    for q in queries {
        for l in &q.locals {
            if all.iter().any(|(existing, _)| existing.key == l.key) {
                return Err(MdbsError::Mtx(format!(
                    "scope key `{}` is used by two subqueries; alias the databases so keys \
                     are unique inside the multitransaction",
                    l.key
                )));
            }
            all.push((l, &q.comps));
        }
    }
    if all.is_empty() {
        return Err(MdbsError::Mtx("multitransaction has no pertinent subqueries".into()));
    }

    // Validate acceptable states.
    for state in states {
        if state.is_empty() {
            return Err(MdbsError::Mtx("empty acceptable state".into()));
        }
        for member in state {
            if !all.iter().any(|(l, _)| &l.key == member) {
                return Err(MdbsError::Mtx(format!(
                    "acceptable state references `{member}`, which is not a subquery of this \
                     multitransaction"
                )));
            }
        }
    }

    let refs: Vec<&LocalQuery> = all.iter().map(|(l, _)| *l).collect();
    let (mut statements, aliases) = open_statements(&refs, routes)?;
    let mut tasks = Vec::new();
    let mut wal_tasks = Vec::new();
    for (l, comps) in &all {
        let route = route_for(routes, &l.database)?;
        let compensation = comps.get(&l.key).cloned().unwrap_or_default();
        let nocommit = route.supports_2pc;
        if !route.supports_2pc && compensation.is_empty() {
            // §3.4: "If some of the accessed databases do not support 2PC,
            // compensation must be specified for all subqueries that are
            // executed on those databases."
            return Err(MdbsError::Mtx(format!(
                "database `{}` supports automatic commit only; its subquery needs a COMP clause",
                l.key
            )));
        }
        statements.push(DolStmt::Task(TaskDef {
            name: l.key.clone(),
            service: l.key.clone(),
            nocommit,
            commands: vec![print(&l.statement)],
            compensation: compensation.clone(),
        }));
        wal_tasks.push(WalTask {
            name: l.key.clone(),
            database: l.database.clone(),
            site: route.site.clone(),
            compensation: compensation.clone(),
        });
        tasks.push(PlanTask {
            task: l.key.clone(),
            database: l.database.clone(),
            key: l.key.clone(),
            vital: true, // every subquery matters to state selection
            compensated: !compensation.is_empty(),
        });
    }

    // Nested IF chain over acceptable states, in preference order.
    let all_keys: Vec<String> = all.iter().map(|(l, _)| l.key.clone()).collect();
    let comp_map: HashMap<String, bool> = all
        .iter()
        .map(|(l, comps)| {
            (l.key.clone(), comps.get(&l.key).map(|c| !c.is_empty()).unwrap_or(false))
        })
        .collect();

    // Failure branch: undo everything. DECIDE logs the decision (WAL)
    // before the first settle message; recovery replays it after a crash.
    let mut chain = vec![DolStmt::Decide(MTX_FAILED)];
    chain.extend(settle_branch(&all_keys, &[], &comp_map));
    chain.push(DolStmt::SetStatus(MTX_FAILED));

    for (idx, state) in states.iter().enumerate().rev() {
        let mut cond: Option<DolCond> = None;
        for member in state {
            // Reachable when the member prepared (2PC) or already committed
            // (autocommit + COMP).
            let c = DolCond::Or(
                Box::new(DolCond::StatusEq { task: member.clone(), status: TaskStatus::Prepared }),
                Box::new(DolCond::StatusEq { task: member.clone(), status: TaskStatus::Committed }),
            );
            cond = Some(match cond {
                Some(acc) => DolCond::And(Box::new(acc), Box::new(c)),
                None => c,
            });
        }
        let mut branch = vec![DolStmt::Decide(idx as i32)];
        branch.extend(settle_branch(&all_keys, state, &comp_map));
        branch.push(DolStmt::SetStatus(idx as i32));
        chain = vec![DolStmt::If {
            cond: cond.expect("state non-empty"),
            then_branch: branch,
            else_branch: chain,
        }];
    }
    statements.extend(chain);
    statements.push(DolStmt::Close { aliases });

    // Decision table for the WAL: DECIDE idx installs states[idx] (commit
    // its members, compensate autocommitted non-members); DECIDE 99 undoes
    // everything. Presumed abort — no decision record at all — compensates
    // every autocommitted subquery, same as DECIDE 99.
    let comp_keys = |keys: &[String]| -> Vec<String> {
        keys.iter().filter(|k| comp_map.get(*k).copied().unwrap_or(false)).cloned().collect()
    };
    let mut decisions = HashMap::new();
    for (idx, state) in states.iter().enumerate() {
        let non_members: Vec<String> =
            all_keys.iter().filter(|k| !state.contains(k)).cloned().collect();
        decisions.insert(
            idx as i32,
            DecisionPlan {
                state: Some(idx as i32),
                commit: state.clone(),
                compensate: comp_keys(&non_members),
            },
        );
    }
    decisions.insert(
        MTX_FAILED,
        DecisionPlan { state: None, commit: Vec::new(), compensate: comp_keys(&all_keys) },
    );
    let recovery = Some(PlanRecovery {
        tasks: wal_tasks,
        decisions,
        states: states.to_vec(),
        oracle: all_keys.clone(),
        abort_compensate: comp_keys(&all_keys),
    });
    Ok(GeneratedPlan { program: DolProgram { statements }, tasks, recovery })
}

/// Statements that install one termination state: commit the members,
/// abort/compensate every other subquery.
fn settle_branch(
    all_keys: &[String],
    members: &[String],
    comp_map: &HashMap<String, bool>,
) -> Vec<DolStmt> {
    let mut out = Vec::new();
    for key in all_keys {
        if members.contains(key) {
            // A prepared member commits; an autocommitted member is already
            // C and COMMIT is idempotent there.
            out.push(DolStmt::If {
                cond: DolCond::StatusEq { task: key.clone(), status: TaskStatus::Prepared },
                then_branch: vec![DolStmt::Commit { tasks: vec![key.clone()] }],
                else_branch: Vec::new(),
            });
        } else {
            out.push(DolStmt::If {
                cond: DolCond::StatusEq { task: key.clone(), status: TaskStatus::Prepared },
                then_branch: vec![DolStmt::Abort { tasks: vec![key.clone()] }],
                else_branch: Vec::new(),
            });
            if comp_map.get(key).copied().unwrap_or(false) {
                out.push(DolStmt::If {
                    cond: DolCond::StatusEq { task: key.clone(), status: TaskStatus::Committed },
                    then_branch: vec![DolStmt::Compensate { task: key.clone() }],
                    else_branch: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol::print_program;
    use msql_lang::parse_statement;

    fn local(db: &str, key: &str, vital: bool, sql: &str) -> LocalQuery {
        LocalQuery {
            database: db.to_string(),
            key: key.to_string(),
            vital,
            statement: parse_statement(sql).unwrap(),
        }
    }

    fn routes(entries: &[(&str, bool)]) -> HashMap<String, DbRoute> {
        entries
            .iter()
            .enumerate()
            .map(|(i, (db, twopc))| {
                (
                    db.to_string(),
                    DbRoute {
                        database: db.to_string(),
                        site: format!("site{}", i + 1),
                        supports_2pc: *twopc,
                    },
                )
            })
            .collect()
    }

    fn paper_locals() -> Vec<LocalQuery> {
        vec![
            local(
                "continental",
                "continental",
                true,
                "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'",
            ),
            local(
                "delta",
                "delta",
                false,
                "UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio'",
            ),
            local(
                "united",
                "united",
                true,
                "UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio'",
            ),
        ]
    }

    #[test]
    fn paper_update_plan_shape() {
        // The §4.3 golden program: T1/T3 NOCOMMIT, T2 plain, IF (T1=P) AND
        // (T3=P) THEN COMMIT/0 ELSE ABORT/1, CLOSE.
        let plan = update_plan(
            &paper_locals(),
            &HashMap::new(),
            &routes(&[("continental", true), ("delta", true), ("united", true)]),
        )
        .unwrap();
        let text = print_program(&plan.program);
        assert!(text.contains("OPEN continental AT site1 AS continental;"), "{text}");
        assert!(text.contains("TASK T1 NOCOMMIT FOR continental"), "{text}");
        assert!(text.contains("TASK T2 FOR delta"), "{text}");
        assert!(!text.contains("TASK T2 NOCOMMIT"), "{text}");
        assert!(text.contains("TASK T3 NOCOMMIT FOR united"), "{text}");
        assert!(text.contains("IF (T1=P) AND (T3=P) THEN"), "{text}");
        assert!(text.contains("COMMIT T1, T3;"), "{text}");
        assert!(text.contains("DOLSTATUS=0;"), "{text}");
        assert!(text.contains("ABORT T1, T3;"), "{text}");
        assert!(text.contains("DOLSTATUS=1;"), "{text}");
        // The decision is logged before the first settle message.
        assert!(text.find("DECIDE 0;").unwrap() < text.find("COMMIT T1, T3;").unwrap(), "{text}");
        assert!(text.find("DECIDE 1;").unwrap() < text.find("ABORT T1, T3;").unwrap(), "{text}");
        assert!(text.contains("CLOSE continental delta united;"), "{text}");
        // And it reparses.
        assert!(dol::parse_program(&text).is_ok());
    }

    #[test]
    fn vital_on_autocommit_service_requires_comp() {
        let err = update_plan(
            &paper_locals(),
            &HashMap::new(),
            &routes(&[("continental", false), ("delta", true), ("united", true)]),
        );
        assert!(matches!(err, Err(MdbsError::VitalWithoutCompensation { .. })));
    }

    #[test]
    fn comp_clause_enables_vital_on_autocommit_service() {
        let mut comps = HashMap::new();
        comps.insert(
            "continental".to_string(),
            vec!["UPDATE flights SET rate = rate / 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'".to_string()],
        );
        let plan = update_plan(
            &paper_locals(),
            &comps,
            &routes(&[("continental", false), ("delta", true), ("united", true)]),
        )
        .unwrap();
        let text = print_program(&plan.program);
        // Continental runs autocommit with a COMP block.
        assert!(text.contains("TASK T1 FOR continental"), "{text}");
        assert!(text.contains("rate / 1.1"), "{text}");
        // Success now requires T1 committed and T3 prepared.
        assert!(text.contains("IF (T3=P) AND (T1=C) THEN"), "{text}");
        // The abort path compensates T1 only if it committed.
        assert!(text.contains("IF (T1=C) THEN"), "{text}");
        assert!(text.contains("COMPENSATE T1;"), "{text}");
        assert!(dol::parse_program(&text).is_ok());
    }

    #[test]
    fn all_non_vital_is_always_successful() {
        let locals = vec![
            local("delta", "delta", false, "UPDATE flight SET rate = 1"),
            local("united", "united", false, "UPDATE flight SET rates = 1"),
        ];
        let plan =
            update_plan(&locals, &HashMap::new(), &routes(&[("delta", true), ("united", true)]))
                .unwrap();
        let text = print_program(&plan.program);
        assert!(!text.contains("IF"), "{text}");
        assert!(text.contains("DOLSTATUS=0;"), "{text}");
    }

    #[test]
    fn retrieval_plan_uses_autocommit_tasks() {
        let locals = vec![
            local("avis", "avis", false, "SELECT code FROM cars"),
            local("national", "national", false, "SELECT vcode FROM vehicle"),
        ];
        let plan =
            retrieval_plan(&locals, &routes(&[("avis", true), ("national", false)])).unwrap();
        let text = print_program(&plan.program);
        assert!(text.contains("TASK Q1 FOR avis"), "{text}");
        assert!(text.contains("TASK Q2 FOR national"), "{text}");
        assert!(!text.contains("NOCOMMIT"), "{text}");
        assert_eq!(plan.tasks.len(), 2);
    }

    #[test]
    fn missing_route_is_a_catalog_error() {
        let locals = vec![local("ghost", "ghost", false, "SELECT x FROM t")];
        assert!(matches!(retrieval_plan(&locals, &HashMap::new()), Err(MdbsError::Catalog(_))));
    }

    fn travel_agent_queries() -> Vec<MtxQueryPlan> {
        vec![
            MtxQueryPlan {
                locals: vec![
                    local(
                        "continental",
                        "continental",
                        false,
                        "UPDATE f838 SET seatstatus = 'TAKEN' WHERE seatnu = 1",
                    ),
                    local("delta", "delta", false, "UPDATE f747 SET sstat = 'TAKEN' WHERE snu = 1"),
                ],
                comps: HashMap::new(),
            },
            MtxQueryPlan {
                locals: vec![
                    local("avis", "avis", false, "UPDATE cars SET carst = 'TAKEN' WHERE code = 1"),
                    local(
                        "national",
                        "national",
                        false,
                        "UPDATE vehicle SET vstat = 'TAKEN' WHERE vcode = 1",
                    ),
                ],
                comps: HashMap::new(),
            },
        ]
    }

    #[test]
    fn multitransaction_plan_tests_states_in_order() {
        let plan = multitransaction_plan(
            &travel_agent_queries(),
            &[vec!["continental".into(), "national".into()], vec!["delta".into(), "avis".into()]],
            &routes(&[("continental", true), ("delta", true), ("avis", true), ("national", true)]),
        )
        .unwrap();
        let text = print_program(&plan.program);
        // All four subqueries run NOCOMMIT.
        for key in ["continental", "delta", "avis", "national"] {
            assert!(text.contains(&format!("TASK {key} NOCOMMIT FOR {key}")), "{text}");
        }
        // Preferred state first.
        let first = text
            .find("((continental=P) OR (continental=C)) AND ((national=P) OR (national=C))")
            .unwrap();
        let second = text.find("((delta=P) OR (delta=C)) AND ((avis=P) OR (avis=C))").unwrap();
        assert!(first < second, "{text}");
        // Preferred branch sets DOLSTATUS=0, alternative 1, failure 99.
        assert!(text.contains("DOLSTATUS=0;"), "{text}");
        assert!(text.contains("DOLSTATUS=1;"), "{text}");
        assert!(text.contains(&format!("DOLSTATUS={MTX_FAILED};")), "{text}");
        // Every settle branch (including the failure chain) logs its
        // decision before any COMMIT/ABORT goes out.
        for decision in ["DECIDE 0;", "DECIDE 1;", &format!("DECIDE {MTX_FAILED};")] {
            assert!(text.contains(decision), "{text}");
        }
        assert!(dol::parse_program(&text).is_ok());
    }

    #[test]
    fn duplicate_keys_across_queries_rejected() {
        let mut queries = travel_agent_queries();
        queries[1].locals[0].key = "continental".into();
        let err = multitransaction_plan(
            &queries,
            &[vec!["continental".into()]],
            &routes(&[("continental", true), ("delta", true), ("avis", true), ("national", true)]),
        );
        assert!(matches!(err, Err(MdbsError::Mtx(_))));
    }

    #[test]
    fn state_referencing_unknown_key_rejected() {
        let err = multitransaction_plan(
            &travel_agent_queries(),
            &[vec!["hertz".into()]],
            &routes(&[("continental", true), ("delta", true), ("avis", true), ("national", true)]),
        );
        assert!(matches!(err, Err(MdbsError::Mtx(_))));
    }

    #[test]
    fn update_plan_recovery_covers_vitals_only() {
        let mut comps = HashMap::new();
        comps.insert(
            "continental".to_string(),
            vec!["UPDATE flights SET rate = rate / 1.1".to_string()],
        );
        let plan = update_plan(
            &paper_locals(),
            &comps,
            &routes(&[("continental", false), ("delta", true), ("united", true)]),
        )
        .unwrap();
        let rec = plan.recovery.expect("vital update has recovery material");
        assert_eq!(rec.tasks.len(), 3, "all tasks are logged for routing");
        assert_eq!(rec.tasks[0].site, "site1");
        assert!(!rec.tasks[0].compensation.is_empty());
        // Oracle and the single acceptable state cover the vitals T1, T3.
        assert_eq!(rec.states, vec![vec!["T1".to_string(), "T3".to_string()]]);
        assert_eq!(rec.oracle, vec!["T1".to_string(), "T3".to_string()]);
        // DECIDE 0 commits the prepared vital; DECIDE 1 compensates the
        // autocommitted one. Presumed abort matches DECIDE 1.
        assert_eq!(rec.decisions[&0].state, Some(0));
        assert_eq!(rec.decisions[&0].commit, vec!["T3".to_string()]);
        assert_eq!(rec.decisions[&1].state, None);
        assert_eq!(rec.decisions[&1].compensate, vec!["T1".to_string()]);
        assert_eq!(rec.abort_compensate, vec!["T1".to_string()]);
    }

    #[test]
    fn non_vital_plans_have_no_recovery_material() {
        let locals = vec![local("delta", "delta", false, "UPDATE flight SET rate = 1")];
        let plan = update_plan(&locals, &HashMap::new(), &routes(&[("delta", true)])).unwrap();
        assert!(plan.recovery.is_none());
        let locals = vec![local("delta", "delta", false, "SELECT rate FROM flight")];
        let plan = retrieval_plan(&locals, &routes(&[("delta", true)])).unwrap();
        assert!(plan.recovery.is_none());
    }

    #[test]
    fn mtx_recovery_translates_each_decide_code() {
        let mut queries = travel_agent_queries();
        // avis becomes autocommit-only with a COMP clause.
        queries[1].comps.insert(
            "avis".to_string(),
            vec!["UPDATE cars SET carst = 'AVAIL' WHERE code = 1".to_string()],
        );
        let states = vec![
            vec!["continental".to_string(), "national".to_string()],
            vec!["delta".to_string(), "avis".to_string()],
        ];
        let plan = multitransaction_plan(
            &queries,
            &states,
            &routes(&[("continental", true), ("delta", true), ("avis", false), ("national", true)]),
        )
        .unwrap();
        let rec = plan.recovery.expect("multitransactions always have recovery material");
        assert_eq!(rec.states, states);
        assert_eq!(
            rec.oracle,
            vec![
                "continental".to_string(),
                "delta".to_string(),
                "avis".to_string(),
                "national".to_string()
            ]
        );
        // State 0 (continental+national): avis is an autocommitted
        // non-member, so it is compensated.
        assert_eq!(rec.decisions[&0].commit, states[0]);
        assert_eq!(rec.decisions[&0].compensate, vec!["avis".to_string()]);
        // State 1 (delta+avis): avis is a member — nothing to compensate.
        assert_eq!(rec.decisions[&1].commit, states[1]);
        assert!(rec.decisions[&1].compensate.is_empty());
        // Failure and presumed abort compensate every COMP-bearing task.
        assert_eq!(rec.decisions[&MTX_FAILED].state, None);
        assert_eq!(rec.decisions[&MTX_FAILED].compensate, vec!["avis".to_string()]);
        assert_eq!(rec.abort_compensate, vec!["avis".to_string()]);
    }

    #[test]
    fn non_2pc_subquery_needs_comp_in_multitransaction() {
        let err = multitransaction_plan(
            &travel_agent_queries(),
            &[vec!["continental".into(), "national".into()]],
            &routes(&[("continental", false), ("delta", true), ("avis", true), ("national", true)]),
        );
        assert!(matches!(err, Err(MdbsError::Mtx(_))));
    }
}
