//! Coordinator write-ahead log for multitransaction recovery.
//!
//! The paper's coordinator decides the fate of every subtransaction (§3.2,
//! §3.4) but says nothing about surviving its own death. This module closes
//! that gap: the executor appends a lifecycle record at every protocol
//! transition, *before* the corresponding second-phase message goes out, so
//! a restarted coordinator can finish what a crashed one started.
//!
//! Record grammar (one record per line, all variable tokens escaped):
//!
//! ```text
//! BEGIN <id> S <states> O <oracle> K <abort-comp> T <task>...
//! PREP <id> <task> <P|C>
//! DECIDE-COMMIT <id> <state> <commit-list> <compensate-list>
//! DECIDE-ABORT <id> <compensate-list>
//! RESOLVED <id> <task> <C|A|K|E>
//! END <id>
//! ```
//!
//! The recovery rule is **presumed abort**: a multitransaction whose log has
//! no `DECIDE-*` record is rolled back — prepared subtransactions abort,
//! autocommitted ones are compensated. Only a logged commit decision can
//! make recovery commit anything.
//!
//! Crash points are expressed against this log: a [`CrashPlan`] kills the
//! coordinator immediately **before** or **after** appending record `k`.
//! `Before(k)` models "the RPC preceding record `k` happened but the log
//! write did not" (e.g. a commit delivered whose completion was never
//! logged); `After(k)` models "the log write happened but nothing after it
//! did". The simulation harness in `crates/sim` enumerates every such point.

use crate::error::MdbsError;
use dol::{DolError, TaskDef, TaskStatus};
use obs::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One task of a logged multitransaction, with everything recovery needs to
/// reach its LAM again: routing plus the compensating SQL (§3.3) in case an
/// autocommitted task must be semantically undone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTask {
    /// DOL task name (the scope key for multitransactions).
    pub name: String,
    /// Database the task ran against.
    pub database: String,
    /// Site of that database's LAM.
    pub site: String,
    /// Compensating statements (empty when the task has none).
    pub compensation: Vec<String>,
}

/// What the settle phase does under one `DECIDE` code — precomputed by the
/// planner so the decision record carries its own semantics and recovery
/// never has to re-derive them from the plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionPlan {
    /// The acceptable-state index this decision realises; `None` marks the
    /// abort decision.
    pub state: Option<i32>,
    /// Tasks whose prepared subtransactions commit under this decision.
    pub commit: Vec<String>,
    /// Already-committed (autocommit) tasks compensated under this decision.
    pub compensate: Vec<String>,
}

/// One multitransaction lifecycle record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The multitransaction exists: its tasks (with routing and
    /// compensation), acceptable states, the task set the consistency
    /// oracle covers, and the compensation set of the presumed-abort path.
    Begin {
        /// Log-unique multitransaction id.
        mtx_id: u64,
        /// Every task, in plan order.
        tasks: Vec<WalTask>,
        /// Acceptable termination states in preference order (task names).
        states: Vec<Vec<String>>,
        /// Tasks the §3.4 consistency oracle covers (for vital updates:
        /// the vital set only).
        oracle: Vec<String>,
        /// Tasks to compensate when recovery presumes abort.
        abort_compensate: Vec<String>,
    },
    /// A task reached a settled-or-settleable first-phase outcome: `'P'`
    /// (prepared, in doubt until a decision) or `'C'` (autocommitted — can
    /// only be undone by compensation).
    TaskPrepared {
        /// Owning multitransaction.
        mtx_id: u64,
        /// The task.
        task: String,
        /// `'P'` or `'C'`.
        status: char,
    },
    /// The coordinator decided to commit acceptable state `state`. Written
    /// *before* any second-phase message.
    DecisionCommit {
        /// Owning multitransaction.
        mtx_id: u64,
        /// Index of the acceptable state being installed.
        state: i32,
        /// Tasks whose prepared subtransactions commit.
        commit: Vec<String>,
        /// Autocommitted non-member tasks to compensate.
        compensate: Vec<String>,
    },
    /// The coordinator decided to abort. Written *before* any second-phase
    /// message.
    DecisionAbort {
        /// Owning multitransaction.
        mtx_id: u64,
        /// Autocommitted tasks to compensate.
        compensate: Vec<String>,
    },
    /// A task's fate is settled at its LAM (second phase acknowledged, or
    /// re-resolved during recovery).
    TaskResolved {
        /// Owning multitransaction.
        mtx_id: u64,
        /// The task.
        task: String,
        /// Final status code (`C`/`A`/`K`/`E`).
        status: char,
    },
    /// Every task is resolved; recovery can skip this multitransaction.
    End {
        /// Owning multitransaction.
        mtx_id: u64,
    },
}

/// Escapes a token so records stay one-line and whitespace/separator free.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            ',' => out.push_str("%2C"),
            ';' => out.push_str("%3B"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`].
fn unesc(s: &str) -> Result<String, MdbsError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        let code = u8::from_str_radix(&hex, 16)
            .map_err(|_| MdbsError::Wire(format!("bad escape `%{hex}` in wal record")))?;
        out.push(code as char);
    }
    Ok(out)
}

/// Encodes a possibly-empty list as comma-joined escaped tokens (`-` when
/// empty, since records are whitespace-split).
fn enc_list(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
    }
}

fn dec_list(tok: &str) -> Result<Vec<String>, MdbsError> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    tok.split(',').map(unesc).collect()
}

fn enc_states(states: &[Vec<String>]) -> String {
    if states.is_empty() {
        "-".to_string()
    } else {
        states.iter().map(|s| enc_list(s)).collect::<Vec<_>>().join(";")
    }
}

fn dec_states(tok: &str) -> Result<Vec<Vec<String>>, MdbsError> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    tok.split(';').map(dec_list).collect()
}

fn enc_task(t: &WalTask) -> String {
    let mut fields = vec![esc(&t.name), esc(&t.database), esc(&t.site)];
    fields.extend(t.compensation.iter().map(|c| esc(c)));
    fields.join(",")
}

fn dec_task(tok: &str) -> Result<WalTask, MdbsError> {
    let fields: Vec<String> = tok.split(',').map(unesc).collect::<Result<_, _>>()?;
    let [name, database, site, compensation @ ..] = fields.as_slice() else {
        return Err(MdbsError::Wire(format!("short wal task `{tok}`")));
    };
    Ok(WalTask {
        name: name.clone(),
        database: database.clone(),
        site: site.clone(),
        compensation: compensation.to_vec(),
    })
}

fn parse_id(tok: &str) -> Result<u64, MdbsError> {
    tok.parse().map_err(|_| MdbsError::Wire(format!("bad wal mtx id `{tok}`")))
}

fn parse_status(tok: &str) -> Result<char, MdbsError> {
    let mut chars = tok.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if TaskStatus::from_code(c).is_some() => Ok(c),
        _ => Err(MdbsError::Wire(format!("bad wal status `{tok}`"))),
    }
}

impl WalRecord {
    /// The record's owning multitransaction.
    pub fn mtx_id(&self) -> u64 {
        match self {
            WalRecord::Begin { mtx_id, .. }
            | WalRecord::TaskPrepared { mtx_id, .. }
            | WalRecord::DecisionCommit { mtx_id, .. }
            | WalRecord::DecisionAbort { mtx_id, .. }
            | WalRecord::TaskResolved { mtx_id, .. }
            | WalRecord::End { mtx_id } => *mtx_id,
        }
    }

    /// Stable lower-case tag, used for metrics labels and crash-point names.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Begin { .. } => "begin",
            WalRecord::TaskPrepared { .. } => "prepared",
            WalRecord::DecisionCommit { .. } => "decision_commit",
            WalRecord::DecisionAbort { .. } => "decision_abort",
            WalRecord::TaskResolved { .. } => "resolved",
            WalRecord::End { .. } => "end",
        }
    }

    /// Serializes the record to its one-line wire form.
    pub fn encode(&self) -> String {
        match self {
            WalRecord::Begin { mtx_id, tasks, states, oracle, abort_compensate } => {
                let tasks = tasks.iter().map(enc_task).collect::<Vec<_>>().join(" T ");
                format!(
                    "BEGIN {mtx_id} S {} O {} K {} T {tasks}",
                    enc_states(states),
                    enc_list(oracle),
                    enc_list(abort_compensate),
                )
            }
            WalRecord::TaskPrepared { mtx_id, task, status } => {
                format!("PREP {mtx_id} {} {status}", esc(task))
            }
            WalRecord::DecisionCommit { mtx_id, state, commit, compensate } => {
                format!(
                    "DECIDE-COMMIT {mtx_id} {state} {} {}",
                    enc_list(commit),
                    enc_list(compensate)
                )
            }
            WalRecord::DecisionAbort { mtx_id, compensate } => {
                format!("DECIDE-ABORT {mtx_id} {}", enc_list(compensate))
            }
            WalRecord::TaskResolved { mtx_id, task, status } => {
                format!("RESOLVED {mtx_id} {} {status}", esc(task))
            }
            WalRecord::End { mtx_id } => format!("END {mtx_id}"),
        }
    }

    /// Parses one record line.
    pub fn decode(line: &str) -> Result<WalRecord, MdbsError> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["BEGIN", id, "S", states, "O", oracle, "K", abort, "T", tasks @ ..] => {
                let tasks = tasks
                    .iter()
                    .filter(|t| **t != "T")
                    .map(|t| dec_task(t))
                    .collect::<Result<_, _>>()?;
                Ok(WalRecord::Begin {
                    mtx_id: parse_id(id)?,
                    tasks,
                    states: dec_states(states)?,
                    oracle: dec_list(oracle)?,
                    abort_compensate: dec_list(abort)?,
                })
            }
            ["PREP", id, task, status] => Ok(WalRecord::TaskPrepared {
                mtx_id: parse_id(id)?,
                task: unesc(task)?,
                status: parse_status(status)?,
            }),
            ["DECIDE-COMMIT", id, state, commit, compensate] => Ok(WalRecord::DecisionCommit {
                mtx_id: parse_id(id)?,
                state: state
                    .parse()
                    .map_err(|_| MdbsError::Wire(format!("bad wal state `{state}`")))?,
                commit: dec_list(commit)?,
                compensate: dec_list(compensate)?,
            }),
            ["DECIDE-ABORT", id, compensate] => Ok(WalRecord::DecisionAbort {
                mtx_id: parse_id(id)?,
                compensate: dec_list(compensate)?,
            }),
            ["RESOLVED", id, task, status] => Ok(WalRecord::TaskResolved {
                mtx_id: parse_id(id)?,
                task: unesc(task)?,
                status: parse_status(status)?,
            }),
            ["END", id] => Ok(WalRecord::End { mtx_id: parse_id(id)? }),
            _ => Err(MdbsError::Wire(format!("unrecognized wal record `{line}`"))),
        }
    }
}

/// Backing store for the log. Implementations must make each appended line
/// durable before returning (the in-memory store's "durability" is simply
/// surviving the coordinator object; the file store survives the process).
pub trait WalStore: Send + Sync {
    /// Durably appends one encoded record.
    fn append_line(&self, line: &str) -> Result<(), String>;
    /// Reads every appended record back, in order.
    fn load(&self) -> Result<Vec<String>, String>;
}

/// In-memory store: durable across a simulated coordinator crash (the
/// `Wal` handle outlives the crashed execution), not across the process.
#[derive(Default)]
pub struct MemStore {
    lines: Mutex<Vec<String>>,
}

impl WalStore for MemStore {
    fn append_line(&self, line: &str) -> Result<(), String> {
        self.lines.lock().push(line.to_string());
        Ok(())
    }

    fn load(&self) -> Result<Vec<String>, String> {
        Ok(self.lines.lock().clone())
    }
}

/// File-backed store: one record per line, flushed on every append.
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// Opens (creating if needed) a log file.
    pub fn new(path: impl AsRef<Path>) -> Self {
        FileStore { path: path.as_ref().to_path_buf() }
    }
}

impl WalStore for FileStore {
    fn append_line(&self, line: &str) -> Result<(), String> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| e.to_string())?;
        writeln!(f, "{line}").map_err(|e| e.to_string())?;
        f.flush().map_err(|e| e.to_string())
    }

    fn load(&self) -> Result<Vec<String>, String> {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => Ok(text.lines().map(str::to_string).collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// When, relative to appending record `at`, the simulated crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWhen {
    /// The append never happens: the RPC preceding the record did, the log
    /// write did not.
    Before,
    /// The append happens; everything after it does not.
    After,
}

/// A single-shot simulated coordinator crash, armed against the next
/// occurrence of log record index `at` (counting every append since the
/// log was opened).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based index of the record the crash anchors to.
    pub at: usize,
    /// Fire before or after that record is made durable.
    pub when: CrashWhen,
}

struct WalInner {
    store: Box<dyn WalStore>,
    /// Records appended so far (the index the next append gets).
    appended: AtomicUsize,
    crash: Mutex<Option<CrashPlan>>,
    crashed: AtomicBool,
    next_mtx: AtomicU64,
    metrics: Mutex<Option<MetricsRegistry>>,
}

/// Shared handle to the coordinator's write-ahead log. Cloning shares the
/// log (and its armed crash plan) — exactly what the simulation needs to
/// keep the "disk" alive across a coordinator death.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl Default for Wal {
    fn default() -> Self {
        Wal::in_memory()
    }
}

impl Wal {
    /// A log on a fresh in-memory store.
    pub fn in_memory() -> Wal {
        Wal::with_store(Box::new(MemStore::default())).expect("memory store cannot fail")
    }

    /// A log on a file (records already present are honoured: ids continue
    /// past them and recovery sees them).
    pub fn file_backed(path: impl AsRef<Path>) -> Result<Wal, MdbsError> {
        Wal::with_store(Box::new(FileStore::new(path)))
    }

    /// Wraps an arbitrary store, scanning existing records to continue
    /// mtx-id allocation and crash-point indexing after them.
    pub fn with_store(store: Box<dyn WalStore>) -> Result<Wal, MdbsError> {
        let lines = store.load().map_err(MdbsError::Wire)?;
        let mut next_mtx = 1;
        for line in &lines {
            next_mtx = next_mtx.max(WalRecord::decode(line)?.mtx_id() + 1);
        }
        Ok(Wal {
            inner: Arc::new(WalInner {
                store,
                appended: AtomicUsize::new(lines.len()),
                crash: Mutex::new(None),
                crashed: AtomicBool::new(false),
                next_mtx: AtomicU64::new(next_mtx),
                metrics: Mutex::new(None),
            }),
        })
    }

    /// Points `wal.*` counters at a shared registry.
    pub fn attach_metrics(&self, metrics: MetricsRegistry) {
        *self.inner.metrics.lock() = Some(metrics);
    }

    /// Allocates a log-unique multitransaction id.
    pub fn next_mtx_id(&self) -> u64 {
        self.inner.next_mtx.fetch_add(1, Ordering::SeqCst)
    }

    /// Arms a single-shot crash (clearing the crashed flag of any earlier
    /// one). The plan fires at most once, then disarms itself.
    pub fn arm_crash(&self, plan: CrashPlan) {
        self.inner.crashed.store(false, Ordering::SeqCst);
        *self.inner.crash.lock() = Some(plan);
    }

    /// Whether an armed crash has fired since it was armed.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Records appended so far (== the index the next append would get).
    pub fn record_count(&self) -> usize {
        self.inner.appended.load(Ordering::SeqCst)
    }

    /// Appends one record, honouring any armed crash plan. A fired crash
    /// surfaces as [`DolError::Halted`], which aborts the DOL program (or
    /// the recovery pass) exactly where a dead coordinator would stop.
    pub fn append(&self, record: &WalRecord) -> Result<(), DolError> {
        let index = self.inner.appended.load(Ordering::SeqCst);
        let fired = {
            let mut crash = self.inner.crash.lock();
            match *crash {
                Some(plan) if plan.at == index => {
                    *crash = None;
                    Some(plan.when)
                }
                _ => None,
            }
        };
        if fired == Some(CrashWhen::Before) {
            self.inner.crashed.store(true, Ordering::SeqCst);
            return Err(DolError::Halted(format!(
                "simulated coordinator crash before wal record {index} ({})",
                record.kind()
            )));
        }
        self.inner
            .store
            .append_line(&record.encode())
            .map_err(|e| DolError::Service(format!("wal append failed: {e}")))?;
        self.inner.appended.fetch_add(1, Ordering::SeqCst);
        if let Some(metrics) = self.inner.metrics.lock().as_ref() {
            metrics.counter_add("wal.records", 1);
            metrics.counter_add(&obs::labeled("wal.records", "kind", record.kind()), 1);
        }
        if fired == Some(CrashWhen::After) {
            self.inner.crashed.store(true, Ordering::SeqCst);
            return Err(DolError::Halted(format!(
                "simulated coordinator crash after wal record {index} ({})",
                record.kind()
            )));
        }
        Ok(())
    }

    /// Reads the whole log back as typed records.
    pub fn records(&self) -> Result<Vec<WalRecord>, MdbsError> {
        self.inner
            .store
            .load()
            .map_err(MdbsError::Wire)?
            .iter()
            .map(|l| WalRecord::decode(l))
            .collect()
    }

    /// Groups the log into per-multitransaction images, in first-seen order.
    pub fn replay(&self) -> Result<Vec<MtxImage>, MdbsError> {
        let mut images: Vec<MtxImage> = Vec::new();
        for record in self.records()? {
            let id = record.mtx_id();
            let image = match images.iter_mut().find(|i| i.mtx_id == id) {
                Some(i) => i,
                None => {
                    images.push(MtxImage::new(id));
                    images.last_mut().expect("just pushed")
                }
            };
            image.apply(record);
        }
        Ok(images)
    }
}

/// The decision a log image holds for one multitransaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalDecision {
    /// Commit acceptable state `state`.
    Commit {
        /// Index of the acceptable state.
        state: i32,
        /// Tasks whose prepared subtransactions commit.
        commit: Vec<String>,
        /// Autocommitted non-member tasks to compensate.
        compensate: Vec<String>,
    },
    /// Abort (roll back / compensate everything).
    Abort {
        /// Autocommitted tasks to compensate.
        compensate: Vec<String>,
    },
}

/// Everything the log knows about one multitransaction — the input to
/// [`crate::Federation::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtxImage {
    /// The multitransaction id.
    pub mtx_id: u64,
    /// Tasks in plan order (from `BEGIN`).
    pub tasks: Vec<WalTask>,
    /// Acceptable states in task-name terms (from `BEGIN`).
    pub states: Vec<Vec<String>>,
    /// Tasks the consistency oracle covers (from `BEGIN`).
    pub oracle: Vec<String>,
    /// Tasks compensated when recovery presumes abort (from `BEGIN`).
    pub abort_compensate: Vec<String>,
    /// First-phase outcomes logged so far (`'P'` / `'C'`).
    pub prepared: HashMap<String, char>,
    /// The logged decision, if the coordinator got that far.
    pub decision: Option<WalDecision>,
    /// Final statuses logged so far.
    pub resolved: HashMap<String, char>,
    /// Whether `END` was logged (nothing left to recover).
    pub ended: bool,
}

impl MtxImage {
    fn new(mtx_id: u64) -> Self {
        MtxImage {
            mtx_id,
            tasks: Vec::new(),
            states: Vec::new(),
            oracle: Vec::new(),
            abort_compensate: Vec::new(),
            prepared: HashMap::new(),
            decision: None,
            resolved: HashMap::new(),
            ended: false,
        }
    }

    fn apply(&mut self, record: WalRecord) {
        match record {
            WalRecord::Begin { tasks, states, oracle, abort_compensate, .. } => {
                self.tasks = tasks;
                self.states = states;
                self.oracle = oracle;
                self.abort_compensate = abort_compensate;
            }
            WalRecord::TaskPrepared { task, status, .. } => {
                self.prepared.insert(task, status);
            }
            WalRecord::DecisionCommit { state, commit, compensate, .. } => {
                self.decision = Some(WalDecision::Commit { state, commit, compensate });
            }
            WalRecord::DecisionAbort { compensate, .. } => {
                self.decision = Some(WalDecision::Abort { compensate });
            }
            WalRecord::TaskResolved { task, status, .. } => {
                self.resolved.insert(task, status);
            }
            WalRecord::End { .. } => self.ended = true,
        }
    }
}

/// The [`dol::TaskObserver`] that writes protocol transitions to the log.
/// Installed by the executor on every settle-bearing plan.
pub struct WalObserver {
    wal: Wal,
    mtx_id: u64,
    decisions: HashMap<i32, DecisionPlan>,
}

impl WalObserver {
    /// An observer logging against `wal` under `mtx_id`, translating DECIDE
    /// codes via the plan's decision table.
    pub fn new(wal: Wal, mtx_id: u64, decisions: HashMap<i32, DecisionPlan>) -> Self {
        WalObserver { wal, mtx_id, decisions }
    }
}

impl dol::TaskObserver for WalObserver {
    fn task_executed(&self, task: &TaskDef, status: TaskStatus) -> Result<(), DolError> {
        match status {
            // 'P' is the in-doubt state; 'C' (autocommit) can only be undone
            // by compensation, so recovery must know it happened. Aborted or
            // errored tasks left nothing behind — presumed abort covers them.
            TaskStatus::Prepared | TaskStatus::Committed => {
                self.wal.append(&WalRecord::TaskPrepared {
                    mtx_id: self.mtx_id,
                    task: task.name.clone(),
                    status: status.code(),
                })
            }
            _ => Ok(()),
        }
    }

    fn decision(&self, code: i32) -> Result<(), DolError> {
        let plan = self
            .decisions
            .get(&code)
            .ok_or_else(|| DolError::Service(format!("no recovery plan for DECIDE {code}")))?;
        let record = match plan.state {
            Some(state) => WalRecord::DecisionCommit {
                mtx_id: self.mtx_id,
                state,
                commit: plan.commit.clone(),
                compensate: plan.compensate.clone(),
            },
            None => WalRecord::DecisionAbort {
                mtx_id: self.mtx_id,
                compensate: plan.compensate.clone(),
            },
        };
        self.wal.append(&record)
    }

    fn task_resolved(&self, task: &str, status: TaskStatus) -> Result<(), DolError> {
        self.wal.append(&WalRecord::TaskResolved {
            mtx_id: self.mtx_id,
            task: task.to_string(),
            status: status.code(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin {
                mtx_id: 1,
                tasks: vec![
                    WalTask {
                        name: "continental".into(),
                        database: "continental".into(),
                        site: "site1".into(),
                        compensation: vec!["UPDATE flights SET rate = rate / 1.1".into()],
                    },
                    WalTask {
                        name: "avis".into(),
                        database: "avis".into(),
                        site: "site4".into(),
                        compensation: vec![],
                    },
                ],
                states: vec![vec!["continental".into()], vec!["avis".into()]],
                oracle: vec!["continental".into(), "avis".into()],
                abort_compensate: vec!["continental".into()],
            },
            WalRecord::TaskPrepared { mtx_id: 1, task: "avis".into(), status: 'P' },
            WalRecord::TaskPrepared { mtx_id: 1, task: "continental".into(), status: 'C' },
            WalRecord::DecisionCommit {
                mtx_id: 1,
                state: 0,
                commit: vec!["continental".into()],
                compensate: vec![],
            },
            WalRecord::TaskResolved { mtx_id: 1, task: "continental".into(), status: 'C' },
            WalRecord::DecisionAbort { mtx_id: 2, compensate: vec!["continental".into()] },
            WalRecord::End { mtx_id: 1 },
        ]
    }

    #[test]
    fn records_roundtrip_through_text() {
        for record in sample_records() {
            let line = record.encode();
            assert_eq!(WalRecord::decode(&line).unwrap(), record, "roundtrip of `{line}`");
        }
    }

    #[test]
    fn escaping_protects_sql_with_separators() {
        let record = WalRecord::Begin {
            mtx_id: 7,
            tasks: vec![WalTask {
                name: "t".into(),
                database: "db".into(),
                site: "s".into(),
                compensation: vec!["UPDATE x SET a = 1, b = 2 WHERE c IN (3, 4); -- 100%".into()],
            }],
            states: vec![],
            oracle: vec![],
            abort_compensate: vec![],
        };
        let decoded = WalRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode("HELLO world").is_err());
        assert!(WalRecord::decode("PREP x t P").is_err());
        assert!(WalRecord::decode("PREP 1 t ?").is_err());
        assert!(WalRecord::decode("").is_err());
    }

    #[test]
    fn replay_groups_by_mtx_and_tracks_lifecycle() {
        let wal = Wal::in_memory();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        let images = wal.replay().unwrap();
        assert_eq!(images.len(), 2);
        let one = &images[0];
        assert_eq!(one.mtx_id, 1);
        assert!(one.ended);
        assert_eq!(one.tasks.len(), 2);
        assert_eq!(one.prepared.get("avis"), Some(&'P'));
        assert_eq!(one.prepared.get("continental"), Some(&'C'));
        assert!(matches!(one.decision, Some(WalDecision::Commit { state: 0, .. })));
        assert_eq!(one.resolved.get("continental"), Some(&'C'));
        let two = &images[1];
        assert_eq!(two.mtx_id, 2);
        assert!(!two.ended);
        assert!(matches!(two.decision, Some(WalDecision::Abort { .. })));
    }

    #[test]
    fn crash_before_skips_the_record_and_halts() {
        let wal = Wal::in_memory();
        wal.arm_crash(CrashPlan { at: 1, when: CrashWhen::Before });
        wal.append(&WalRecord::End { mtx_id: 1 }).unwrap();
        let err = wal.append(&WalRecord::End { mtx_id: 2 }).unwrap_err();
        assert!(matches!(err, DolError::Halted(_)), "got {err:?}");
        assert!(wal.crashed());
        assert_eq!(wal.record_count(), 1, "record 1 was never written");
        // Single shot: the next append (same index) succeeds.
        wal.append(&WalRecord::End { mtx_id: 2 }).unwrap();
        assert_eq!(wal.record_count(), 2);
    }

    #[test]
    fn crash_after_writes_the_record_then_halts() {
        let wal = Wal::in_memory();
        wal.arm_crash(CrashPlan { at: 0, when: CrashWhen::After });
        let err = wal.append(&WalRecord::End { mtx_id: 1 }).unwrap_err();
        assert!(matches!(err, DolError::Halted(_)), "got {err:?}");
        assert!(wal.crashed());
        assert_eq!(wal.record_count(), 1, "record 0 is durable");
        assert_eq!(wal.records().unwrap(), vec![WalRecord::End { mtx_id: 1 }]);
    }

    #[test]
    fn file_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mtx.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::file_backed(&path).unwrap();
            assert_eq!(wal.next_mtx_id(), 1);
            wal.append(&WalRecord::TaskPrepared { mtx_id: 1, task: "t".into(), status: 'P' })
                .unwrap();
        }
        let reopened = Wal::file_backed(&path).unwrap();
        assert_eq!(reopened.record_count(), 1);
        assert_eq!(
            reopened.records().unwrap(),
            vec![WalRecord::TaskPrepared { mtx_id: 1, task: "t".into(), status: 'P' }]
        );
        assert_eq!(reopened.next_mtx_id(), 2, "ids continue past logged mtxs");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observer_translates_decide_codes() {
        let wal = Wal::in_memory();
        let decisions = HashMap::from([
            (
                0,
                DecisionPlan {
                    state: Some(0),
                    commit: vec!["a".into()],
                    compensate: vec!["b".into()],
                },
            ),
            (99, DecisionPlan { state: None, commit: vec![], compensate: vec!["b".into()] }),
        ]);
        let obs = WalObserver::new(wal.clone(), 5, decisions);
        use dol::TaskObserver;
        let def = TaskDef {
            name: "a".into(),
            service: "a".into(),
            nocommit: true,
            commands: vec![],
            compensation: vec![],
        };
        obs.task_executed(&def, TaskStatus::Prepared).unwrap();
        obs.task_executed(&def, TaskStatus::Aborted).unwrap(); // not logged
        obs.decision(0).unwrap();
        obs.decision(99).unwrap();
        obs.task_resolved("a", TaskStatus::Committed).unwrap();
        assert!(obs.decision(42).is_err(), "unknown code is a planner bug");
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 4);
        assert!(matches!(records[0], WalRecord::TaskPrepared { status: 'P', .. }));
        assert!(matches!(records[1], WalRecord::DecisionCommit { state: 0, .. }));
        assert!(matches!(records[2], WalRecord::DecisionAbort { .. }));
        assert!(matches!(records[3], WalRecord::TaskResolved { status: 'C', .. }));
    }
}
