//! Text wire format for values, result sets and exported schemas.
//!
//! The paper's components exchange "messages, data and command files"; this
//! module defines the line-oriented text encodings used between the engine
//! and the LAMs:
//!
//! * result sets (partial query results shipped to the coordinator and final
//!   results returned to the user);
//! * Local Conceptual Schemas (answering `SCHEMA` requests for IMPORT).
//!
//! Encodings are escaped so arbitrary strings (including `|`, newlines and
//! backslashes) survive a round trip; every encoder has a matching decoder
//! and the pair is covered by tests.

use crate::error::MdbsError;
use catalog::{GddColumn, GddTable};
use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::stats::{ColumnStats, TableStats};
use ldbs::value::{DataType, Value};
use msql_lang::TypeName;

// ----------------------------------------------------------------- escaping

/// Escapes `\`, `|` and newlines.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]. Errors carry the byte offset of the offending
/// backslash so a corrupt field inside a large payload can be located.
pub fn unescape(s: &str) -> Result<String, MdbsError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((pos, c)) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some((_, '\\')) => out.push('\\'),
            Some((_, 'p')) => out.push('|'),
            Some((_, 'n')) => out.push('\n'),
            Some((_, 'r')) => out.push('\r'),
            Some((_, other)) => {
                return Err(MdbsError::Wire(format!(
                    "bad escape sequence `\\{other}` at byte {pos}"
                )));
            }
            None => {
                return Err(MdbsError::Wire(format!("trailing backslash at byte {pos}")));
            }
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------- values

/// Encodes one value.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        Value::Float(f) => format!("F:{f:?}"),
        Value::Str(s) => format!("S:{}", escape(s)),
        Value::Bool(b) => format!("B:{}", u8::from(*b)),
    }
}

/// Decodes one value.
pub fn decode_value(s: &str) -> Result<Value, MdbsError> {
    if s == "N" {
        return Ok(Value::Null);
    }
    let (tag, rest) =
        s.split_once(':').ok_or_else(|| MdbsError::Wire(format!("bad value encoding `{s}`")))?;
    match tag {
        "I" => {
            rest.parse().map(Value::Int).map_err(|_| MdbsError::Wire(format!("bad int `{rest}`")))
        }
        "F" => rest
            .parse()
            .map(Value::Float)
            .map_err(|_| MdbsError::Wire(format!("bad float `{rest}`"))),
        "S" => Ok(Value::Str(unescape(rest)?)),
        "B" => match rest {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            _ => Err(MdbsError::Wire(format!("bad bool `{rest}`"))),
        },
        _ => Err(MdbsError::Wire(format!("unknown value tag `{tag}`"))),
    }
}

// -------------------------------------------------------------- data types

/// Encodes a data type.
pub fn encode_type(t: DataType) -> String {
    match t {
        DataType::Int => "int".to_string(),
        DataType::Float => "float".to_string(),
        DataType::Char(w) => format!("char({w})"),
        DataType::Bool => "bool".to_string(),
        DataType::Date => "date".to_string(),
    }
}

/// Decodes a data type.
pub fn decode_type(s: &str) -> Result<DataType, MdbsError> {
    match s {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "bool" => Ok(DataType::Bool),
        "date" => Ok(DataType::Date),
        other => {
            if let Some(w) = other.strip_prefix("char(").and_then(|r| r.strip_suffix(')')) {
                let width: u32 =
                    w.parse().map_err(|_| MdbsError::Wire(format!("bad char width `{w}`")))?;
                return Ok(DataType::Char(width));
            }
            Err(MdbsError::Wire(format!("unknown type `{other}`")))
        }
    }
}

// ------------------------------------------------------------- result sets

/// Serializes a result set.
///
/// ```text
/// COLS name:type|name:type
/// R v|v|v
/// R v|v|v
/// ```
pub fn encode_result_set(rs: &ResultSet) -> String {
    let mut out = String::from("COLS ");
    let cols: Vec<String> = rs
        .columns
        .iter()
        .map(|c| format!("{}:{}", escape(&c.name), encode_type(c.data_type)))
        .collect();
    out.push_str(&cols.join("|"));
    out.push('\n');
    for row in &rs.rows {
        out.push_str("R ");
        let vals: Vec<String> = row.iter().map(encode_value).collect();
        out.push_str(&vals.join("|"));
        out.push('\n');
    }
    out
}

/// Splits an encoded record on unescaped `|`.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            current.push('\\');
            current.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '|' {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    if escaped {
        current.push('\\');
    }
    fields.push(current);
    fields
}

/// Deserializes a result set.
pub fn decode_result_set(text: &str) -> Result<ResultSet, MdbsError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| MdbsError::Wire("empty result set payload".into()))?;
    let cols_text = header
        .strip_prefix("COLS ")
        .or_else(|| (header == "COLS").then_some(""))
        .ok_or_else(|| MdbsError::Wire(format!("bad result header `{header}`")))?;
    let mut columns = Vec::new();
    if !cols_text.is_empty() {
        for field in split_fields(cols_text) {
            let (name, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| MdbsError::Wire(format!("bad column `{field}`")))?;
            columns.push(ColumnMeta { name: unescape(name)?, data_type: decode_type(ty)? });
        }
    }
    let mut rows = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let row_text = line
            .strip_prefix("R ")
            .or_else(|| (line == "R").then_some(""))
            .ok_or_else(|| MdbsError::Wire(format!("bad row line `{line}`")))?;
        let mut row = Vec::new();
        if !row_text.is_empty() {
            for field in split_fields(row_text) {
                row.push(decode_value(&field)?);
            }
        }
        if row.len() != columns.len() {
            return Err(MdbsError::Wire(format!(
                "row has {} values for {} columns",
                row.len(),
                columns.len()
            )));
        }
        rows.push(row);
    }
    Ok(ResultSet { columns, rows })
}

// ------------------------------------------------------------------ schemas

fn encode_type_name(t: TypeName) -> String {
    match t {
        TypeName::Int => "int".to_string(),
        TypeName::Float => "float".to_string(),
        TypeName::Char(w) => format!("char({w})"),
        TypeName::Bool => "bool".to_string(),
        TypeName::Date => "date".to_string(),
    }
}

fn decode_type_name(s: &str) -> Result<TypeName, MdbsError> {
    Ok(match decode_type(s)? {
        DataType::Int => TypeName::Int,
        DataType::Float => TypeName::Float,
        DataType::Char(w) => TypeName::Char(w),
        DataType::Bool => TypeName::Bool,
        DataType::Date => TypeName::Date,
    })
}

/// Serializes a Local Conceptual Schema (the answer to a `SCHEMA` request).
///
/// ```text
/// TABLE cars code:int|cartype:char(16)
/// VIEW available code:int
/// ```
pub fn encode_schema(tables: &[GddTable]) -> String {
    let mut out = String::new();
    for t in tables {
        out.push_str(if t.is_view { "VIEW " } else { "TABLE " });
        out.push_str(&escape(&t.name));
        out.push(' ');
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|c| format!("{}:{}", escape(&c.name), encode_type_name(c.type_name)))
            .collect();
        out.push_str(&cols.join("|"));
        out.push('\n');
    }
    out
}

/// Deserializes a Local Conceptual Schema.
pub fn decode_schema(text: &str) -> Result<Vec<GddTable>, MdbsError> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (is_view, rest) = if let Some(r) = line.strip_prefix("TABLE ") {
            (false, r)
        } else if let Some(r) = line.strip_prefix("VIEW ") {
            (true, r)
        } else {
            return Err(MdbsError::Wire(format!("bad schema line `{line}`")));
        };
        let (name, cols_text) = rest
            .split_once(' ')
            .ok_or_else(|| MdbsError::Wire(format!("bad schema line `{line}`")))?;
        let mut columns = Vec::new();
        for field in split_fields(cols_text) {
            let (cname, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| MdbsError::Wire(format!("bad schema column `{field}`")))?;
            columns.push(GddColumn::new(unescape(cname)?, decode_type_name(ty)?));
        }
        let mut table = GddTable::new(unescape(name)?, columns);
        table.is_view = is_view;
        out.push(table);
    }
    Ok(out)
}

// --------------------------------------------------------------- statistics

/// One table's optimizer statistics as exported by a site (the answer to a
/// `STATS` request): the snapshot itself plus the staleness counter the
/// coordinator uses to decide how much to trust it.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteTableStats {
    /// Table name (lowercase).
    pub table: String,
    /// Mutations applied since the snapshot was collected.
    pub dml_since: u64,
    /// The statistics snapshot.
    pub stats: TableStats,
}

/// Serializes exported statistics. Only analyzed tables appear — a table
/// that was never `ANALYZE`d is simply absent, telling the coordinator to
/// fall back to heuristics.
///
/// ```text
/// TABLE cars 1000 7
/// COL code|997|0|I:1|I:1000|I:125|I:250|...
/// ```
///
/// `COL` fields: name, NDV, null count, min, max, then the equi-depth
/// histogram bounds. Absent min/max (empty column) encode as `-`.
pub fn encode_stats(tables: &[SiteTableStats]) -> String {
    let mut out = String::new();
    for t in tables {
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("TABLE {} {} {}\n", escape(&t.table), t.stats.row_count, t.dml_since),
        );
        for c in &t.stats.columns {
            let mut fields = vec![
                escape(&c.name),
                c.ndv.to_string(),
                c.null_count.to_string(),
                c.min.as_ref().map_or_else(|| "-".to_string(), encode_value),
                c.max.as_ref().map_or_else(|| "-".to_string(), encode_value),
            ];
            fields.extend(c.histogram.iter().map(encode_value));
            out.push_str("COL ");
            out.push_str(&fields.join("|"));
            out.push('\n');
        }
    }
    out
}

/// Deserializes exported statistics.
pub fn decode_stats(text: &str) -> Result<Vec<SiteTableStats>, MdbsError> {
    fn parse_u64(s: &str, what: &str) -> Result<u64, MdbsError> {
        s.parse().map_err(|_| MdbsError::Wire(format!("bad {what} `{s}`")))
    }
    fn opt_value(s: &str) -> Result<Option<Value>, MdbsError> {
        if s == "-" {
            Ok(None)
        } else {
            decode_value(s).map(Some)
        }
    }
    let mut out: Vec<SiteTableStats> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("TABLE ") {
            let mut words = rest.split(' ');
            let (name, rows, dml) = match (words.next(), words.next(), words.next(), words.next()) {
                (Some(n), Some(r), Some(d), None) => (n, r, d),
                _ => return Err(MdbsError::Wire(format!("bad stats table line `{line}`"))),
            };
            out.push(SiteTableStats {
                table: unescape(name)?,
                dml_since: parse_u64(dml, "staleness counter")?,
                stats: TableStats { row_count: parse_u64(rows, "row count")?, columns: Vec::new() },
            });
        } else if let Some(rest) = line.strip_prefix("COL ") {
            let current = out
                .last_mut()
                .ok_or_else(|| MdbsError::Wire("stats COL line before any TABLE".into()))?;
            let fields = split_fields(rest);
            if fields.len() < 5 {
                return Err(MdbsError::Wire(format!("bad stats column line `{line}`")));
            }
            let mut histogram = Vec::with_capacity(fields.len() - 5);
            for f in &fields[5..] {
                histogram.push(decode_value(f)?);
            }
            current.stats.columns.push(ColumnStats {
                name: unescape(&fields[0])?,
                ndv: parse_u64(&fields[1], "ndv")?,
                null_count: parse_u64(&fields[2], "null count")?,
                min: opt_value(&fields[3])?,
                max: opt_value(&fields[4])?,
                histogram,
            });
        } else {
            return Err(MdbsError::Wire(format!("bad stats line `{line}`")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(1.25),
            Value::Float(1.0 / 3.0),
            Value::Str("plain".into()),
            Value::Str("pipes | and \\ slashes\nnewlines".into()),
            Value::Str(String::new()),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            let enc = encode_value(&v);
            assert_eq!(decode_value(&enc).unwrap(), v, "encoded: {enc}");
        }
    }

    #[test]
    fn type_roundtrip() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Char(0),
            DataType::Char(255),
            DataType::Bool,
            DataType::Date,
        ] {
            assert_eq!(decode_type(&encode_type(t)).unwrap(), t);
        }
    }

    #[test]
    fn result_set_roundtrip() {
        let rs = ResultSet {
            columns: vec![
                ColumnMeta { name: "code".into(), data_type: DataType::Int },
                ColumnMeta { name: "weird|name".into(), data_type: DataType::Char(10) },
            ],
            rows: vec![
                vec![Value::Int(1), Value::Str("a|b".into())],
                vec![Value::Null, Value::Str("line\nbreak".into())],
            ],
        };
        let enc = encode_result_set(&rs);
        assert_eq!(decode_result_set(&enc).unwrap(), rs);
    }

    #[test]
    fn empty_result_set_roundtrip() {
        let rs = ResultSet { columns: vec![], rows: vec![] };
        let enc = encode_result_set(&rs);
        let back = decode_result_set(&enc).unwrap();
        assert!(back.columns.is_empty() && back.rows.is_empty());
    }

    #[test]
    fn arity_mismatch_detected() {
        let bad = "COLS a:int|b:int\nR I:1\n";
        assert!(matches!(decode_result_set(bad), Err(MdbsError::Wire(_))));
    }

    #[test]
    fn schema_roundtrip() {
        let mut view = GddTable::new("avail", vec![GddColumn::new("code", TypeName::Int)]);
        view.is_view = true;
        let tables = vec![
            GddTable::new(
                "cars",
                vec![
                    GddColumn::new("code", TypeName::Int),
                    GddColumn::new("cartype", TypeName::Char(16)),
                    GddColumn::new("rate", TypeName::Float),
                ],
            ),
            view,
        ];
        let enc = encode_schema(&tables);
        assert_eq!(decode_schema(&enc).unwrap(), tables);
    }

    #[test]
    fn stats_roundtrip() {
        let tables = vec![
            SiteTableStats {
                table: "cars".into(),
                dml_since: 7,
                stats: TableStats {
                    row_count: 1000,
                    columns: vec![
                        ColumnStats {
                            name: "code".into(),
                            ndv: 997,
                            null_count: 0,
                            min: Some(Value::Int(1)),
                            max: Some(Value::Int(1000)),
                            histogram: vec![Value::Int(125), Value::Int(1000)],
                        },
                        ColumnStats {
                            name: "weird|name".into(),
                            ndv: 2,
                            null_count: 3,
                            min: Some(Value::Str("a|b".into())),
                            max: Some(Value::Str("z\nz".into())),
                            histogram: vec![],
                        },
                    ],
                },
            },
            SiteTableStats {
                table: "empty".into(),
                dml_since: 0,
                stats: TableStats {
                    row_count: 0,
                    columns: vec![ColumnStats {
                        name: "x".into(),
                        ndv: 0,
                        null_count: 0,
                        min: None,
                        max: None,
                        histogram: vec![],
                    }],
                },
            },
        ];
        let enc = encode_stats(&tables);
        assert_eq!(decode_stats(&enc).unwrap(), tables);
        // An empty export is a valid "no statistics" answer.
        assert_eq!(decode_stats("").unwrap(), Vec::new());
    }

    #[test]
    fn bad_stats_rejected() {
        assert!(decode_stats("COL a|1|0|-|-").is_err(), "COL before TABLE");
        assert!(decode_stats("TABLE cars 10").is_err(), "missing staleness");
        assert!(decode_stats("TABLE cars ten 0").is_err(), "bad row count");
        assert!(decode_stats("TABLE cars 10 0\nCOL a|1|0|-").is_err(), "too few fields");
        assert!(decode_stats("TABLE cars 10 0\nCOL a|1|0|-|Q:9").is_err(), "bad value");
        assert!(decode_stats("GRBL").is_err(), "unknown line");
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode_value("X:1").is_err());
        assert!(decode_value("I:notanint").is_err());
        assert!(decode_result_set("nonsense").is_err());
        assert!(decode_schema("GRBL x y").is_err());
        assert!(decode_type("char(abc)").is_err());
    }

    #[test]
    fn bad_escapes_report_the_offset() {
        let err = unescape("abc\\x").unwrap_err().to_string();
        assert!(err.contains("`\\x`") && err.contains("byte 3"), "got: {err}");
        let err = unescape("abcd\\").unwrap_err().to_string();
        assert!(err.contains("trailing backslash") && err.contains("byte 4"), "got: {err}");
        // Offsets are byte offsets, robust to preceding multi-byte chars.
        let err = unescape("é\\q").unwrap_err().to_string();
        assert!(err.contains("byte 2"), "got: {err}");
    }
}
