//! Property tests for the binary wire codec — and the text-proto roundtrip
//! cases the original suite was missing.
//!
//! Every `Request`/`Response` variant and random `Value`s (NULLs,
//! negative/extreme ints, floats, strings containing `|`, `\n`, `\\`,
//! unicode) must satisfy `decode(encode(x)) == x` under *both* formats: the
//! line-oriented text proto and the length-prefixed binary frames.

use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::value::{DataType, Value};
use mdbs::codec::{columnar, decode_request, decode_response, encode_request, encode_response};
use mdbs::proto::{Request, Response, TaskMode};
use mdbs::wire;
use netsim::BufferPool;
use proptest::prelude::*;

/// Strings the *text* proto can carry in escaped positions (commands, SQL,
/// error messages): anything non-blank. The escaper handles `|`, `\n`, `\r`
/// and `\\`; blank-only commands are dropped by the line codec.
fn nasty_string() -> impl Strategy<Value = String> {
    prop_oneof![
        ".{1,40}",
        // Force the troublemakers in: pipes, newlines, backslashes, unicode.
        Just("a|b\\p|c".to_string()),
        Just("line1\nline2\r\n\\n not a newline".to_string()),
        Just("trailing backslash \\".to_string()),
        Just("überflüssig — ユニコード 🚗".to_string()),
        Just("|\n\\|\n|".to_string()),
    ]
    .prop_filter("non-blank, no bare CR lines", |s| {
        !s.trim().is_empty() && s.lines().all(|l| !l.trim().is_empty())
    })
}

/// Single-token identifiers (task names, databases, tables) — the text
/// header lines split on whitespace.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_map(|s| s)
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(i64::MAX)),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        Just(Value::Float(-0.0)),
        nasty_string().prop_map(Value::Str),
        Just(Value::Str(String::new())),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn type_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        (0u32..1000).prop_map(DataType::Char),
        Just(DataType::Bool),
        Just(DataType::Date),
    ]
}

/// A random result set, serialized canonically — what real payload fields
/// carry.
fn payload_strategy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((ident(), type_strategy()), 1..4),
        proptest::collection::vec(value_strategy(), 0..24),
    )
        .prop_map(|(cols, values)| {
            let ncols = cols.len();
            let columns: Vec<ColumnMeta> =
                cols.into_iter().map(|(name, data_type)| ColumnMeta { name, data_type }).collect();
            let rows: Vec<Vec<Value>> =
                values.chunks_exact(ncols).map(|chunk| chunk.to_vec()).collect();
            wire::encode_result_set(&ResultSet { columns, rows })
        })
}

fn commands_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(nasty_string(), 0..4)
}

/// Every request variant, constrained only as the *text* format demands, so
/// one generated value exercises both codecs.
fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (ident(), ident()).prop_map(|(name, database)| Request::Begin { name, database }),
        (ident(), commands_strategy())
            .prop_map(|(task, commands)| Request::Exec { task, commands }),
        ident().prop_map(|task| Request::Prepare { task }),
        (ident(), any::<bool>(), ident(), commands_strategy()).prop_map(
            |(name, nocommit, database, commands)| Request::Task {
                name,
                mode: if nocommit { TaskMode::NoCommit } else { TaskMode::Auto },
                database,
                commands,
            }
        ),
        ident().prop_map(|task| Request::Commit { task }),
        ident().prop_map(|task| Request::Abort { task }),
        (ident(), any::<bool>()).prop_map(|(task, commit)| Request::Resolve { task, commit }),
        (ident(), ident(), commands_strategy()).prop_map(|(task, database, commands)| {
            Request::Compensate { task, database, commands }
        }),
        (ident(), nasty_string(), proptest::option::of(nasty_string()))
            .prop_map(|(database, sql, baseline)| Request::Partial { database, sql, baseline }),
        (ident(), nasty_string(), proptest::option::of(nasty_string()))
            .prop_map(|(database, sql, baseline)| Request::PartialAgg { database, sql, baseline }),
        ident().prop_map(|database| Request::Schema { database }),
        (ident(), ident(), payload_strategy())
            .prop_map(|(database, table, payload)| { Request::Load { database, table, payload } }),
        (ident(), ident()).prop_map(|(database, table)| Request::DropTemp { database, table }),
        (ident(), proptest::collection::vec((ident(), payload_strategy()), 0..3))
            .prop_map(|(database, parts)| Request::LoadMany { database, parts }),
        (ident(), proptest::collection::vec(ident(), 0..4))
            .prop_map(|(database, tables)| Request::DropMany { database, tables }),
        Just(Request::Ping),
        Just(Request::Shutdown),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            prop::sample::select(vec!['P', 'C', 'A', 'E', 'K']),
            any::<u64>(),
            proptest::option::of(payload_strategy()),
            proptest::option::of(nasty_string()),
        )
            .prop_map(|(status, affected, payload, error)| {
                // The text format cannot distinguish Some("") from None.
                let payload = payload.filter(|p| !p.is_empty());
                Response::TaskDone { status, affected, payload, error }
            }),
        (
            proptest::option::of(payload_strategy()),
            proptest::option::of(nasty_string()),
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(prop::sample::select(vec!["probe", "scan"])),
        )
            .prop_map(|(payload, error, full_rows, full_bytes, access)| {
                let payload = payload.filter(|p| !p.is_empty());
                Response::PartialDone {
                    payload,
                    error,
                    full_rows,
                    full_bytes,
                    access: access.map(str::to_string),
                }
            }),
        (
            proptest::option::of(payload_strategy()),
            proptest::option::of(nasty_string()),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(payload, error, groups, full_rows, full_bytes)| {
                let payload = payload.filter(|p| !p.is_empty());
                Response::PartialAggDone { payload, error, groups, full_rows, full_bytes }
            }),
        Just(Response::Ok),
        payload_strategy().prop_map(|payload| Response::OkPayload { payload }),
        nasty_string().prop_map(|message| Response::Err { message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Text roundtrip for *every* request variant — the original suite only
    /// covered `Task`.
    #[test]
    fn text_request_roundtrip(req in request_strategy()) {
        let enc = req.encode();
        prop_assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    /// Text roundtrip for every response variant, payloads included — the
    /// original suite only covered payload-free `TaskDone`.
    #[test]
    fn text_response_roundtrip(resp in response_strategy()) {
        let enc = resp.encode();
        prop_assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    /// Binary frame roundtrip for every request variant, with and without a
    /// correlation id.
    #[test]
    fn binary_request_roundtrip(req in request_strategy(), corr in proptest::option::of(any::<u64>())) {
        let pool = BufferPool::default();
        let frame = encode_request(&pool, corr, &req);
        let (got_corr, got) = decode_request(&frame).unwrap();
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(got, req);
    }

    /// Binary frame roundtrip for every response variant.
    #[test]
    fn binary_response_roundtrip(resp in response_strategy(), corr in proptest::option::of(any::<u64>())) {
        let pool = BufferPool::default();
        let frame = encode_response(&pool, corr, &resp);
        let (got_corr, got) = decode_response(&frame).unwrap();
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(got, resp);
    }

    /// The columnar layout roundtrips any result set the engine can produce.
    #[test]
    fn columnar_result_set_roundtrip(
        cols in proptest::collection::vec((ident(), type_strategy()), 1..5),
        values in proptest::collection::vec(value_strategy(), 0..40),
    ) {
        let ncols = cols.len();
        let columns: Vec<ColumnMeta> =
            cols.into_iter().map(|(name, data_type)| ColumnMeta { name, data_type }).collect();
        let rows: Vec<Vec<Value>> =
            values.chunks_exact(ncols).map(|chunk| chunk.to_vec()).collect();
        let rs = ResultSet { columns, rows };
        let enc = columnar::encode_result_set(&rs);
        prop_assert_eq!(columnar::decode_result_set(&enc).unwrap(), rs);
    }

    /// The two payload encodings agree: a canonical text payload shipped
    /// through a binary frame comes back byte-identical, even when the
    /// columnar transcoder kicked in.
    #[test]
    fn binary_frames_preserve_payload_bytes(payload in payload_strategy()) {
        let pool = BufferPool::default();
        let resp = Response::OkPayload { payload: payload.clone() };
        let frame = encode_response(&pool, None, &resp);
        let (_, got) = decode_response(&frame).unwrap();
        prop_assert_eq!(got, Response::OkPayload { payload });
    }

    /// Non-canonical payload strings (arbitrary text a buggy peer might
    /// stuff into a payload field) still roundtrip — the encoder falls back
    /// to the verbatim block rather than misdecoding.
    #[test]
    fn binary_frames_preserve_arbitrary_payloads(payload in ".{0,120}") {
        let pool = BufferPool::default();
        let req = Request::Load {
            database: "db".into(),
            table: "t".into(),
            payload: payload.clone(),
        };
        let frame = encode_request(&pool, Some(7), &req);
        let (corr, got) = decode_request(&frame).unwrap();
        prop_assert_eq!(corr, Some(7));
        prop_assert_eq!(got, Request::Load { database: "db".into(), table: "t".into(), payload });
    }
}
