//! Adversarial decoder tests: a binary frame decoder fed hostile bytes must
//! return `MdbsError::Wire` — it must never panic and never silently
//! misdecode. Covers truncation at every prefix, corrupt tag bytes, overlong
//! varints, and a seeded bit-flip mutation sweep over a corpus of real
//! frames.

use mdbs::codec::{decode_request, decode_response, encode_request, encode_response};
use mdbs::proto::{Request, Response, TaskMode};
use mdbs::MdbsError;
use netsim::BufferPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One frame per request variant, payload-bearing ones included.
fn request_corpus() -> Vec<Vec<u8>> {
    let pool = BufferPool::default();
    let payload =
        "COLS code:int|rate:float|st:char(10)\nR I:1|F:40.0|S:available\nR I:2|N|S:rented\n";
    let reqs = vec![
        Request::Begin { name: "g1".into(), database: "avis".into() },
        Request::Exec { task: "g1".into(), commands: vec!["UPDATE cars SET rate = 1".into()] },
        Request::Prepare { task: "g1".into() },
        Request::Task {
            name: "t1".into(),
            mode: TaskMode::NoCommit,
            database: "avis".into(),
            commands: vec!["SELECT code FROM cars".into(), "odd | text \\ here".into()],
        },
        Request::Commit { task: "t1".into() },
        Request::Abort { task: "t1".into() },
        Request::Resolve { task: "t1".into(), commit: true },
        Request::Compensate {
            task: "t1".into(),
            database: "avis".into(),
            commands: vec!["UPDATE cars SET rate = rate / 2".into()],
        },
        Request::Partial {
            database: "avis".into(),
            sql: "SELECT code FROM cars".into(),
            baseline: Some("SELECT code FROM cars WHERE rate > 0".into()),
        },
        Request::PartialAgg {
            database: "avis".into(),
            sql: "SELECT cartype, COUNT(*) AS agg_cnt FROM cars GROUP BY cartype".into(),
            baseline: Some("SELECT cartype FROM cars".into()),
        },
        Request::Schema { database: "avis".into() },
        Request::Load { database: "avis".into(), table: "part_t".into(), payload: payload.into() },
        Request::DropTemp { database: "avis".into(), table: "part_t".into() },
        Request::LoadMany {
            database: "avis".into(),
            parts: vec![("p1".into(), payload.to_string()), ("p2".into(), String::new())],
        },
        Request::DropMany { database: "avis".into(), tables: vec!["p1".into(), "p2".into()] },
        Request::Ping,
        Request::Shutdown,
    ];
    reqs.iter()
        .enumerate()
        .map(|(i, r)| encode_request(&pool, (i % 2 == 0).then_some(i as u64 * 977), r).into_vec())
        .collect()
}

/// One frame per response variant.
fn response_corpus() -> Vec<Vec<u8>> {
    let pool = BufferPool::default();
    let payload = "COLS code:int\nR I:1\nR I:2\nR N\n";
    let resps = [
        Response::Ok,
        Response::OkPayload { payload: payload.into() },
        Response::Err { message: "lock conflict | details\nline2".into() },
        Response::TaskDone { status: 'C', affected: 3, payload: Some(payload.into()), error: None },
        Response::TaskDone {
            status: 'A',
            affected: 0,
            payload: None,
            error: Some("simulated deadlock".into()),
        },
        Response::PartialDone {
            payload: Some(payload.into()),
            error: None,
            full_rows: 12,
            full_bytes: 340,
            access: Some("probe".into()),
        },
        Response::PartialAggDone {
            payload: Some("COLS b_c_cartype:char(16)|agg_cnt:int\nR S:bus|I:3\n".into()),
            error: None,
            groups: 1,
            full_rows: 12,
            full_bytes: 340,
        },
    ];
    resps
        .iter()
        .enumerate()
        .map(|(i, r)| encode_response(&pool, (i % 2 == 1).then_some(i as u64), r).into_vec())
        .collect()
}

fn assert_wire_err<T: std::fmt::Debug>(result: Result<T, MdbsError>, context: &str) {
    match result {
        Err(MdbsError::Wire(_)) => {}
        other => panic!("{context}: expected MdbsError::Wire, got {other:?}"),
    }
}

#[test]
fn every_truncation_of_every_request_frame_is_rejected() {
    for frame in request_corpus() {
        for cut in 0..frame.len() {
            assert_wire_err(
                decode_request(&frame[..cut]),
                &format!("request frame truncated to {cut}/{} bytes", frame.len()),
            );
        }
    }
}

#[test]
fn every_truncation_of_every_response_frame_is_rejected() {
    for frame in response_corpus() {
        for cut in 0..frame.len() {
            assert_wire_err(
                decode_response(&frame[..cut]),
                &format!("response frame truncated to {cut}/{} bytes", frame.len()),
            );
        }
    }
}

#[test]
fn corrupt_tag_bytes_are_rejected() {
    let pool = BufferPool::default();
    let frame = encode_request(&pool, Some(5), &Request::Ping).into_vec();
    // The tag is the byte after magic/version/flags/varint-corr; locate it
    // by re-encoding without correlation (tag is then the last byte).
    let tagless = encode_request(&pool, None, &Request::Ping).into_vec();
    let tag_at = tagless.len() - 1;
    for bad in [0u8, 0x11, 0x40, 0x7f, 0x80, 0x86, 0xff] {
        let mut corrupt = tagless.clone();
        corrupt[tag_at] = bad;
        assert_wire_err(decode_request(&corrupt), &format!("request tag {bad:#04x}"));
    }
    // A response tag in a request frame (and vice versa) is also corrupt.
    let resp_frame = encode_response(&pool, None, &Response::Ok).into_vec();
    assert_wire_err(decode_request(&resp_frame), "response tag fed to request decoder");
    assert_wire_err(decode_response(&tagless), "request tag fed to response decoder");
    // Sanity: the untouched frames decode.
    decode_request(&frame).unwrap();
}

#[test]
fn overlong_and_oversized_varints_are_rejected() {
    let pool = BufferPool::default();
    let good = encode_request(&pool, Some(1), &Request::Ping).into_vec();
    // Frame layout: magic, version, flags(=1), varint corr(=1 byte), tag.
    // Replace the 1-byte correlation varint with pathological encodings.
    let (head, tail) = (&good[..3], &good[4..]);
    // Overlong: 0x81 0x00 still means 1, but wastes a byte — rejected.
    let mut overlong = head.to_vec();
    overlong.extend_from_slice(&[0x81, 0x00]);
    overlong.extend_from_slice(tail);
    assert_wire_err(decode_request(&overlong), "overlong varint");
    // Too many continuation bytes for a u64.
    let mut huge = head.to_vec();
    huge.extend_from_slice(&[0xff; 10]);
    huge.push(0x01);
    huge.extend_from_slice(tail);
    assert_wire_err(decode_request(&huge), "11-byte varint");
    // Final byte overflows bit 63.
    let mut overflow = head.to_vec();
    overflow.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
    overflow.extend_from_slice(tail);
    assert_wire_err(decode_request(&overflow), "u64 overflow varint");
}

#[test]
fn trailing_garbage_is_rejected() {
    let pool = BufferPool::default();
    for extra in [&[0u8][..], &[0u8, 1, 2, 3][..]] {
        let mut frame = encode_request(&pool, Some(9), &Request::Ping).into_vec();
        frame.extend_from_slice(extra);
        assert_wire_err(decode_request(&frame), "trailing bytes after a complete frame");
    }
}

/// Seeded mutation sweep: flip bits all over real frames. Every mutant must
/// either be rejected with `MdbsError::Wire` or decode to a value whose
/// canonical re-encoding decodes back to the same value — corruption is
/// *detected* or *harmlessly absorbed*, never a panic and never an unstable
/// decode.
#[test]
fn seeded_bit_flip_sweep_never_panics_or_destabilizes() {
    let pool = BufferPool::default();
    let mut rng = StdRng::seed_from_u64(0xB1_C0DEC);
    let mut rejected = 0u32;
    let mut absorbed = 0u32;
    for frame in request_corpus() {
        for _ in 0..200 {
            let mut mutant = frame.clone();
            let flips = rng.gen_range(1usize..4);
            for _ in 0..flips {
                let byte = rng.gen_range(0usize..mutant.len());
                let bit = rng.gen_range(0u32..8);
                mutant[byte] ^= 1 << bit;
            }
            match decode_request(&mutant) {
                Err(MdbsError::Wire(_)) => rejected += 1,
                Err(other) => panic!("non-wire error from a corrupt frame: {other:?}"),
                Ok((corr, req)) => {
                    // A flip inside a string/int field can yield a different
                    // but well-formed frame; its decode must be stable.
                    absorbed += 1;
                    let re = encode_request(&pool, corr, &req);
                    let (corr2, req2) = decode_request(&re).expect("re-encode of decoded mutant");
                    assert_eq!(corr2, corr);
                    assert_eq!(req2, req);
                }
            }
        }
    }
    for frame in response_corpus() {
        for _ in 0..200 {
            let mut mutant = frame.clone();
            let byte = rng.gen_range(0usize..mutant.len());
            let bit = rng.gen_range(0u32..8);
            mutant[byte] ^= 1 << bit;
            match decode_response(&mutant) {
                Err(MdbsError::Wire(_)) => rejected += 1,
                Err(other) => panic!("non-wire error from a corrupt frame: {other:?}"),
                Ok((corr, resp)) => {
                    absorbed += 1;
                    let re = encode_response(&pool, corr, &resp);
                    let (corr2, resp2) = decode_response(&re).expect("re-encode of decoded mutant");
                    assert_eq!(corr2, corr);
                    assert_eq!(resp2, resp);
                }
            }
        }
    }
    // The sweep must actually exercise the rejection paths (and a strict
    // format rejects the overwhelming majority of random corruption).
    assert!(rejected > absorbed, "rejected={rejected} absorbed={absorbed}");
    assert!(rejected + absorbed == 17 * 200 + 7 * 200);
}

/// The text decoders share the no-panic guarantee: any char-boundary
/// truncation of a valid encoding is an error or a benign reinterpretation,
/// never a panic.
#[test]
fn text_truncations_never_panic() {
    let bodies = [
        Request::Task {
            name: "t1".into(),
            mode: TaskMode::Auto,
            database: "avis".into(),
            commands: vec!["SELECT 'ünïcode | pipe' FROM cars".into()],
        }
        .encode(),
        Response::TaskDone {
            status: 'C',
            affected: 2,
            payload: Some("COLS code:int\nR I:1\n".into()),
            error: Some("partial ünïcode failure".into()),
        }
        .encode(),
    ];
    for body in &bodies {
        for cut in 0..=body.len() {
            if !body.is_char_boundary(cut) {
                continue;
            }
            let _ = Request::decode(&body[..cut]);
            let _ = Response::decode(&body[..cut]);
        }
    }
}
