//! Property tests for acceptable-termination-state evaluation (§3.4):
//! the direct-rule oracle in `mdbs::mtx` is internally consistent and
//! agrees with basic laws of the specification.

use dol::TaskStatus;
use mdbs::mtx::{is_consistent_outcome, reachable_state, realised_state};
use proptest::prelude::*;
use std::collections::HashMap;

fn status_strategy() -> impl Strategy<Value = TaskStatus> {
    prop_oneof![
        Just(TaskStatus::Prepared),
        Just(TaskStatus::Committed),
        Just(TaskStatus::Aborted),
        Just(TaskStatus::Error),
        Just(TaskStatus::Compensated),
    ]
}

const DBS: [&str; 4] = ["continental", "delta", "avis", "national"];

fn statuses_strategy() -> impl Strategy<Value = HashMap<String, TaskStatus>> {
    proptest::array::uniform4(status_strategy())
        .prop_map(|arr| DBS.iter().map(|d| d.to_string()).zip(arr).collect())
}

fn states_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    // 1–3 acceptable states, each a non-empty subset of the databases.
    proptest::collection::vec(
        proptest::collection::vec(prop::sample::select(DBS.to_vec()), 1..4).prop_map(|mut v| {
            v.dedup();
            v.into_iter().map(String::from).collect::<Vec<String>>()
        }),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reachable_state_is_the_first_matching_index(
        states in states_strategy(),
        statuses in statuses_strategy(),
    ) {
        if let Some(idx) = reachable_state(&states, &statuses) {
            // Every member of the chosen state can commit.
            for member in &states[idx] {
                let s = statuses[member];
                prop_assert!(matches!(s, TaskStatus::Prepared | TaskStatus::Committed));
            }
            // No earlier state is reachable.
            for earlier in &states[..idx] {
                let all = earlier.iter().all(|m| {
                    matches!(statuses[m], TaskStatus::Prepared | TaskStatus::Committed)
                });
                prop_assert!(!all, "earlier state {earlier:?} was also reachable");
            }
        } else {
            for state in &states {
                let all = state.iter().all(|m| {
                    matches!(statuses[m], TaskStatus::Prepared | TaskStatus::Committed)
                });
                prop_assert!(!all);
            }
        }
    }

    #[test]
    fn realised_state_implies_consistency(
        states in states_strategy(),
        statuses in statuses_strategy(),
    ) {
        if realised_state(&states, &statuses).is_some() {
            prop_assert!(is_consistent_outcome(&states, &statuses));
        }
    }

    #[test]
    fn all_undone_is_always_consistent(states in states_strategy()) {
        let statuses: HashMap<String, TaskStatus> =
            DBS.iter().map(|d| (d.to_string(), TaskStatus::Aborted)).collect();
        prop_assert!(is_consistent_outcome(&states, &statuses));
        prop_assert_eq!(realised_state(&states, &statuses), None);
    }

    #[test]
    fn realising_a_state_requires_exact_exclusions(
        states in states_strategy(),
        statuses in statuses_strategy(),
    ) {
        if let Some(idx) = realised_state(&states, &statuses) {
            // Members committed, non-members undone.
            for (db, status) in &statuses {
                if states[idx].contains(db) {
                    prop_assert_eq!(*status, TaskStatus::Committed);
                } else {
                    prop_assert!(matches!(
                        status,
                        TaskStatus::Aborted | TaskStatus::Compensated | TaskStatus::Error
                    ));
                }
            }
        }
    }

    #[test]
    fn a_fully_prepared_execution_always_reaches_the_preferred_state(
        states in states_strategy(),
    ) {
        let statuses: HashMap<String, TaskStatus> =
            DBS.iter().map(|d| (d.to_string(), TaskStatus::Prepared)).collect();
        prop_assert_eq!(reachable_state(&states, &statuses), Some(0));
    }
}
