//! Deterministic replay of the retry layer's jittered backoff.
//!
//! The backoff schedule is a pure function of `(jitter_seed, attempt)` — no
//! RNG state is carried between calls — so a failing run replays exactly
//! under the same seed, while different seeds decorrelate the federation's
//! retry storms. The third test pins the SplitMix64 mixer itself: silently
//! swapping the hash would change every committed golden trace's timing
//! story even though all the "same seed ⇒ same schedule" properties keep
//! passing.

use mdbs::RetryPolicy;
use std::time::Duration;

/// The full backoff schedule a policy would sleep through.
fn schedule(policy: &RetryPolicy) -> Vec<Duration> {
    (1..=policy.max_attempts).map(|a| policy.backoff(a)).collect()
}

#[test]
fn same_seed_replays_the_same_schedule() {
    for seed in [0x5EED, 0, 1, u64::MAX, 0xDEAD_BEEF] {
        let a = RetryPolicy { jitter_seed: seed, ..RetryPolicy::retries(8) };
        let b = RetryPolicy { jitter_seed: seed, ..RetryPolicy::retries(8) };
        assert_eq!(schedule(&a), schedule(&b), "seed {seed:#x} must replay identically");
    }
}

#[test]
fn different_seeds_decorrelate_the_jitter() {
    let seeds = [0x5EED_u64, 0, 1, 42, u64::MAX];
    let schedules: Vec<_> = seeds
        .iter()
        .map(|&s| schedule(&RetryPolicy { jitter_seed: s, ..RetryPolicy::retries(8) }))
        .collect();
    for i in 0..schedules.len() {
        for j in i + 1..schedules.len() {
            assert_ne!(
                schedules[i], schedules[j],
                "seeds {:#x} and {:#x} produced the same jitter",
                seeds[i], seeds[j]
            );
        }
    }
}

#[test]
fn backoff_is_exponential_with_bounded_jitter() {
    let policy = RetryPolicy::retries(8);
    let half = policy.base_backoff / 2;
    assert_eq!(policy.backoff(1), Duration::ZERO, "the first attempt never waits");
    for attempt in 2..=8u32 {
        let base = policy.base_backoff * (1 << (attempt - 2));
        let pause = policy.backoff(attempt);
        assert!(
            pause >= base && pause <= base + half,
            "attempt {attempt}: {pause:?} outside [{base:?}, {:?}]",
            base + half
        );
    }
    // A zero base backoff disables both the wait and the jitter.
    let eager = RetryPolicy { base_backoff: Duration::ZERO, ..RetryPolicy::retries(8) };
    assert_eq!(eager.backoff(5), Duration::ZERO);
}

#[test]
fn the_jitter_mixer_is_pinned() {
    // SplitMix64 over seed 0x5EED (the `retries` default), 2ms base: these
    // literals are the contract. If they drift, the mixer changed.
    let policy = RetryPolicy::retries(5);
    assert_eq!(policy.jitter_seed, 0x5EED);
    assert_eq!(policy.base_backoff, Duration::from_millis(2));
    let want = [2572, 4723, 8286, 16899].map(Duration::from_micros);
    let got: Vec<_> = (2..=5u32).map(|a| policy.backoff(a)).collect();
    assert_eq!(got, want, "the pinned SplitMix64 schedule drifted");
}
