//! Property test for the semi-join reduction: over random two-table data and
//! random cross-database equi-join predicates, a federation with the
//! reduction enabled returns exactly the rows of one with it disabled —
//! including under key-set caps that force the full-shipping fallback and
//! NULL join keys that can never match.

use mdbs::fixtures::paper_federation_with;
use mdbs::Federation;
use netsim::Network;
use proptest::prelude::*;

const CITIES: [&str; 3] = ["Houston", "Dallas", "Austin"];

#[derive(Debug, Clone, Copy)]
struct FlightRow {
    num: i64,
    source: Option<usize>, // index into CITIES, None = NULL
    dest: Option<usize>,
    rate: i64, // whole-dollar rates so equi matches actually occur
}

fn city_sql(idx: Option<usize>) -> String {
    match idx {
        Some(i) => format!("'{}'", CITIES[i]),
        None => "NULL".to_string(),
    }
}

fn flight_row() -> impl Strategy<Value = FlightRow> {
    let city = prop_oneof![4 => (0usize..CITIES.len()).prop_map(Some), 1 => Just(None)];
    (0i64..1000, city.clone(), city, 5i64..9).prop_map(|(num, source, dest, rate)| FlightRow {
        num,
        source,
        dest,
        rate: rate * 10,
    })
}

/// A fresh two-site federation whose continental.flights / delta.flight
/// tables hold exactly the given random rows.
fn federation_with_rows(left: &[FlightRow], right: &[FlightRow]) -> Federation {
    let fed = paper_federation_with(Network::new(), Default::default());
    for (svc, db, table, numcol, destcol, rows) in [
        ("svc_continental", "continental", "flights", "flnu", "destination", left),
        ("svc_delta", "delta", "flight", "fnu", "dest", right),
    ] {
        let engine = fed.engine(svc).unwrap();
        let mut engine = engine.lock();
        engine.execute(db, &format!("DELETE FROM {table}")).unwrap();
        for r in rows {
            let (src, dst) = (city_sql(r.source), city_sql(r.dest));
            let sql = if numcol == "flnu" {
                format!(
                    "INSERT INTO {table} VALUES ({}, {src}, 'am', {dst}, 'pm', 'mon', {})",
                    r.num, r.rate
                )
            } else {
                format!(
                    "INSERT INTO {table} VALUES ({}, {src}, {dst}, 'am', 'pm', 'tue', {})",
                    r.num, r.rate
                )
            };
            engine.execute(db, &sql).unwrap();
        }
        let _ = (destcol, numcol);
    }
    fed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn semijoin_on_equals_semijoin_off(
        left in proptest::collection::vec(flight_row(), 0..10),
        right in proptest::collection::vec(flight_row(), 0..10),
        on_source in proptest::bool::ANY,
        on_dest in proptest::bool::ANY,
        on_rate in proptest::bool::ANY,
        residual in proptest::bool::ANY,
        cap in prop::sample::select(vec![0usize, 1, 3, 256]),
    ) {
        let mut conjuncts = Vec::new();
        if on_source {
            conjuncts.push("f.source = g.source");
        }
        if on_dest {
            conjuncts.push("f.destination = g.dest");
        }
        if on_rate {
            conjuncts.push("f.rate = g.rate");
        }
        if conjuncts.is_empty() {
            conjuncts.push("f.source = g.source"); // always at least one equi edge
        }
        if residual {
            conjuncts.push("f.flnu < g.fnu");
        }
        let sql = format!(
            "SELECT f.flnu, g.fnu FROM continental.flights f, delta.flight g
             WHERE {} ORDER BY f.flnu, g.fnu",
            conjuncts.join(" AND ")
        );

        let run = |semijoin: bool| {
            let mut fed = federation_with_rows(&left, &right);
            fed.semijoin = semijoin;
            fed.semijoin_cap = cap;
            fed.execute("USE continental delta").unwrap();
            fed.execute(&sql).unwrap().into_table().unwrap()
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(&on.columns.len(), &off.columns.len());
        prop_assert_eq!(&on.rows, &off.rows, "semijoin changed the result of `{}`", sql);
    }
}
