//! Property tests for the observability layer.
//!
//! Under arbitrary (seeded) network loss and retry budgets:
//!
//! * the communication accounting keeps its defining invariant
//!   `retries == attempts - calls`;
//! * every span tree is well-nested (children strictly inside their
//!   parents, siblings ordered by start tick);
//! * the per-LAM `rows`/`bytes` counters and span annotations agree with
//!   the multitable the statement actually returned.

use mdbs::fixtures::paper_federation_with;
use mdbs::{Federation, RetryPolicy};
use netsim::Network;
use obs::SpanNode;
use proptest::prelude::*;
use std::time::Duration;

const Q1: &str = "USE avis national
    LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
    SELECT %code, type, ~rate FROM car WHERE status = 'available'";

/// The paper federation on a seeded lossy network (serial execution, short
/// timeouts, a bounded retry budget).
fn lossy_federation(seed: u64, drop_pct: u8, max_attempts: u32) -> Federation {
    let mut fed = paper_federation_with(Network::with_seed(seed), Default::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(120);
    if max_attempts > 1 {
        fed.retry = RetryPolicy { max_attempts, ..RetryPolicy::retries(max_attempts) };
    }
    for site in ["site4", "site5"] {
        fed.network().set_link_drop_probability("*", site, f64::from(drop_pct) / 100.0);
        fed.network().set_link_drop_probability(site, "*", f64::from(drop_pct) / 100.0);
    }
    fed
}

fn heal(fed: &Federation) {
    for site in ["site4", "site5"] {
        fed.network().clear_link_drop_probability("*", site);
        fed.network().clear_link_drop_probability(site, "*");
    }
}

/// Asserts the forest under `nodes` is well-nested: each node closes after
/// it opens, children live strictly inside their parent, and siblings are
/// ordered by start tick.
fn assert_well_nested(nodes: &[SpanNode], parent: Option<(u64, u64)>) {
    let mut prev_start = None;
    for n in nodes {
        assert!(n.start < n.end, "span `{}` closes before it opens: {n:?}", n.name);
        if let Some((ps, pe)) = parent {
            assert!(
                ps < n.start && n.end < pe,
                "span `{}` [{}, {}] leaks out of its parent [{ps}, {pe}]",
                n.name,
                n.start,
                n.end
            );
        }
        if let Some(prev) = prev_start {
            assert!(prev <= n.start, "siblings out of order at `{}`", n.name);
        }
        prev_start = Some(n.start);
        assert_well_nested(&n.children, Some((n.start, n.end)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `retries == attempts - calls` no matter how many resends the loss
    /// pattern forces, and regardless of whether the statement survives.
    #[test]
    fn retries_are_attempts_minus_calls(
        seed in any::<u64>(),
        drop_pct in 0u8..=30,
        max_attempts in 1u32..=5,
    ) {
        let mut fed = lossy_federation(seed, drop_pct, max_attempts);
        let _ = fed.execute(Q1); // both outcomes are fine; the accounting must hold either way
        heal(&fed);
        let stats = fed.exec_stats();
        prop_assert!(stats.calls > 0, "the statement issued at least one LAM call");
        prop_assert_eq!(
            stats.retries,
            stats.attempts - stats.calls,
            "accounting invariant violated: {:?}",
            stats
        );
    }

    /// The span tree of any traced statement is well-nested.
    #[test]
    fn span_trees_are_well_nested(
        seed in any::<u64>(),
        drop_pct in 0u8..=30,
        max_attempts in 1u32..=5,
    ) {
        let mut fed = lossy_federation(seed, drop_pct, max_attempts);
        let _ = fed.execute(Q1);
        heal(&fed);
        let trace = fed.last_trace().expect("the statement left a trace");
        assert_well_nested(&trace.roots, None);
    }

    /// On a healthy network the `lam.rows`/`lam.bytes` counters and the
    /// task-span annotations agree exactly with the returned multitable.
    #[test]
    fn row_and_byte_counters_match_the_multitable(status in prop::sample::select(
        vec!["available", "rented", "nosuch"],
    )) {
        let mut fed = paper_federation_with(Network::new(), Default::default());
        fed.parallel = false;
        let msql = format!(
            "USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
             SELECT %code, type, ~rate FROM car WHERE status = '{status}'"
        );
        let mt = fed.execute(&msql).unwrap().into_multitable().unwrap();
        let metrics = fed.metrics();
        let counter = |name: &str, db: &str| {
            metrics.counters.get(&obs::labeled(name, "db", db)).copied().unwrap_or(0)
        };
        let mut span_rows = std::collections::HashMap::new();
        fed.last_trace().unwrap().visit(&mut |n| {
            if n.name.starts_with("task:") {
                let db = n.notes.iter().find(|(k, _)| k == "db").map(|(_, v)| v.clone());
                let rows = n
                    .notes
                    .iter()
                    .find(|(k, _)| k == "rows")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(0);
                if let Some(db) = db {
                    *span_rows.entry(db).or_insert(0u64) += rows;
                }
            }
        });
        for table in &mt.tables {
            let rows = table.result.rows.len() as u64;
            prop_assert_eq!(
                counter("lam.rows", &table.database),
                rows,
                "lam.rows counter for `{}`",
                &table.database
            );
            prop_assert!(
                counter("lam.bytes", &table.database) > 0,
                "some payload bytes were shipped from `{}`",
                &table.database
            );
            prop_assert_eq!(
                span_rows.get(&table.database).copied().unwrap_or(0),
                rows,
                "task-span rows annotation for `{}`",
                &table.database
            );
        }
    }
}
