//! Property tests for the wire formats and the LAM protocol: every encoder
//! must roundtrip through its decoder for arbitrary content (including
//! pipes, newlines, backslashes and non-ASCII text).

use catalog::{GddColumn, GddTable};
use ldbs::engine::{ColumnMeta, ResultSet};
use ldbs::value::{DataType, Value};
use mdbs::proto::{Request, Response, TaskMode};
use mdbs::wire;
use msql_lang::TypeName;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality, infinity never occurs in
        // engine output (division by zero yields NULL).
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        ".*".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn type_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        (0u32..1000).prop_map(DataType::Char),
        Just(DataType::Bool),
        Just(DataType::Date),
    ]
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_roundtrip(v in value_strategy()) {
        let enc = wire::encode_value(&v);
        prop_assert_eq!(wire::decode_value(&enc).unwrap(), v);
    }

    #[test]
    fn result_set_roundtrip(
        names in proptest::collection::vec(ident_strategy(), 1..5),
        types in proptest::collection::vec(type_strategy(), 1..5),
        nrows in 0usize..8,
        values in proptest::collection::vec(value_strategy(), 0..40),
    ) {
        let ncols = names.len().min(types.len());
        let columns: Vec<ColumnMeta> = names
            .iter()
            .take(ncols)
            .zip(types.iter().take(ncols))
            .map(|(n, t)| ColumnMeta { name: n.clone(), data_type: *t })
            .collect();
        let mut rows = Vec::new();
        let mut vi = 0;
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(values.get(vi).cloned().unwrap_or(Value::Null));
                vi += 1;
            }
            rows.push(row);
        }
        let rs = ResultSet { columns, rows };
        let enc = wire::encode_result_set(&rs);
        prop_assert_eq!(wire::decode_result_set(&enc).unwrap(), rs);
    }

    #[test]
    fn schema_roundtrip(
        tables in proptest::collection::vec(
            (ident_strategy(), proptest::collection::vec(ident_strategy(), 1..5), any::<bool>()),
            0..5,
        )
    ) {
        let schema: Vec<GddTable> = tables
            .into_iter()
            .map(|(name, cols, is_view)| {
                let mut seen = Vec::new();
                let columns = cols
                    .into_iter()
                    .filter(|c| {
                        if seen.contains(c) {
                            false
                        } else {
                            seen.push(c.clone());
                            true
                        }
                    })
                    .map(|c| GddColumn::new(c, TypeName::Char(0)))
                    .collect();
                let mut t = GddTable::new(name, columns);
                t.is_view = is_view;
                t
            })
            .collect();
        let enc = wire::encode_schema(&schema);
        prop_assert_eq!(wire::decode_schema(&enc).unwrap(), schema);
    }

    #[test]
    fn request_roundtrip(
        name in ident_strategy(),
        db in ident_strategy(),
        nocommit in any::<bool>(),
        commands in proptest::collection::vec(".{1,60}", 0..4),
    ) {
        // Commands may contain anything; blank-only commands are dropped by
        // the line codec, so filter them like the translator would.
        let commands: Vec<String> = commands
            .into_iter()
            .filter(|c: &String| !c.trim().is_empty() && !c.contains('\r'))
            .collect();
        let req = Request::Task {
            name: name.clone(),
            mode: if nocommit { TaskMode::NoCommit } else { TaskMode::Auto },
            database: db,
            commands,
        };
        let enc = req.encode();
        prop_assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(
        status in prop::sample::select(vec!['P', 'C', 'A', 'E']),
        affected in any::<u64>(),
        error in proptest::option::of("[^\\r]{1,40}"),
    ) {
        let resp = Response::TaskDone { status, affected, payload: None, error };
        let enc = resp.encode();
        prop_assert_eq!(Response::decode(&enc).unwrap(), resp);
    }
}
