//! DOL abstract syntax.

/// Observable status of a DOL task, matching the codes tested in the paper's
/// §4.3 listing (`IF (T1=P) AND (T3=P) ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskStatus {
    /// Executed under NOCOMMIT and reached prepared-to-commit.
    Prepared,
    /// Executed and committed (autocommit tasks, or after phase 2).
    Committed,
    /// Aborted / rolled back.
    Aborted,
    /// Failed with an error before producing a vote.
    Error,
    /// Committed, then semantically undone by its compensating action.
    Compensated,
}

impl TaskStatus {
    /// One-letter code used in DOL conditions.
    pub fn code(&self) -> char {
        match self {
            TaskStatus::Prepared => 'P',
            TaskStatus::Committed => 'C',
            TaskStatus::Aborted => 'A',
            TaskStatus::Error => 'E',
            TaskStatus::Compensated => 'K',
        }
    }

    /// Parses a one-letter status code.
    pub fn from_code(c: char) -> Option<TaskStatus> {
        match c.to_ascii_uppercase() {
            'P' => Some(TaskStatus::Prepared),
            'C' => Some(TaskStatus::Committed),
            'A' => Some(TaskStatus::Aborted),
            'E' => Some(TaskStatus::Error),
            'K' => Some(TaskStatus::Compensated),
            _ => None,
        }
    }
}

/// A task definition: commands shipped to one service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDef {
    /// Task name (`T1`).
    pub name: String,
    /// Service alias the task runs on (`FOR cont`).
    pub service: String,
    /// `NOCOMMIT`: run under 2PC and stop in the prepared state; otherwise
    /// the task autocommits on success.
    pub nocommit: bool,
    /// SQL statements to execute, in order.
    pub commands: Vec<String>,
    /// Compensating statements (the §3.3 extension), executed by
    /// `COMPENSATE <task>` after the task has committed.
    pub compensation: Vec<String>,
}

/// A status condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DolCond {
    /// `(T1 = P)`.
    StatusEq {
        /// Task name.
        task: String,
        /// Expected status.
        status: TaskStatus,
    },
    /// Conjunction.
    And(Box<DolCond>, Box<DolCond>),
    /// Disjunction.
    Or(Box<DolCond>, Box<DolCond>),
    /// Negation.
    Not(Box<DolCond>),
}

/// One DOL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DolStmt {
    /// `OPEN <service> AT <site> AS <alias>;` — connect to a known service.
    Open {
        /// Service (database) name as known to the resource directory.
        service: String,
        /// Site where the service listens.
        site: String,
        /// Alias used by TASK/CLOSE statements.
        alias: String,
    },
    /// `TASK ... ENDTASK;`
    Task(TaskDef),
    /// `IF <cond> THEN BEGIN ... END; [ELSE BEGIN ... END;]`
    If {
        /// The condition over task statuses.
        cond: DolCond,
        /// Statements executed when the condition holds.
        then_branch: Vec<DolStmt>,
        /// Statements executed otherwise.
        else_branch: Vec<DolStmt>,
    },
    /// `COMMIT T1, T3;` — second commit phase for prepared tasks.
    Commit {
        /// The tasks to commit.
        tasks: Vec<String>,
    },
    /// `ABORT T1, T3;` — roll prepared tasks back.
    Abort {
        /// The tasks to abort.
        tasks: Vec<String>,
    },
    /// `COMPENSATE T1;` — run a committed task's compensating action
    /// (the §3.3 extension).
    Compensate {
        /// The task to compensate.
        task: String,
    },
    /// `DECIDE <n>;` — record the coordinator's settle decision *before* any
    /// second-phase message goes out. The engine forwards the code to its
    /// [`crate::engine::TaskObserver`] (the coordinator's write-ahead log);
    /// the statement has no effect on task statuses or `DOLSTATUS`.
    Decide(i32),
    /// `DOLSTATUS = <n>;` — set the program's return code.
    SetStatus(i32),
    /// `CLOSE a b c;` — disconnect service aliases.
    Close {
        /// The aliases to close.
        aliases: Vec<String>,
    },
}

/// A full DOL program (`DOLBEGIN ... DOLEND`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DolProgram {
    /// Top-level statements in order.
    pub statements: Vec<DolStmt>,
}

impl DolProgram {
    /// All task definitions (recursively, including branches), in program
    /// order.
    pub fn tasks(&self) -> Vec<&TaskDef> {
        fn walk<'a>(stmts: &'a [DolStmt], out: &mut Vec<&'a TaskDef>) {
            for s in stmts {
                match s {
                    DolStmt::Task(t) => out.push(t),
                    DolStmt::If { then_branch, else_branch, .. } => {
                        walk(then_branch, out);
                        walk(else_branch, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.statements, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            TaskStatus::Prepared,
            TaskStatus::Committed,
            TaskStatus::Aborted,
            TaskStatus::Error,
            TaskStatus::Compensated,
        ] {
            assert_eq!(TaskStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(TaskStatus::from_code('x'), None);
        assert_eq!(TaskStatus::from_code('p'), Some(TaskStatus::Prepared));
    }

    #[test]
    fn tasks_walks_branches() {
        let t = |n: &str| {
            DolStmt::Task(TaskDef {
                name: n.into(),
                service: "s".into(),
                nocommit: false,
                commands: vec![],
                compensation: vec![],
            })
        };
        let prog = DolProgram {
            statements: vec![
                t("T1"),
                DolStmt::If {
                    cond: DolCond::StatusEq { task: "T1".into(), status: TaskStatus::Prepared },
                    then_branch: vec![t("T2")],
                    else_branch: vec![t("T3")],
                },
            ],
        };
        let names: Vec<&str> = prog.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["T1", "T2", "T3"]);
    }
}
