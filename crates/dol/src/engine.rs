//! The DOL execution engine.
//!
//! The engine plays the role of Narada's distributed engine (paper §4.1): it
//! opens services through a [`ServiceFactory`], submits `TASK` blocks to
//! them, records the status each task reaches (`P`/`C`/`A`/`E`), evaluates
//! the status conditions of `IF` statements, and drives the second commit
//! phase (`COMMIT`/`ABORT` task lists) and compensation.
//!
//! Consecutive `TASK` statements form a *batch*. In parallel mode (the
//! default, matching the paper's emphasis on data-flow parallelism) a batch
//! runs with one thread per service; in serial mode tasks run one after
//! another — benchmark B7 measures the difference.

use crate::ast::{DolCond, DolProgram, DolStmt, TaskDef, TaskStatus};
use crate::error::DolError;
use obs::{Span, SpanCtx};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of running one task on a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskExecution {
    /// The status the task reached.
    pub status: TaskStatus,
    /// Serialized partial result (for retrieval tasks), if any.
    pub result: Option<String>,
    /// Error description when the status is `Aborted`/`Error`.
    pub error: Option<String>,
}

impl TaskExecution {
    /// A successful prepared execution.
    pub fn prepared() -> Self {
        TaskExecution { status: TaskStatus::Prepared, result: None, error: None }
    }

    /// A successful committed execution.
    pub fn committed(result: Option<String>) -> Self {
        TaskExecution { status: TaskStatus::Committed, result, error: None }
    }

    /// A failed execution.
    pub fn aborted(error: impl Into<String>) -> Self {
        TaskExecution { status: TaskStatus::Aborted, result: None, error: Some(error.into()) }
    }
}

/// A connected service a DOL program can drive. Implemented by the
/// multidatabase layer's LAM client (over the simulated network) and by mock
/// services in tests.
pub trait DolService: Send {
    /// Executes a task's commands. `nocommit` tasks must stop in the
    /// prepared state; others autocommit. Failures are reported through the
    /// returned status, not an `Err` — a local abort is a normal outcome for
    /// the plan logic.
    fn execute_task(&mut self, task: &TaskDef) -> TaskExecution;

    /// Second commit phase for a prepared task.
    fn commit_task(&mut self, task_name: &str) -> Result<(), DolError>;

    /// Rolls a prepared task back.
    fn abort_task(&mut self, task_name: &str) -> Result<(), DolError>;

    /// Executes a committed task's compensating commands (autocommit).
    fn compensate_task(&mut self, task: &TaskDef) -> Result<(), DolError>;

    /// Releases the connection.
    fn close(&mut self);

    /// Traced variant of [`execute_task`](DolService::execute_task): the
    /// engine hands the task's span so the service can annotate it (and open
    /// per-attempt children). Default implementations ignore the span, so
    /// mocks and simple services need not care about tracing.
    fn execute_task_traced(&mut self, task: &TaskDef, span: &Span) -> TaskExecution {
        let _ = span;
        self.execute_task(task)
    }

    /// Traced variant of [`commit_task`](DolService::commit_task).
    fn commit_task_traced(&mut self, task_name: &str, span: &Span) -> Result<(), DolError> {
        let _ = span;
        self.commit_task(task_name)
    }

    /// Traced variant of [`abort_task`](DolService::abort_task).
    fn abort_task_traced(&mut self, task_name: &str, span: &Span) -> Result<(), DolError> {
        let _ = span;
        self.abort_task(task_name)
    }

    /// Traced variant of [`compensate_task`](DolService::compensate_task).
    fn compensate_task_traced(&mut self, task: &TaskDef, span: &Span) -> Result<(), DolError> {
        let _ = span;
        self.compensate_task(task)
    }
}

/// Connects service names (from `OPEN service AT site`) to live services.
pub trait ServiceFactory {
    /// Opens a connection to `service` at `site`.
    fn connect(&self, service: &str, site: &str) -> Result<Box<dyn DolService>, DolError>;
}

/// Observer of the engine's protocol transitions — implemented by the
/// coordinator's write-ahead log so every step that changes the global
/// outcome is durably recorded *in order*. A callback may return
/// [`DolError::Halted`] to stop execution on the spot (the simulation
/// harness uses this to model a coordinator crash at an exact log site);
/// everything after the halt — including the settle phase — is skipped.
pub trait TaskObserver: Send + Sync {
    /// A task finished its first phase: `P` voted prepared, `C`
    /// autocommitted, `A`/`E` failed locally.
    fn task_executed(&self, task: &TaskDef, status: TaskStatus) -> Result<(), DolError>;

    /// The coordinator reached a `DECIDE <code>` statement — the settle
    /// decision, recorded *before* any second-phase message goes out.
    fn decision(&self, code: i32) -> Result<(), DolError>;

    /// A settle action for `task` completed with its final status
    /// (`C` committed, `A` aborted, `K` compensated).
    fn task_resolved(&self, task: &str, status: TaskStatus) -> Result<(), DolError>;
}

/// Outcome of one DOL program run.
#[derive(Debug, Clone, Default)]
pub struct DolOutcome {
    /// Final `DOLSTATUS` (0 = success by the paper's convention).
    pub dolstatus: i32,
    /// Status reached by every executed task.
    pub task_statuses: HashMap<String, TaskStatus>,
    /// Serialized partial results of retrieval tasks.
    pub task_results: HashMap<String, String>,
    /// Local error message of every task that failed.
    pub task_errors: HashMap<String, String>,
}

impl DolOutcome {
    /// Status of a task, if it ran.
    pub fn status(&self, task: &str) -> Option<TaskStatus> {
        self.task_statuses.get(task).copied()
    }

    /// Local error of a task, if it failed.
    pub fn error(&self, task: &str) -> Option<&str> {
        self.task_errors.get(task).map(String::as_str)
    }
}

/// The DOL engine.
pub struct DolEngine<'f> {
    factory: &'f dyn ServiceFactory,
    /// Run task batches with one thread per service (default true).
    pub parallel: bool,
    /// Where to hang execution spans (disabled by default).
    pub trace: SpanCtx,
    /// Protocol-transition observer (the coordinator's WAL), if any.
    pub observer: Option<Arc<dyn TaskObserver>>,
}

struct RunState {
    services: HashMap<String, Box<dyn DolService>>,
    defs: HashMap<String, TaskDef>,
    outcome: DolOutcome,
}

impl<'f> DolEngine<'f> {
    /// Creates an engine over a service factory (parallel batches enabled).
    pub fn new(factory: &'f dyn ServiceFactory) -> Self {
        DolEngine { factory, parallel: true, trace: SpanCtx::disabled(), observer: None }
    }

    /// Creates an engine that executes task batches serially.
    pub fn serial(factory: &'f dyn ServiceFactory) -> Self {
        DolEngine { factory, parallel: false, trace: SpanCtx::disabled(), observer: None }
    }

    /// Executes a program to completion.
    pub fn execute(&self, program: &DolProgram) -> Result<DolOutcome, DolError> {
        let mut state = RunState {
            services: HashMap::new(),
            defs: HashMap::new(),
            outcome: DolOutcome::default(),
        };
        let span = self.trace.child("dol:run");
        let ctx = span.ctx();
        let result = self.run_block(&program.statements, &mut state, &ctx);
        // Drop any service still open.
        for (_, mut svc) in state.services.drain() {
            svc.close();
        }
        result?;
        span.note("dolstatus", state.outcome.dolstatus);
        Ok(state.outcome)
    }

    fn run_block(
        &self,
        stmts: &[DolStmt],
        state: &mut RunState,
        ctx: &SpanCtx,
    ) -> Result<(), DolError> {
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                DolStmt::Task(_) => {
                    // Collect the whole consecutive batch.
                    let mut batch = Vec::new();
                    while i < stmts.len() {
                        if let DolStmt::Task(t) = &stmts[i] {
                            batch.push(t.clone());
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    self.run_batch(batch, state, ctx)?;
                }
                other => {
                    self.run_stmt(other, state, ctx)?;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    fn run_stmt(
        &self,
        stmt: &DolStmt,
        state: &mut RunState,
        ctx: &SpanCtx,
    ) -> Result<(), DolError> {
        match stmt {
            DolStmt::Open { service, site, alias } => {
                if state.services.contains_key(alias) {
                    return Err(DolError::Duplicate(alias.clone()));
                }
                let span = ctx.child(format!("open:{alias}"));
                span.note("service", service);
                span.note("site", site);
                let svc = self.factory.connect(service, site)?;
                state.services.insert(alias.clone(), svc);
                Ok(())
            }
            DolStmt::Task(_) => unreachable!("tasks are batched in run_block"),
            DolStmt::If { cond, then_branch, else_branch } => {
                if eval_cond(cond, &state.outcome.task_statuses)? {
                    self.run_block(then_branch, state, ctx)
                } else {
                    self.run_block(else_branch, state, ctx)
                }
            }
            DolStmt::Commit { tasks } => {
                for name in tasks {
                    self.commit_task(name, state, ctx)?;
                }
                Ok(())
            }
            DolStmt::Abort { tasks } => {
                for name in tasks {
                    self.abort_task(name, state, ctx)?;
                }
                Ok(())
            }
            DolStmt::Compensate { task } => self.compensate_task(task, state, ctx),
            DolStmt::Decide(code) => {
                if let Some(observer) = &self.observer {
                    observer.decision(*code)?;
                }
                Ok(())
            }
            DolStmt::SetStatus(code) => {
                state.outcome.dolstatus = *code;
                Ok(())
            }
            DolStmt::Close { aliases } => {
                for alias in aliases {
                    if let Some(mut svc) = state.services.remove(alias) {
                        svc.close();
                    }
                }
                Ok(())
            }
        }
    }

    fn run_batch(
        &self,
        batch: Vec<TaskDef>,
        state: &mut RunState,
        ctx: &SpanCtx,
    ) -> Result<(), DolError> {
        for (i, t) in batch.iter().enumerate() {
            if state.defs.contains_key(&t.name) || batch[..i].iter().any(|prev| prev.name == t.name)
            {
                return Err(DolError::Duplicate(t.name.clone()));
            }
            if !state.services.contains_key(&t.service) {
                return Err(DolError::UnknownService(t.service.clone()));
            }
        }
        for t in &batch {
            state.defs.insert(t.name.clone(), t.clone());
        }

        // Group tasks by service alias; tasks on the same service run in
        // order on that service's connection.
        let mut groups: Vec<(String, Vec<TaskDef>)> = Vec::new();
        for t in batch {
            match groups.iter_mut().find(|(alias, _)| *alias == t.service) {
                Some((_, tasks)) => tasks.push(t),
                None => groups.push((t.service.clone(), vec![t])),
            }
        }

        // Opens, annotates and closes the span around one task execution.
        fn traced_exec(
            svc: &mut Box<dyn DolService>,
            task: &TaskDef,
            alias: &str,
            ctx: &SpanCtx,
        ) -> TaskExecution {
            let span = ctx.child(format!("task:{}", task.name));
            span.note("service", alias);
            let exec = svc.execute_task_traced(task, &span);
            span.note("status", exec.status.code());
            exec
        }

        let mut executions: Vec<(String, TaskExecution)> = Vec::new();
        if self.parallel && groups.len() > 1 {
            // One thread per service; each thread owns its service box.
            let mut taken: Vec<(String, Box<dyn DolService>, Vec<TaskDef>)> = Vec::new();
            for (alias, tasks) in groups {
                let svc = state.services.remove(&alias).expect("checked above");
                taken.push((alias, svc, tasks));
            }
            type Finished = Vec<(String, Box<dyn DolService>, Vec<(String, TaskExecution)>)>;
            let finished: Finished = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (alias, mut svc, tasks) in taken.drain(..) {
                    let ctx = ctx.clone();
                    handles.push(scope.spawn(move || {
                        let mut local = Vec::new();
                        for task in &tasks {
                            let exec = traced_exec(&mut svc, task, &alias, &ctx);
                            local.push((task.name.clone(), exec));
                        }
                        (alias, svc, local)
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("task thread panicked")).collect()
            });
            for (alias, svc, local) in finished {
                state.services.insert(alias, svc);
                executions.extend(local);
            }
        } else {
            for (alias, tasks) in groups {
                let svc = state.services.get_mut(&alias).expect("checked above");
                for task in &tasks {
                    let exec = traced_exec(svc, task, &alias, ctx);
                    executions.push((task.name.clone(), exec));
                }
            }
        }

        for (name, exec) in executions {
            state.outcome.task_statuses.insert(name.clone(), exec.status);
            if let Some(error) = exec.error {
                state.outcome.task_errors.insert(name.clone(), error);
            }
            if let Some(result) = exec.result {
                state.outcome.task_results.insert(name.clone(), result);
            }
            if let Some(observer) = &self.observer {
                observer.task_executed(&state.defs[&name], state.outcome.task_statuses[&name])?;
            }
        }
        Ok(())
    }

    fn commit_task(&self, name: &str, state: &mut RunState, ctx: &SpanCtx) -> Result<(), DolError> {
        let def =
            state.defs.get(name).ok_or_else(|| DolError::UnknownTask(name.to_string()))?.clone();
        let status = state.outcome.task_statuses[name];
        match status {
            TaskStatus::Prepared => {
                let svc = state
                    .services
                    .get_mut(&def.service)
                    .ok_or_else(|| DolError::UnknownService(def.service.clone()))?;
                let span = ctx.child(format!("commit:{name}"));
                span.note("service", &def.service);
                svc.commit_task_traced(name, &span)?;
                state.outcome.task_statuses.insert(name.to_string(), TaskStatus::Committed);
                if let Some(observer) = &self.observer {
                    observer.task_resolved(name, TaskStatus::Committed)?;
                }
                Ok(())
            }
            TaskStatus::Committed => Ok(()), // idempotent
            other => Err(DolError::BadTaskStatus {
                task: name.to_string(),
                action: "commit",
                status: other.code(),
            }),
        }
    }

    fn abort_task(&self, name: &str, state: &mut RunState, ctx: &SpanCtx) -> Result<(), DolError> {
        let def =
            state.defs.get(name).ok_or_else(|| DolError::UnknownTask(name.to_string()))?.clone();
        let status = state.outcome.task_statuses[name];
        match status {
            TaskStatus::Prepared => {
                let svc = state
                    .services
                    .get_mut(&def.service)
                    .ok_or_else(|| DolError::UnknownService(def.service.clone()))?;
                let span = ctx.child(format!("abort:{name}"));
                span.note("service", &def.service);
                svc.abort_task_traced(name, &span)?;
                state.outcome.task_statuses.insert(name.to_string(), TaskStatus::Aborted);
                if let Some(observer) = &self.observer {
                    observer.task_resolved(name, TaskStatus::Aborted)?;
                }
                Ok(())
            }
            // Already failed locally: aborting is a no-op (the paper's else
            // branch aborts the whole vital set, members of which may have
            // aborted on their own).
            TaskStatus::Aborted | TaskStatus::Error => Ok(()),
            other => Err(DolError::BadTaskStatus {
                task: name.to_string(),
                action: "abort",
                status: other.code(),
            }),
        }
    }

    fn compensate_task(
        &self,
        name: &str,
        state: &mut RunState,
        ctx: &SpanCtx,
    ) -> Result<(), DolError> {
        let def =
            state.defs.get(name).ok_or_else(|| DolError::UnknownTask(name.to_string()))?.clone();
        if def.compensation.is_empty() {
            return Err(DolError::NoCompensation(name.to_string()));
        }
        let status = state.outcome.task_statuses[name];
        match status {
            TaskStatus::Committed => {
                let svc = state
                    .services
                    .get_mut(&def.service)
                    .ok_or_else(|| DolError::UnknownService(def.service.clone()))?;
                let span = ctx.child(format!("compensate:{name}"));
                span.note("service", &def.service);
                svc.compensate_task_traced(&def, &span)?;
                state.outcome.task_statuses.insert(name.to_string(), TaskStatus::Compensated);
                if let Some(observer) = &self.observer {
                    observer.task_resolved(name, TaskStatus::Compensated)?;
                }
                Ok(())
            }
            other => Err(DolError::BadTaskStatus {
                task: name.to_string(),
                action: "compensate",
                status: other.code(),
            }),
        }
    }
}

/// Evaluates a status condition.
pub fn eval_cond(cond: &DolCond, statuses: &HashMap<String, TaskStatus>) -> Result<bool, DolError> {
    match cond {
        DolCond::StatusEq { task, status } => statuses
            .get(task)
            .map(|s| s == status)
            .ok_or_else(|| DolError::UnknownTask(task.clone())),
        DolCond::And(a, b) => Ok(eval_cond(a, statuses)? && eval_cond(b, statuses)?),
        DolCond::Or(a, b) => Ok(eval_cond(a, statuses)? || eval_cond(b, statuses)?),
        DolCond::Not(a) => Ok(!eval_cond(a, statuses)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Duration;

    /// A scripted in-memory service for engine tests.
    #[derive(Default)]
    struct MockState {
        fail_tasks: Vec<String>,
        log: Vec<String>,
        delay: Option<Duration>,
    }

    #[derive(Clone, Default)]
    struct MockFactory {
        state: Arc<Mutex<MockState>>,
    }

    struct MockService {
        service: String,
        state: Arc<Mutex<MockState>>,
    }

    impl ServiceFactory for MockFactory {
        fn connect(&self, service: &str, _site: &str) -> Result<Box<dyn DolService>, DolError> {
            if service == "unreachable" {
                return Err(DolError::OpenFailed {
                    service: service.into(),
                    reason: "no route".into(),
                });
            }
            self.state.lock().log.push(format!("open {service}"));
            Ok(Box::new(MockService { service: service.into(), state: Arc::clone(&self.state) }))
        }
    }

    impl DolService for MockService {
        fn execute_task(&mut self, task: &TaskDef) -> TaskExecution {
            let delay = self.state.lock().delay;
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            let mut st = self.state.lock();
            st.log.push(format!("exec {} on {}", task.name, self.service));
            if st.fail_tasks.contains(&task.name) {
                return TaskExecution::aborted("scripted failure");
            }
            if task.nocommit {
                TaskExecution::prepared()
            } else {
                TaskExecution::committed(Some(format!("result-of-{}", task.name)))
            }
        }

        fn commit_task(&mut self, task_name: &str) -> Result<(), DolError> {
            self.state.lock().log.push(format!("commit {task_name}"));
            Ok(())
        }

        fn abort_task(&mut self, task_name: &str) -> Result<(), DolError> {
            self.state.lock().log.push(format!("abort {task_name}"));
            Ok(())
        }

        fn compensate_task(&mut self, task: &TaskDef) -> Result<(), DolError> {
            self.state.lock().log.push(format!("compensate {}", task.name));
            Ok(())
        }

        fn close(&mut self) {
            self.state.lock().log.push(format!("close {}", self.service));
        }
    }

    const PAPER: &str = "
        DOLBEGIN
        OPEN continental AT site1 AS cont;
        OPEN delta AT site2 AS delta;
        OPEN united AT site3 AS unit;
        TASK T1 NOCOMMIT FOR cont { UPDATE flights SET rate = rate } ENDTASK;
        TASK T2 FOR delta { UPDATE flight SET rate = rate } ENDTASK;
        TASK T3 NOCOMMIT FOR unit { UPDATE flight SET rates = rates } ENDTASK;
        IF (T1=P) AND (T3=P) THEN
        BEGIN COMMIT T1, T3; DOLSTATUS=0; END;
        ELSE
        BEGIN ABORT T1, T3; DOLSTATUS=1; END;
        CLOSE cont delta unit;
        DOLEND";

    #[test]
    fn happy_path_commits_vital_tasks() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let out = engine.execute(&parse_program(PAPER).unwrap()).unwrap();
        assert_eq!(out.dolstatus, 0);
        assert_eq!(out.status("T1"), Some(TaskStatus::Committed));
        assert_eq!(out.status("T2"), Some(TaskStatus::Committed));
        assert_eq!(out.status("T3"), Some(TaskStatus::Committed));
        let log = factory.state.lock().log.clone();
        assert!(log.contains(&"commit T1".to_string()));
        assert!(log.contains(&"commit T3".to_string()));
        assert!(log.contains(&"close united".to_string()));
    }

    #[test]
    fn vital_failure_takes_else_branch() {
        let factory = MockFactory::default();
        factory.state.lock().fail_tasks.push("T3".into());
        let engine = DolEngine::new(&factory);
        let out = engine.execute(&parse_program(PAPER).unwrap()).unwrap();
        assert_eq!(out.dolstatus, 1);
        assert_eq!(out.status("T1"), Some(TaskStatus::Aborted));
        assert_eq!(out.status("T3"), Some(TaskStatus::Aborted));
        // Non-vital T2 autocommitted regardless.
        assert_eq!(out.status("T2"), Some(TaskStatus::Committed));
        let log = factory.state.lock().log.clone();
        assert!(log.contains(&"abort T1".to_string()));
        // T3 failed locally; no abort message needed for it.
        assert!(!log.contains(&"abort T3".to_string()));
    }

    #[test]
    fn task_errors_are_collected() {
        let factory = MockFactory::default();
        factory.state.lock().fail_tasks.push("T3".into());
        let engine = DolEngine::new(&factory);
        let out = engine.execute(&parse_program(PAPER).unwrap()).unwrap();
        assert_eq!(out.error("T3"), Some("scripted failure"));
        assert_eq!(out.error("T1"), None, "an aborted-but-healthy task carries no local error");
        assert_eq!(out.error("T2"), None);
    }

    #[test]
    fn task_results_are_collected() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let out = engine
            .execute(
                &parse_program(
                    "DOLBEGIN
                     OPEN avis AT s1 AS a;
                     TASK Q1 FOR a { SELECT code FROM cars } ENDTASK;
                     DOLEND",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.task_results["Q1"], "result-of-Q1");
    }

    #[test]
    fn compensate_requires_comp_block_and_committed_status() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        // No COMP block → error.
        let err = engine.execute(
            &parse_program(
                "DOLBEGIN
                 OPEN c AT s AS c;
                 TASK T1 FOR c { UPDATE x SET y = 1 } ENDTASK;
                 COMPENSATE T1;
                 DOLEND",
            )
            .unwrap(),
        );
        assert!(matches!(err, Err(DolError::NoCompensation(_))));

        // With COMP block on a committed task → status becomes Compensated.
        let out = engine
            .execute(
                &parse_program(
                    "DOLBEGIN
                     OPEN c AT s AS c;
                     TASK T1 FOR c { UPDATE x SET y = 1 } COMP { UPDATE x SET y = 0 } ENDTASK;
                     COMPENSATE T1;
                     DOLEND",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.status("T1"), Some(TaskStatus::Compensated));
        assert!(factory.state.lock().log.contains(&"compensate T1".to_string()));
    }

    #[test]
    fn commit_non_prepared_task_is_an_error() {
        let factory = MockFactory::default();
        factory.state.lock().fail_tasks.push("T1".into());
        let engine = DolEngine::new(&factory);
        let err = engine.execute(
            &parse_program(
                "DOLBEGIN
                 OPEN c AT s AS c;
                 TASK T1 NOCOMMIT FOR c { UPDATE x SET y = 1 } ENDTASK;
                 COMMIT T1;
                 DOLEND",
            )
            .unwrap(),
        );
        assert!(matches!(err, Err(DolError::BadTaskStatus { action: "commit", .. })));
    }

    #[test]
    fn open_failure_propagates() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let err =
            engine.execute(&parse_program("DOLBEGIN OPEN unreachable AT s AS u; DOLEND").unwrap());
        assert!(matches!(err, Err(DolError::OpenFailed { .. })));
    }

    #[test]
    fn task_on_unopened_alias_is_an_error() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let err = engine.execute(
            &parse_program("DOLBEGIN TASK T1 FOR ghost { SELECT 1 } ENDTASK; DOLEND").unwrap(),
        );
        assert!(matches!(err, Err(DolError::UnknownService(_))));
    }

    #[test]
    fn duplicate_task_name_is_an_error() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let err = engine.execute(
            &parse_program(
                "DOLBEGIN
                 OPEN a AT s AS a;
                 TASK T1 FOR a { SELECT 1 } ENDTASK;
                 TASK T1 FOR a { SELECT 2 } ENDTASK;
                 DOLEND",
            )
            .unwrap(),
        );
        assert!(matches!(err, Err(DolError::Duplicate(_))));
    }

    #[test]
    fn condition_over_unknown_task_is_an_error() {
        let factory = MockFactory::default();
        let engine = DolEngine::new(&factory);
        let err =
            engine.execute(&parse_program("DOLBEGIN IF T9=P THEN DOLSTATUS=0; DOLEND").unwrap());
        assert!(matches!(err, Err(DolError::UnknownTask(_))));
    }

    #[test]
    fn parallel_batch_overlaps_task_latency() {
        let factory = MockFactory::default();
        factory.state.lock().delay = Some(Duration::from_millis(40));
        let program = parse_program(
            "DOLBEGIN
             OPEN a AT s1 AS a;
             OPEN b AT s2 AS b;
             OPEN c AT s3 AS c;
             TASK T1 FOR a { SELECT 1 } ENDTASK;
             TASK T2 FOR b { SELECT 1 } ENDTASK;
             TASK T3 FOR c { SELECT 1 } ENDTASK;
             DOLEND",
        )
        .unwrap();

        let start = std::time::Instant::now();
        DolEngine::new(&factory).execute(&program).unwrap();
        let parallel_time = start.elapsed();

        let start = std::time::Instant::now();
        DolEngine::serial(&factory).execute(&program).unwrap();
        let serial_time = start.elapsed();

        assert!(parallel_time < Duration::from_millis(100), "parallel: {parallel_time:?}");
        assert!(serial_time >= Duration::from_millis(110), "serial: {serial_time:?}");
    }

    #[test]
    fn tasks_on_same_service_run_in_order_even_in_parallel_mode() {
        let factory = MockFactory::default();
        let program = parse_program(
            "DOLBEGIN
             OPEN a AT s1 AS a;
             TASK T1 FOR a { SELECT 1 } ENDTASK;
             TASK T2 FOR a { SELECT 2 } ENDTASK;
             DOLEND",
        )
        .unwrap();
        DolEngine::new(&factory).execute(&program).unwrap();
        let log = factory.state.lock().log.clone();
        let i1 = log.iter().position(|l| l == "exec T1 on a").unwrap();
        let i2 = log.iter().position(|l| l == "exec T2 on a").unwrap();
        assert!(i1 < i2);
    }

    /// Records observer callbacks; optionally halts at the n-th one.
    #[derive(Default)]
    struct RecordingObserver {
        events: Mutex<Vec<String>>,
        halt_at: Option<usize>,
    }

    impl RecordingObserver {
        fn record(&self, event: String) -> Result<(), DolError> {
            let mut events = self.events.lock();
            if self.halt_at == Some(events.len()) {
                return Err(DolError::Halted(format!("at event {}", events.len())));
            }
            events.push(event);
            Ok(())
        }
    }

    impl TaskObserver for RecordingObserver {
        fn task_executed(&self, task: &TaskDef, status: TaskStatus) -> Result<(), DolError> {
            self.record(format!("exec {} {}", task.name, status.code()))
        }

        fn decision(&self, code: i32) -> Result<(), DolError> {
            self.record(format!("decide {code}"))
        }

        fn task_resolved(&self, task: &str, status: TaskStatus) -> Result<(), DolError> {
            self.record(format!("resolve {} {}", task, status.code()))
        }
    }

    const OBSERVED: &str = "
        DOLBEGIN
        OPEN a AT s1 AS a;
        OPEN b AT s2 AS b;
        TASK T1 NOCOMMIT FOR a { UPDATE x SET y = 1 } ENDTASK;
        TASK T2 NOCOMMIT FOR b { UPDATE x SET y = 2 } ENDTASK;
        IF (T1=P) AND (T2=P) THEN
        BEGIN DECIDE 0; COMMIT T1, T2; DOLSTATUS=0; END;
        ELSE
        BEGIN DECIDE 1; ABORT T1, T2; DOLSTATUS=1; END;
        CLOSE a b;
        DOLEND";

    #[test]
    fn observer_sees_protocol_transitions_in_order() {
        let factory = MockFactory::default();
        let observer = Arc::new(RecordingObserver::default());
        let mut engine = DolEngine::serial(&factory);
        engine.observer = Some(Arc::clone(&observer) as Arc<dyn TaskObserver>);
        let out = engine.execute(&parse_program(OBSERVED).unwrap()).unwrap();
        assert_eq!(out.dolstatus, 0);
        let events = observer.events.lock().clone();
        assert_eq!(
            events,
            vec!["exec T1 P", "exec T2 P", "decide 0", "resolve T1 C", "resolve T2 C"]
        );
    }

    #[test]
    fn halting_observer_stops_execution_before_settle() {
        let factory = MockFactory::default();
        // Halt at the decision callback: votes are in, no settle message out.
        let observer =
            Arc::new(RecordingObserver { halt_at: Some(2), ..RecordingObserver::default() });
        let mut engine = DolEngine::serial(&factory);
        engine.observer = Some(Arc::clone(&observer) as Arc<dyn TaskObserver>);
        let err = engine.execute(&parse_program(OBSERVED).unwrap());
        assert!(matches!(err, Err(DolError::Halted(_))), "{err:?}");
        assert_eq!(observer.events.lock().clone(), vec!["exec T1 P", "exec T2 P"]);
        let log = factory.state.lock().log.clone();
        assert!(!log.iter().any(|l| l.starts_with("commit")), "no settle after halt: {log:?}");
        assert!(!log.iter().any(|l| l.starts_with("abort")), "{log:?}");
    }

    #[test]
    fn decide_without_observer_is_a_no_op() {
        let factory = MockFactory::default();
        let out = DolEngine::serial(&factory)
            .execute(&parse_program("DOLBEGIN DECIDE 7; DOLSTATUS=0; DOLEND").unwrap())
            .unwrap();
        assert_eq!(out.dolstatus, 0);
    }

    #[test]
    fn abort_is_idempotent_for_already_aborted() {
        let factory = MockFactory::default();
        factory.state.lock().fail_tasks.push("T1".into());
        let engine = DolEngine::new(&factory);
        let out = engine
            .execute(
                &parse_program(
                    "DOLBEGIN
                     OPEN a AT s AS a;
                     TASK T1 NOCOMMIT FOR a { UPDATE x SET y = 1 } ENDTASK;
                     ABORT T1;
                     DOLSTATUS=1;
                     DOLEND",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.status("T1"), Some(TaskStatus::Aborted));
        assert_eq!(out.dolstatus, 1);
    }
}
