//! DOL errors.

use std::fmt;

/// Errors raised while parsing or executing DOL programs.
#[derive(Debug, Clone, PartialEq)]
pub enum DolError {
    /// Syntax error in a DOL program.
    Parse {
        /// What went wrong.
        message: String,
        /// Line number (1-based).
        line: usize,
    },
    /// A task name was used before being defined.
    UnknownTask(String),
    /// A service alias was used before OPEN.
    UnknownService(String),
    /// OPEN failed (service not registered / unreachable).
    OpenFailed {
        /// The service name.
        service: String,
        /// Why.
        reason: String,
    },
    /// A task was committed/aborted in an incompatible status.
    BadTaskStatus {
        /// The task.
        task: String,
        /// What was attempted.
        action: &'static str,
        /// Its current status code.
        status: char,
    },
    /// COMPENSATE was issued for a task without a compensation block.
    NoCompensation(String),
    /// A duplicate task or alias name.
    Duplicate(String),
    /// Error reported by the underlying service.
    Service(String),
    /// A second-phase COMMIT may or may not have taken effect: every
    /// acknowledgement was lost and the retry budget is exhausted. The task
    /// must not be treated as aborted — only recovery can learn its fate.
    InDoubt {
        /// The service whose acknowledgement was lost.
        service: String,
        /// The in-doubt task.
        task: String,
    },
    /// Execution was halted mid-program by an observer (simulated
    /// coordinator crash). Everything after the halt point — including the
    /// settle phase — is skipped, exactly as if the coordinator died.
    Halted(String),
}

impl fmt::Display for DolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DolError::Parse { message, line } => {
                write!(f, "DOL parse error (line {line}): {message}")
            }
            DolError::UnknownTask(t) => write!(f, "unknown task `{t}`"),
            DolError::UnknownService(s) => write!(f, "unknown service alias `{s}`"),
            DolError::OpenFailed { service, reason } => {
                write!(f, "OPEN {service} failed: {reason}")
            }
            DolError::BadTaskStatus { task, action, status } => {
                write!(f, "cannot {action} task `{task}` in status {status}")
            }
            DolError::NoCompensation(t) => {
                write!(f, "task `{t}` has no compensating action")
            }
            DolError::Duplicate(n) => write!(f, "duplicate name `{n}`"),
            DolError::Service(m) => write!(f, "service error: {m}"),
            DolError::InDoubt { service, task } => write!(
                f,
                "task `{task}` is in doubt at `{service}`: commit acknowledgement lost, \
                 retry budget exhausted"
            ),
            DolError::Halted(m) => write!(f, "execution halted: {m}"),
        }
    }
}

impl std::error::Error for DolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_context() {
        let e = DolError::BadTaskStatus { task: "T1".into(), action: "commit", status: 'A' };
        let s = e.to_string();
        assert!(s.contains("T1") && s.contains("commit") && s.contains('A'));
    }
}
