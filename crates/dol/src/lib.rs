//! # dol — the DOL task-specification language and its execution engine
//!
//! DOL is the intermediate language of the Narada environment (paper §4.1):
//! MSQL queries are translated into DOL programs, which "specify different
//! actions, their logical dependencies, data paths among them, and the
//! possible concurrency". This crate provides:
//!
//! * the DOL AST ([`ast`]) covering the constructs the paper's §4.3 program
//!   uses — `DOLBEGIN/DOLEND`, `OPEN ... AT ... AS ...`, `TASK ... NOCOMMIT
//!   FOR ... { sql } ENDTASK`, status tests `(T1=P)`, `IF/THEN/ELSE`,
//!   `COMMIT`/`ABORT` task lists, `DOLSTATUS` return codes, `CLOSE` — plus
//!   the compensation extension (`COMP { sql }` blocks on tasks and the
//!   `COMPENSATE` statement) the paper's §3.3 semantics require;
//! * a parser ([`parser`]) and printer ([`printer`]) for the concrete syntax
//!   used in the paper's listings (task bodies are literal SQL between
//!   braces);
//! * the engine ([`engine::DolEngine`]): opens services, runs consecutive
//!   `TASK` blocks serially or in parallel (the data-flow parallelism the
//!   paper says global optimization should exploit), tracks task statuses
//!   (`P`/`C`/`A`/`E`), evaluates status conditions, and drives
//!   commit/abort/compensate against an abstract [`engine::DolService`] —
//!   implemented over the network by the multidatabase layer's Local Access
//!   Managers.

pub mod ast;
pub mod engine;
pub mod error;
pub mod parser;
pub mod printer;

pub use ast::{DolCond, DolProgram, DolStmt, TaskDef, TaskStatus};
pub use engine::{DolEngine, DolOutcome, DolService, ServiceFactory, TaskObserver};
pub use error::DolError;
pub use parser::parse_program;
pub use printer::print_program;
