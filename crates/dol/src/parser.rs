//! Parser for the concrete DOL syntax used in the paper's listings.

use crate::ast::{DolCond, DolProgram, DolStmt, TaskDef, TaskStatus};
use crate::error::DolError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Int(i32),
    Block(String),
    Semi,
    Comma,
    LParen,
    RParen,
    Eq,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> DolError {
        DolError::Parse { message: message.into(), line: self.line }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, DolError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'-' if self.bytes.get(self.pos + 1) == Some(&b'-') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b';' => {
                    out.push((Tok::Semi, self.line));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Tok::Comma, self.line));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Tok::LParen, self.line));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Tok::RParen, self.line));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((Tok::Eq, self.line));
                    self.pos += 1;
                }
                b'{' => {
                    let start = self.pos + 1;
                    let mut end = start;
                    while end < self.bytes.len() && self.bytes[end] != b'}' {
                        if self.bytes[end] == b'\n' {
                            self.line += 1;
                        }
                        end += 1;
                    }
                    if end >= self.bytes.len() {
                        return Err(self.error("unterminated `{` block"));
                    }
                    out.push((Tok::Block(self.src[start..end].trim().to_string()), self.line));
                    self.pos = end + 1;
                }
                _ if b.is_ascii_digit() => {
                    let start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = &self.src[start..self.pos];
                    let v: i32 =
                        text.parse().map_err(|_| self.error(format!("bad integer `{text}`")))?;
                    out.push((Tok::Int(v), self.line));
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => {
                    let start = self.pos;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    out.push((Tok::Word(self.src[start..self.pos].to_string()), self.line));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> DolError {
        DolError::Parse { message: message.into(), line: self.line() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DolError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", kw.to_uppercase())))
        }
    }

    fn expect_word(&mut self) -> Result<String, DolError> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(self.error(format!("expected a name, found {other:?}"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), DolError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn parse_program(&mut self) -> Result<DolProgram, DolError> {
        self.expect_kw("dolbegin")?;
        let mut statements = Vec::new();
        while !self.peek_kw("dolend") {
            if self.peek().is_none() {
                return Err(self.error("missing DOLEND"));
            }
            statements.push(self.parse_stmt()?);
            while self.eat(&Tok::Semi) {}
        }
        self.expect_kw("dolend")?;
        Ok(DolProgram { statements })
    }

    fn parse_stmt(&mut self) -> Result<DolStmt, DolError> {
        if self.eat_kw("open") {
            let service = self.expect_word()?;
            self.expect_kw("at")?;
            let site = self.expect_word()?;
            self.expect_kw("as")?;
            let alias = self.expect_word()?;
            return Ok(DolStmt::Open { service, site, alias });
        }
        if self.eat_kw("task") {
            return self.parse_task();
        }
        if self.eat_kw("if") {
            return self.parse_if();
        }
        if self.eat_kw("commit") {
            return Ok(DolStmt::Commit { tasks: self.parse_name_list()? });
        }
        if self.eat_kw("abort") {
            return Ok(DolStmt::Abort { tasks: self.parse_name_list()? });
        }
        if self.eat_kw("compensate") {
            return Ok(DolStmt::Compensate { task: self.expect_word()? });
        }
        if self.eat_kw("decide") {
            match self.bump() {
                Some(Tok::Int(v)) => return Ok(DolStmt::Decide(v)),
                other => return Err(self.error(format!("expected a code, found {other:?}"))),
            }
        }
        if self.eat_kw("dolstatus") {
            self.expect(&Tok::Eq)?;
            match self.bump() {
                Some(Tok::Int(v)) => return Ok(DolStmt::SetStatus(v)),
                other => return Err(self.error(format!("expected a code, found {other:?}"))),
            }
        }
        if self.eat_kw("close") {
            let mut aliases = Vec::new();
            while let Some(Tok::Word(_)) = self.peek() {
                aliases.push(self.expect_word()?);
                self.eat(&Tok::Comma);
            }
            if aliases.is_empty() {
                return Err(self.error("CLOSE requires at least one alias"));
            }
            return Ok(DolStmt::Close { aliases });
        }
        Err(self.error(format!("unexpected token {:?}", self.peek())))
    }

    fn parse_name_list(&mut self) -> Result<Vec<String>, DolError> {
        let mut names = vec![self.expect_word()?];
        while self.eat(&Tok::Comma) {
            names.push(self.expect_word()?);
        }
        Ok(names)
    }

    fn parse_task(&mut self) -> Result<DolStmt, DolError> {
        let name = self.expect_word()?;
        let nocommit = self.eat_kw("nocommit");
        self.expect_kw("for")?;
        let service = self.expect_word()?;
        let commands = match self.bump() {
            Some(Tok::Block(b)) => split_commands(&b),
            other => {
                return Err(self.error(format!("expected a `{{ sql }}` block, found {other:?}")))
            }
        };
        let compensation = if self.eat_kw("comp") {
            match self.bump() {
                Some(Tok::Block(b)) => split_commands(&b),
                other => return Err(self.error(format!("expected a COMP block, found {other:?}"))),
            }
        } else {
            Vec::new()
        };
        self.expect_kw("endtask")?;
        Ok(DolStmt::Task(TaskDef { name, service, nocommit, commands, compensation }))
    }

    fn parse_if(&mut self) -> Result<DolStmt, DolError> {
        let cond = self.parse_cond()?;
        self.expect_kw("then")?;
        let then_branch = self.parse_branch()?;
        let else_branch = if self.eat_kw("else") { self.parse_branch()? } else { Vec::new() };
        Ok(DolStmt::If { cond, then_branch, else_branch })
    }

    fn parse_branch(&mut self) -> Result<Vec<DolStmt>, DolError> {
        if self.eat_kw("begin") {
            let mut stmts = Vec::new();
            while !self.peek_kw("end") {
                if self.peek().is_none() {
                    return Err(self.error("missing END"));
                }
                stmts.push(self.parse_stmt()?);
                while self.eat(&Tok::Semi) {}
            }
            self.expect_kw("end")?;
            self.eat(&Tok::Semi);
            Ok(stmts)
        } else {
            let s = self.parse_stmt()?;
            self.eat(&Tok::Semi);
            Ok(vec![s])
        }
    }

    fn parse_cond(&mut self) -> Result<DolCond, DolError> {
        let mut left = self.parse_cond_and()?;
        while self.eat_kw("or") {
            let right = self.parse_cond_and()?;
            left = DolCond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cond_and(&mut self) -> Result<DolCond, DolError> {
        let mut left = self.parse_cond_atom()?;
        while self.eat_kw("and") {
            let right = self.parse_cond_atom()?;
            left = DolCond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cond_atom(&mut self) -> Result<DolCond, DolError> {
        if self.eat_kw("not") {
            return Ok(DolCond::Not(Box::new(self.parse_cond_atom()?)));
        }
        if self.eat(&Tok::LParen) {
            let c = self.parse_cond()?;
            self.expect(&Tok::RParen)?;
            return Ok(c);
        }
        let task = self.expect_word()?;
        self.expect(&Tok::Eq)?;
        let status_word = self.expect_word()?;
        if status_word.len() != 1 {
            return Err(self.error(format!("expected a status code, found `{status_word}`")));
        }
        let status = TaskStatus::from_code(status_word.chars().next().unwrap())
            .ok_or_else(|| self.error(format!("unknown status code `{status_word}`")))?;
        Ok(DolCond::StatusEq { task, status })
    }
}

/// Splits a `{ ... }` block into individual SQL commands on semicolons.
fn split_commands(block: &str) -> Vec<String> {
    // Semicolons inside string literals must not split.
    let mut commands = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for ch in block.chars() {
        match ch {
            '\'' => {
                in_string = !in_string;
                current.push(ch);
            }
            ';' if !in_string => {
                let trimmed = current.trim();
                if !trimmed.is_empty() {
                    commands.push(trimmed.to_string());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    let trimmed = current.trim();
    if !trimmed.is_empty() {
        commands.push(trimmed.to_string());
    }
    commands
}

/// Parses a DOL program.
pub fn parse_program(src: &str) -> Result<DolProgram, DolError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_PROGRAM: &str = "
        DOLBEGIN
        OPEN continental AT site1 AS cont;
        OPEN delta AT site2 AS delta;
        OPEN united AT site3 AS unit;
        TASK T1 NOCOMMIT FOR cont
        { UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' }
        ENDTASK;
        TASK T2 FOR delta
        { UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' }
        ENDTASK;
        TASK T3 NOCOMMIT FOR unit
        { UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' }
        ENDTASK;
        IF (T1=P) AND (T3=P) THEN
        BEGIN
            COMMIT T1, T3;
            DOLSTATUS=0;
        END;
        ELSE
        BEGIN
            ABORT T1, T3;
            DOLSTATUS=1;
        END;
        CLOSE cont delta unit;
        DOLEND";

    #[test]
    fn parses_the_papers_program() {
        let p = parse_program(PAPER_PROGRAM).unwrap();
        assert_eq!(p.statements.len(), 8);
        // Three OPENs.
        assert!(matches!(&p.statements[0], DolStmt::Open { service, site, alias }
            if service == "continental" && site == "site1" && alias == "cont"));
        // Tasks.
        let tasks = p.tasks();
        assert_eq!(tasks.len(), 3);
        assert!(tasks[0].nocommit);
        assert!(!tasks[1].nocommit);
        assert_eq!(tasks[0].service, "cont");
        assert_eq!(tasks[0].commands.len(), 1);
        assert!(tasks[0].commands[0].starts_with("UPDATE flights"));
        // The IF.
        let DolStmt::If { cond, then_branch, else_branch } = &p.statements[6] else {
            panic!("{:?}", p.statements[6])
        };
        assert_eq!(
            *cond,
            DolCond::And(
                Box::new(DolCond::StatusEq { task: "T1".into(), status: TaskStatus::Prepared }),
                Box::new(DolCond::StatusEq { task: "T3".into(), status: TaskStatus::Prepared }),
            )
        );
        assert_eq!(then_branch.len(), 2);
        assert!(
            matches!(&then_branch[0], DolStmt::Commit { tasks } if tasks == &vec!["T1".to_string(), "T3".to_string()])
        );
        assert!(matches!(then_branch[1], DolStmt::SetStatus(0)));
        assert!(matches!(&else_branch[0], DolStmt::Abort { .. }));
        assert!(matches!(else_branch[1], DolStmt::SetStatus(1)));
        // CLOSE.
        assert!(matches!(&p.statements[7], DolStmt::Close { aliases } if aliases.len() == 3));
    }

    #[test]
    fn parses_task_with_compensation() {
        let p = parse_program(
            "DOLBEGIN
             OPEN continental AT site1 AS cont;
             TASK T1 FOR cont
             { UPDATE flights SET rate = rate * 1.1 }
             COMP
             { UPDATE flights SET rate = rate / 1.1 }
             ENDTASK;
             COMPENSATE T1;
             DOLEND",
        )
        .unwrap();
        let tasks = p.tasks();
        assert_eq!(tasks[0].compensation.len(), 1);
        assert!(tasks[0].compensation[0].contains("/ 1.1"));
        assert!(matches!(&p.statements[2], DolStmt::Compensate { task } if task == "T1"));
    }

    #[test]
    fn splits_multiple_commands_in_block() {
        let p = parse_program(
            "DOLBEGIN
             TASK T1 FOR svc
             { INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); }
             ENDTASK;
             DOLEND",
        )
        .unwrap();
        assert_eq!(p.tasks()[0].commands.len(), 2);
    }

    #[test]
    fn semicolon_inside_string_does_not_split() {
        let p = parse_program(
            "DOLBEGIN
             TASK T1 FOR svc
             { INSERT INTO t VALUES ('a;b') }
             ENDTASK;
             DOLEND",
        )
        .unwrap();
        assert_eq!(p.tasks()[0].commands.len(), 1);
        assert!(p.tasks()[0].commands[0].contains("a;b"));
    }

    #[test]
    fn condition_precedence_not_and_or() {
        let p = parse_program(
            "DOLBEGIN
             IF NOT T1=A AND T2=P OR T3=C THEN DOLSTATUS=0;
             DOLEND",
        )
        .unwrap();
        let DolStmt::If { cond, .. } = &p.statements[0] else { panic!() };
        // ((NOT T1=A) AND T2=P) OR T3=C
        let DolCond::Or(left, right) = cond else { panic!("{cond:?}") };
        assert!(matches!(**right, DolCond::StatusEq { .. }));
        let DolCond::And(l2, _) = left.as_ref() else { panic!() };
        assert!(matches!(**l2, DolCond::Not(_)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("DOLBEGIN\nOPEN x\nDOLEND").unwrap_err();
        let DolError::Parse { line, .. } = err else { panic!() };
        assert_eq!(line, 3); // `AT` expected where DOLEND appears
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse_program("DOLBEGIN TASK T1 FOR s { oops ENDTASK; DOLEND").is_err());
    }

    #[test]
    fn rejects_missing_dolend() {
        assert!(parse_program("DOLBEGIN OPEN a AT b AS c;").is_err());
    }

    #[test]
    fn parses_decide() {
        let p = parse_program("DOLBEGIN DECIDE 0; DECIDE 99; DOLEND").unwrap();
        assert!(matches!(p.statements[0], DolStmt::Decide(0)));
        assert!(matches!(p.statements[1], DolStmt::Decide(99)));
        assert!(parse_program("DOLBEGIN DECIDE x; DOLEND").is_err());
    }

    #[test]
    fn if_without_else() {
        let p = parse_program("DOLBEGIN IF T1=C THEN DOLSTATUS=0; DOLEND").unwrap();
        let DolStmt::If { else_branch, .. } = &p.statements[0] else { panic!() };
        assert!(else_branch.is_empty());
    }
}
