//! Rendering DOL programs in the paper's concrete syntax.
//!
//! The output of [`print_program`] reparses to an identical AST and matches
//! the layout style of the listing in §4.3, which the golden-file experiment
//! D1 compares against.

use crate::ast::{DolCond, DolProgram, DolStmt, TaskDef};
use std::fmt::Write as _;

/// Renders a program.
pub fn print_program(p: &DolProgram) -> String {
    let mut out = String::from("DOLBEGIN\n");
    for stmt in &p.statements {
        write_stmt(&mut out, stmt, 1);
    }
    out.push_str("DOLEND\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, stmt: &DolStmt, level: usize) {
    match stmt {
        DolStmt::Open { service, site, alias } => {
            indent(out, level);
            let _ = writeln!(out, "OPEN {service} AT {site} AS {alias};");
        }
        DolStmt::Task(task) => write_task(out, task, level),
        DolStmt::If { cond, then_branch, else_branch } => {
            indent(out, level);
            let _ = writeln!(out, "IF {} THEN", print_cond(cond));
            indent(out, level);
            out.push_str("BEGIN\n");
            for s in then_branch {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("END;\n");
            if !else_branch.is_empty() {
                indent(out, level);
                out.push_str("ELSE\n");
                indent(out, level);
                out.push_str("BEGIN\n");
                for s in else_branch {
                    write_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("END;\n");
            }
        }
        DolStmt::Commit { tasks } => {
            indent(out, level);
            let _ = writeln!(out, "COMMIT {};", tasks.join(", "));
        }
        DolStmt::Abort { tasks } => {
            indent(out, level);
            let _ = writeln!(out, "ABORT {};", tasks.join(", "));
        }
        DolStmt::Compensate { task } => {
            indent(out, level);
            let _ = writeln!(out, "COMPENSATE {task};");
        }
        DolStmt::Decide(code) => {
            indent(out, level);
            let _ = writeln!(out, "DECIDE {code};");
        }
        DolStmt::SetStatus(code) => {
            indent(out, level);
            let _ = writeln!(out, "DOLSTATUS={code};");
        }
        DolStmt::Close { aliases } => {
            indent(out, level);
            let _ = writeln!(out, "CLOSE {};", aliases.join(" "));
        }
    }
}

fn write_task(out: &mut String, task: &TaskDef, level: usize) {
    indent(out, level);
    let _ = writeln!(
        out,
        "TASK {}{} FOR {}",
        task.name,
        if task.nocommit { " NOCOMMIT" } else { "" },
        task.service
    );
    indent(out, level);
    let _ = writeln!(out, "{{ {} }}", task.commands.join("; "));
    if !task.compensation.is_empty() {
        indent(out, level);
        out.push_str("COMP\n");
        indent(out, level);
        let _ = writeln!(out, "{{ {} }}", task.compensation.join("; "));
    }
    indent(out, level);
    out.push_str("ENDTASK;\n");
}

/// Renders a status condition. `AND` chains print left-associatively (the
/// parser's shape); a *right*-nested `AND` and any compound `NOT` operand
/// are parenthesised so the text reparses to the identical tree.
pub fn print_cond(c: &DolCond) -> String {
    match c {
        DolCond::StatusEq { task, status } => format!("({}={})", task, status.code()),
        DolCond::And(a, b) => {
            let right = match **b {
                DolCond::And(..) => format!("({})", print_cond(b)),
                _ => print_cond(b),
            };
            format!("{} AND {}", print_cond(a), right)
        }
        DolCond::Or(a, b) => format!("({} OR {})", print_cond(a), print_cond(b)),
        DolCond::Not(a) => match **a {
            DolCond::And(..) => format!("NOT ({})", print_cond(a)),
            _ => format!("NOT {}", print_cond(a)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn print_parse_roundtrip() {
        let src = "
            DOLBEGIN
            OPEN continental AT site1 AS cont;
            TASK T1 NOCOMMIT FOR cont
            { UPDATE flights SET rate = rate * 1.1 }
            COMP
            { UPDATE flights SET rate = rate / 1.1 }
            ENDTASK;
            IF (T1=P) AND NOT (T2=A) OR (T3=C) THEN
            BEGIN DECIDE 0; COMMIT T1; DOLSTATUS=0; END;
            ELSE
            BEGIN ABORT T1; COMPENSATE T1; DOLSTATUS=1; END;
            CLOSE cont;
            DOLEND";
        let ast = parse_program(src).unwrap();
        let printed = print_program(&ast);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(ast, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn layout_matches_paper_style() {
        let ast = parse_program(
            "DOLBEGIN
             OPEN continental AT site1 AS cont;
             TASK T1 NOCOMMIT FOR cont { UPDATE f SET x = 1 } ENDTASK;
             IF (T1=P) THEN BEGIN COMMIT T1; DOLSTATUS=0; END;
             DOLEND",
        )
        .unwrap();
        let printed = print_program(&ast);
        assert!(printed.starts_with("DOLBEGIN\n"));
        assert!(printed.contains("OPEN continental AT site1 AS cont;"));
        assert!(printed.contains("TASK T1 NOCOMMIT FOR cont"));
        assert!(printed.contains("IF (T1=P) THEN"));
        assert!(printed.contains("DOLSTATUS=0;"));
        assert!(printed.trim_end().ends_with("DOLEND"));
    }

    #[test]
    fn cond_printer_parenthesises_or() {
        let c = DolCond::And(
            Box::new(DolCond::Or(
                Box::new(DolCond::StatusEq {
                    task: "T1".into(),
                    status: crate::ast::TaskStatus::Prepared,
                }),
                Box::new(DolCond::StatusEq {
                    task: "T2".into(),
                    status: crate::ast::TaskStatus::Committed,
                }),
            )),
            Box::new(DolCond::StatusEq {
                task: "T3".into(),
                status: crate::ast::TaskStatus::Aborted,
            }),
        );
        assert_eq!(print_cond(&c), "((T1=P) OR (T2=C)) AND (T3=A)");
    }
}
