//! Property tests for DOL: print → parse roundtrip over generated programs,
//! and condition-evaluation laws.

use dol::engine::eval_cond;
use dol::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("keywords", |s| {
        !matches!(
            s.as_str(),
            "dolbegin"
                | "dolend"
                | "open"
                | "at"
                | "as"
                | "task"
                | "nocommit"
                | "for"
                | "comp"
                | "endtask"
                | "if"
                | "then"
                | "else"
                | "begin"
                | "end"
                | "commit"
                | "abort"
                | "compensate"
                | "dolstatus"
                | "close"
                | "and"
                | "or"
                | "not"
        )
    })
}

fn task_name_strategy() -> impl Strategy<Value = String> {
    "T[0-9]{1,3}".prop_map(|s| s)
}

fn status_strategy() -> impl Strategy<Value = TaskStatus> {
    prop_oneof![
        Just(TaskStatus::Prepared),
        Just(TaskStatus::Committed),
        Just(TaskStatus::Aborted),
        Just(TaskStatus::Error),
        Just(TaskStatus::Compensated),
    ]
}

fn cond_strategy() -> impl Strategy<Value = DolCond> {
    let leaf = (task_name_strategy(), status_strategy())
        .prop_map(|(task, status)| DolCond::StatusEq { task, status });
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| DolCond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| DolCond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| DolCond::Not(Box::new(a))),
        ]
    })
}

/// SQL-ish command text that survives the `{ }` block capture (no braces,
/// no semicolons outside strings — splitting is covered by unit tests).
fn command_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 =*.,<>']{1,40}".prop_map(|s| {
        let cleaned: String = s.chars().filter(|c| !matches!(c, '{' | '}' | ';')).collect();
        // Unbalanced quotes would glue statements together; keep it simple.
        let cleaned = cleaned.replace('\'', "");
        if cleaned.trim().is_empty() {
            "SELECT 1".to_string()
        } else {
            cleaned.trim().to_string()
        }
    })
}

fn stmt_strategy() -> impl Strategy<Value = DolStmt> {
    let open = (name_strategy(), name_strategy(), name_strategy())
        .prop_map(|(service, site, alias)| DolStmt::Open { service, site, alias });
    let task = (
        task_name_strategy(),
        name_strategy(),
        any::<bool>(),
        proptest::collection::vec(command_strategy(), 1..3),
        proptest::collection::vec(command_strategy(), 0..2),
    )
        .prop_map(|(name, service, nocommit, commands, compensation)| {
            DolStmt::Task(TaskDef { name, service, nocommit, commands, compensation })
        });
    let commit = proptest::collection::vec(task_name_strategy(), 1..3)
        .prop_map(|tasks| DolStmt::Commit { tasks });
    let abort = proptest::collection::vec(task_name_strategy(), 1..3)
        .prop_map(|tasks| DolStmt::Abort { tasks });
    let compensate = task_name_strategy().prop_map(|task| DolStmt::Compensate { task });
    let status = (0i32..100).prop_map(DolStmt::SetStatus);
    let close = proptest::collection::vec(name_strategy(), 1..3)
        .prop_map(|aliases| DolStmt::Close { aliases });
    let leaf = prop_oneof![open, task, commit, abort, compensate, status, close];
    (leaf, proptest::option::of(cond_strategy())).prop_map(|(stmt, cond)| match cond {
        None => stmt,
        Some(cond) => {
            DolStmt::If { cond, then_branch: vec![stmt], else_branch: vec![DolStmt::SetStatus(1)] }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn program_print_parse_roundtrip(stmts in proptest::collection::vec(stmt_strategy(), 0..8)) {
        let program = DolProgram { statements: stmts };
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(program, reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn cond_eval_respects_de_morgan(cond_a in cond_strategy(), cond_b in cond_strategy(),
                                    statuses in proptest::collection::hash_map(
                                        task_name_strategy(), status_strategy(), 0..12)) {
        let statuses: HashMap<String, TaskStatus> = statuses;
        let and = DolCond::And(Box::new(cond_a.clone()), Box::new(cond_b.clone()));
        let not_or = DolCond::Not(Box::new(DolCond::Or(
            Box::new(DolCond::Not(Box::new(cond_a))),
            Box::new(DolCond::Not(Box::new(cond_b))),
        )));
        // Both sides error on the same unknown tasks; compare only when both
        // evaluate.
        match (eval_cond(&and, &statuses), eval_cond(&not_or, &statuses)) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent evaluability: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn double_negation(cond in cond_strategy(),
                       statuses in proptest::collection::hash_map(
                           task_name_strategy(), status_strategy(), 0..12)) {
        let statuses: HashMap<String, TaskStatus> = statuses;
        let double = DolCond::Not(Box::new(DolCond::Not(Box::new(cond.clone()))));
        match (eval_cond(&cond, &statuses), eval_cond(&double, &statuses)) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent evaluability: {a:?} vs {b:?}"),
        }
    }
}
