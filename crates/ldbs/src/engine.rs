//! The engine facade: databases, sessions, transactions, 2PC.
//!
//! One [`Engine`] models one LDBMS *service* in the paper's sense — it hosts
//! one or more databases (per `CONNECTMODE`), executes local SQL, and exposes
//! whatever commit interface its [`DbmsProfile`] advertises. The
//! multidatabase layer never touches tables directly; it drives engines
//! through this API exactly the way a DOL `TASK` block drives a remote
//! service.

use crate::error::DbError;
use crate::exec::{analyze, ddl, dml, select};
use crate::failure::FailurePolicy;
use crate::profile::{DbmsProfile, StatementClass};
use crate::table::{Row, Table};
use crate::txn::{Transaction, TxnId, TxnState, UndoOp};
use crate::value::DataType;
use msql_lang::{parse_statement, QueryBody, Statement};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Output column metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column display name.
    pub name: String,
    /// Best-effort data type.
    pub data_type: DataType,
}

/// A query result: column metadata plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// The output columns.
    pub columns: Vec<ColumnMeta>,
    /// The output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT produced rows.
    Rows(ResultSet),
    /// A DML/DDL statement affected this many rows.
    Affected(usize),
}

impl ExecOutcome {
    /// Unwraps a row outcome.
    pub fn into_result_set(self) -> Result<ResultSet, DbError> {
        match self {
            ExecOutcome::Rows(rs) => Ok(rs),
            ExecOutcome::Affected(_) => {
                Err(DbError::Internal("statement did not produce rows".into()))
            }
        }
    }

    /// Number of affected rows (0 for SELECT).
    pub fn affected(&self) -> usize {
        match self {
            ExecOutcome::Rows(_) => 0,
            ExecOutcome::Affected(n) => *n,
        }
    }
}

/// One named database hosted by a service: a set of tables.
#[derive(Debug, Default)]
pub struct Database {
    /// Database name (lowercase).
    pub name: String,
    tables: HashMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into().to_ascii_lowercase(), tables: HashMap::new() }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Adds (or replaces) a table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.schema.name.clone(), table);
    }

    /// Removes a table, returning it.
    pub fn remove_table(&mut self, name: &str) -> Result<Table, DbError> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted (deterministic for IMPORT).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Execution statistics, used by benchmarks and the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements executed (any kind).
    pub statements: u64,
    /// Transactions committed (including autocommits).
    pub commits: u64,
    /// Transactions rolled back or failed.
    pub aborts: u64,
    /// Successful prepares (votes of YES).
    pub prepares: u64,
    /// Rows materialized by top-level SELECT scans and probes (subquery
    /// re-evaluation is not counted — it reuses the outer row sets).
    pub rows_scanned: u64,
    /// Candidate rows returned by index probes in top-level SELECTs.
    pub index_hits: u64,
}

/// Default number of terminal (committed/aborted) transactions retained for
/// idempotent resolve / at-most-once retry paths before being GC'd.
const DEFAULT_TERMINAL_RETENTION: usize = 256;

/// Condition-variable signal that lock waiters park on. The epoch increments
/// on every lock release, so a waiter that captured the epoch *before* a
/// failed acquisition attempt cannot miss the wake-up in between.
#[derive(Debug, Clone, Default)]
pub struct LockSignal {
    inner: Arc<(StdMutex<u64>, Condvar)>,
}

impl LockSignal {
    /// Current epoch; capture it before attempting an acquisition.
    pub fn epoch(&self) -> u64 {
        *self.inner.0.lock().unwrap()
    }

    /// Blocks until the epoch moves past `seen` or `timeout` elapses.
    pub fn wait_past(&self, seen: u64, timeout: Duration) {
        let (lock, cv) = &*self.inner;
        let deadline = Instant::now() + timeout;
        let mut epoch = lock.lock().unwrap();
        while *epoch <= seen {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (next, result) = cv.wait_timeout(epoch, deadline - now).unwrap();
            epoch = next;
            if result.timed_out() {
                return;
            }
        }
    }

    fn bump(&self) {
        let (lock, cv) = &*self.inner;
        *lock.lock().unwrap() += 1;
        cv.notify_all();
    }
}

/// One exclusive table lock: the holder plus a FIFO queue of waiters. A
/// release hands the lock directly to the front waiter (no barging).
#[derive(Debug)]
struct LockEntry {
    holder: TxnId,
    waiters: VecDeque<TxnId>,
}

/// A table's committed changesets, oldest first: `(commit_seq, undo ops)`.
type VersionChain = VecDeque<(u64, Vec<UndoOp>)>;

/// An LDBMS service: named databases plus transactional machinery.
#[derive(Debug)]
pub struct Engine {
    /// Service name (as registered in the Auxiliary Directory).
    pub service_name: String,
    /// Capability profile.
    pub profile: DbmsProfile,
    databases: HashMap<String, Database>,
    txns: HashMap<TxnId, Transaction>,
    locks: HashMap<(String, String), LockEntry>,
    failure: FailurePolicy,
    next_txn: TxnId,
    stats: EngineStats,
    last_access: Option<&'static str>,
    /// Terminal transactions in retirement order; older ones are GC'd.
    terminal: VecDeque<TxnId>,
    terminal_cap: usize,
    /// Transactions Active or Prepared (cheap horizon fast path).
    active_txns: usize,
    /// Deadlock victims rolled back by the detector, keyed to the table
    /// whose lock completed the cycle; the victim's session learns of its
    /// fate on its next statement.
    victims: HashMap<TxnId, String>,
    /// Monotonic commit sequence; a transaction's snapshot pins a value.
    commit_seq: u64,
    /// Committed row-level changesets per `(database, table)`, oldest
    /// first, kept while any live snapshot might still need them.
    versions: HashMap<(String, String), VersionChain>,
    signal: LockSignal,
}

impl Engine {
    /// Creates a service with the given profile and no databases.
    pub fn new(service_name: impl Into<String>, profile: DbmsProfile) -> Self {
        Engine {
            service_name: service_name.into(),
            profile,
            databases: HashMap::new(),
            txns: HashMap::new(),
            locks: HashMap::new(),
            failure: FailurePolicy::none(),
            next_txn: 1,
            stats: EngineStats::default(),
            last_access: None,
            terminal: VecDeque::new(),
            terminal_cap: DEFAULT_TERMINAL_RETENTION,
            active_txns: 0,
            victims: HashMap::new(),
            commit_seq: 0,
            versions: HashMap::new(),
            signal: LockSignal::default(),
        }
    }

    /// The lock-release signal; callers that received [`DbError::LockWait`]
    /// park on it (capturing the epoch *before* the attempt) and retry.
    pub fn lock_signal(&self) -> LockSignal {
        self.signal.clone()
    }

    /// Number of write locks currently held.
    pub fn held_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of transactions currently tracked (active plus the bounded
    /// terminal-retention window).
    pub fn tracked_txns(&self) -> usize {
        self.txns.len()
    }

    /// Overrides how many terminal transactions are retained before GC.
    pub fn set_terminal_retention(&mut self, cap: usize) {
        self.terminal_cap = cap.max(1);
    }

    /// Replaces the failure-injection policy.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure = policy;
    }

    /// Mutable access to the failure policy (to arm per-table failures).
    pub fn failure_policy_mut(&mut self) -> &mut FailurePolicy {
        &mut self.failure
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The access path of the most recent statement: `Some("probe")` when at
    /// least one FROM source was served by an index, `Some("scan")` for a
    /// full-scan SELECT, `None` when the last statement was not a SELECT.
    pub fn last_access(&self) -> Option<&'static str> {
        self.last_access
    }

    /// Creates a database on this service, respecting `CONNECTMODE`.
    pub fn create_database(&mut self, name: &str) -> Result<(), DbError> {
        let lower = name.to_ascii_lowercase();
        if self.databases.contains_key(&lower) {
            return Err(DbError::AlreadyExists(lower));
        }
        if !self.profile.multi_database && !self.databases.is_empty() {
            return Err(DbError::Internal(format!(
                "service `{}` is CONNECTMODE NOCONNECT and already hosts its default database",
                self.service_name
            )));
        }
        self.databases.insert(lower.clone(), Database::new(lower));
        Ok(())
    }

    /// Drops a database.
    pub fn drop_database(&mut self, name: &str) -> Result<(), DbError> {
        self.databases
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Immutable access to a database (used by IMPORT and tests).
    pub fn database(&self, name: &str) -> Result<&Database, DbError> {
        self.databases
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Mutable access to a database (fixtures/seeding).
    pub fn database_mut(&mut self, name: &str) -> Result<&mut Database, DbError> {
        self.databases
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Names of hosted databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.databases.keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------ autocommit

    /// Executes one SQL statement in autocommit mode: an implicit transaction
    /// that commits on success and rolls back on failure.
    pub fn execute(&mut self, database: &str, sql: &str) -> Result<ExecOutcome, DbError> {
        let stmt = parse_local_sql(sql)?;
        self.execute_stmt(database, &stmt)
    }

    /// Executes a pre-parsed statement in autocommit mode.
    pub fn execute_stmt(
        &mut self,
        database: &str,
        stmt: &Statement,
    ) -> Result<ExecOutcome, DbError> {
        let txn = self.begin();
        match self.execute_stmt_in(txn, database, stmt) {
            Ok(out) => {
                self.commit(txn)?;
                Ok(out)
            }
            Err(e) => {
                let _ = self.rollback(txn);
                Err(e)
            }
        }
    }

    // ---------------------------------------------------------- transactions

    /// Starts an explicit transaction. Its snapshot pins the current commit
    /// sequence: reads inside the transaction see exactly the state
    /// committed so far plus its own writes.
    pub fn begin(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        let mut t = Transaction::new(id);
        t.snapshot = self.commit_seq;
        self.txns.insert(id, t);
        self.active_txns += 1;
        id
    }

    /// Executes one SQL statement inside a transaction.
    pub fn execute_in(
        &mut self,
        txn: TxnId,
        database: &str,
        sql: &str,
    ) -> Result<ExecOutcome, DbError> {
        let stmt = parse_local_sql(sql)?;
        self.execute_stmt_in(txn, database, &stmt)
    }

    /// Executes a pre-parsed statement inside a transaction.
    pub fn execute_stmt_in(
        &mut self,
        txn: TxnId,
        database: &str,
        stmt: &Statement,
    ) -> Result<ExecOutcome, DbError> {
        // A deadlock victim learns of its fate here: the detector already
        // rolled the transaction back (releasing its locks), so the next
        // statement fails with the retriable error instead of a confusing
        // state mismatch.
        if let Some(table) = self.victims.remove(&txn) {
            return Err(DbError::Deadlock { table });
        }
        self.require_state(txn, TxnState::Active, "execute in")?;
        self.stats.statements += 1;
        self.last_access = None;
        let dbname = database.to_ascii_lowercase();

        match stmt {
            Statement::Query(q) => match &q.body {
                QueryBody::Select(sel) => {
                    let stats = select::AccessStats::default();
                    let snapshot = self.txns.get(&txn).map_or(self.commit_seq, |t| t.snapshot);
                    let overlays = self.snapshot_overlays(&dbname, txn, snapshot);
                    let rs = if overlays.is_empty() {
                        // Fast path: nothing changed since the snapshot —
                        // read the live tables zero-copy.
                        let db = self.database(&dbname)?;
                        select::execute_select_stats(db, sel, &[], &stats)?
                    } else {
                        // Swap reconstructed snapshot tables in, run the
                        // SELECT, swap the live tables back (even on error).
                        let db = self
                            .databases
                            .get_mut(&dbname)
                            .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                        let mut saved = Vec::with_capacity(overlays.len());
                        for (name, snap_table) in overlays {
                            if let Ok(slot) = db.table_mut(&name) {
                                saved.push((name, std::mem::replace(slot, snap_table)));
                            }
                        }
                        let result = select::execute_select_stats(db, sel, &[], &stats);
                        for (name, live) in saved {
                            if let Ok(slot) = db.table_mut(&name) {
                                *slot = live;
                            }
                        }
                        result?
                    };
                    self.stats.rows_scanned += stats.rows_scanned.get();
                    self.stats.index_hits += stats.index_hits.get();
                    self.last_access = Some(if stats.probed.get() { "probe" } else { "scan" });
                    Ok(ExecOutcome::Rows(rs))
                }
                QueryBody::Insert(ins) => {
                    let table = ins.table.table.as_str().to_string();
                    let fresh = self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_insert(db, ins, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    if out.is_err() && fresh {
                        self.release_failed_lock(txn, &dbname, &table);
                    }
                    out.map(ExecOutcome::Affected)
                }
                QueryBody::Update(up) => {
                    let table = up.table.table.as_str().to_string();
                    let fresh = self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_update(db, up, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    if out.is_err() && fresh {
                        self.release_failed_lock(txn, &dbname, &table);
                    }
                    out.map(ExecOutcome::Affected)
                }
                QueryBody::Delete(del) => {
                    let table = del.table.table.as_str().to_string();
                    let fresh = self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_delete(db, del, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    if out.is_err() && fresh {
                        self.release_failed_lock(txn, &dbname, &table);
                    }
                    out.map(ExecOutcome::Affected)
                }
            },
            Statement::CreateTable(ct) => {
                let table = ct.table.table.as_str().to_string();
                self.ddl_prologue(txn);
                self.write_guard(txn, &dbname, &table)?;
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_create_table(db, ct, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::DropTable(dt) => {
                let table = dt.table.table.as_str().to_string();
                self.ddl_prologue(txn);
                self.write_guard(txn, &dbname, &table)?;
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_drop_table(db, dt, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::CreateIndex(ci) => {
                let table = ci.table.table.as_str().to_string();
                self.ddl_prologue(txn);
                self.write_guard(txn, &dbname, &table)?;
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_create_index(db, ci, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::DropIndex(di) => {
                let table = di.table.table.as_str().to_string();
                self.ddl_prologue(txn);
                self.write_guard(txn, &dbname, &table)?;
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_drop_index(db, di, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::Analyze(target) => {
                // ANALYZE is DDL-shaped: it triggers the profile's implicit
                // commit, takes the table locks of its targets, and is
                // undoable exactly when the profile rolls DDL back.
                self.ddl_prologue(txn);
                let tables = analyze::resolve_targets(self.database(&dbname)?, target.as_ref())?;
                let log_undo = self.profile.ddl_rollbackable;
                let mut undo = Vec::new();
                let mut result: Result<usize, DbError> = Ok(tables.len());
                for table in &tables {
                    if let Err(e) = self.write_guard(txn, &dbname, table) {
                        result = Err(e);
                        break;
                    }
                    let db = match self.databases.get_mut(&dbname) {
                        Some(db) => db,
                        None => {
                            result = Err(DbError::UnknownDatabase(dbname.clone()));
                            break;
                        }
                    };
                    if let Err(e) =
                        analyze::execute_analyze_table(db, table, log_undo.then_some(&mut undo))
                    {
                        result = Err(e);
                        break;
                    }
                }
                self.absorb_stmt_undo(txn, undo, &result);
                result.map(ExecOutcome::Affected)
            }
            Statement::CreateDatabase(name) => {
                self.ddl_prologue(txn);
                self.create_database(name)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::DropDatabase(name) => {
                self.ddl_prologue(txn);
                self.drop_database(name)?;
                Ok(ExecOutcome::Affected(0))
            }
            other => Err(DbError::NotLocalSql(format!(
                "statement is handled at the multidatabase level: {other:?}"
            ))),
        }
    }

    /// Injected-failure and lock check before a write statement. The failure
    /// check runs before any mutation, so a failed statement has no effects.
    ///
    /// Returns `Ok(true)` when the lock was acquired by this call (so a
    /// failed statement can release it again), `Ok(false)` when it was
    /// already held. On conflict the transaction is enqueued behind the
    /// holder and the waits-for graph is checked: if the new edge closes a
    /// cycle, the youngest cycle member is rolled back — with
    /// [`DbError::Deadlock`] if that is the requester itself, otherwise the
    /// victim is marked and the requester gets [`DbError::LockWait`] like
    /// any other blocked statement.
    fn write_guard(&mut self, txn: TxnId, dbname: &str, table: &str) -> Result<bool, DbError> {
        if let Some(reason) = self.failure.check_statement(table) {
            return Err(DbError::InjectedFailure(reason));
        }
        let key = (dbname.to_string(), table.to_ascii_lowercase());
        match self.locks.get_mut(&key) {
            None => {
                self.locks.insert(key.clone(), LockEntry { holder: txn, waiters: VecDeque::new() });
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.locks.push(key);
                }
                Ok(true)
            }
            Some(entry) if entry.holder == txn => Ok(false),
            Some(entry) => {
                if !entry.waiters.contains(&txn) {
                    entry.waiters.push_back(txn);
                }
                if let Some(victim) = self.find_deadlock_victim(txn) {
                    if victim == txn {
                        let _ = self.rollback(txn);
                        return Err(DbError::Deadlock { table: table.to_string() });
                    }
                    let _ = self.rollback(victim);
                    self.victims.insert(victim, key.1.clone());
                    // The victim's released locks may have been handed
                    // straight to us.
                    if self.locks.get(&key).is_some_and(|e| e.holder == txn) {
                        return Ok(true);
                    }
                }
                Err(DbError::LockWait { table: table.to_string() })
            }
        }
    }

    /// DFS over the waits-for graph (waiter → holder plus waiter → earlier
    /// queue members, since FIFO handoff makes those block it too) looking
    /// for a cycle through `start`. Returns the youngest (largest-id)
    /// member of the first cycle found — the designated victim.
    fn find_deadlock_victim(&self, start: TxnId) -> Option<TxnId> {
        fn blockers(engine: &Engine, of: TxnId, out: &mut Vec<TxnId>) {
            for entry in engine.locks.values() {
                if let Some(pos) = entry.waiters.iter().position(|w| *w == of) {
                    out.push(entry.holder);
                    out.extend(entry.waiters.iter().take(pos).copied());
                }
            }
        }
        fn dfs(
            engine: &Engine,
            start: TxnId,
            node: TxnId,
            path: &mut Vec<TxnId>,
            visited: &mut HashSet<TxnId>,
        ) -> bool {
            let mut next = Vec::new();
            blockers(engine, node, &mut next);
            for n in next {
                if n == start {
                    return true;
                }
                if visited.insert(n) {
                    path.push(n);
                    if dfs(engine, start, n, path, visited) {
                        return true;
                    }
                    path.pop();
                }
            }
            false
        }
        let mut path = vec![start];
        let mut visited = HashSet::new();
        if dfs(self, start, start, &mut path, &mut visited) {
            // Prepared transactions are exempt: they voted YES in 2PC and
            // only their coordinator may decide their fate. `start` itself
            // is requesting a lock, so it is Active and always eligible —
            // the fallback can never leave a cycle unbroken.
            let eligible =
                |id: &TxnId| self.txns.get(id).is_none_or(|t| t.state != TxnState::Prepared);
            path.iter().copied().filter(eligible).max().or(Some(start))
        } else {
            None
        }
    }

    /// Removes a transaction from every wait queue (it gave up waiting or
    /// terminated). Queues thereby only ever hold live waiters, so a lock
    /// handoff can never promote a dead transaction.
    pub fn cancel_wait(&mut self, txn: TxnId) {
        for entry in self.locks.values_mut() {
            entry.waiters.retain(|w| *w != txn);
        }
    }

    /// Releases one lock, handing it directly to the next queued waiter
    /// (which then owns it without re-requesting) or dropping the entry.
    fn release_lock(&mut self, key: &(String, String)) {
        let Some(entry) = self.locks.get_mut(key) else { return };
        match entry.waiters.pop_front() {
            Some(next) => {
                entry.holder = next;
                if let Some(t) = self.txns.get_mut(&next) {
                    t.locks.push(key.clone());
                }
            }
            None => {
                self.locks.remove(key);
            }
        }
    }

    /// Statement-level atomicity for locks: a statement that failed after
    /// freshly acquiring a table lock gives it back, since the error path
    /// already removed all its effects.
    fn release_failed_lock(&mut self, txn: TxnId, dbname: &str, table: &str) {
        let key = (dbname.to_string(), table.to_ascii_lowercase());
        if self.locks.get(&key).map(|e| e.holder) != Some(txn) {
            return;
        }
        if let Some(t) = self.txns.get_mut(&txn) {
            t.locks.retain(|k| k != &key);
        }
        self.release_lock(&key);
        self.signal.bump();
    }

    /// Models Oracle-style "DDL commits all previously issued uncommitted
    /// statements": the prior work becomes permanent — its undo is
    /// installed as a committed changeset for snapshot readers, its write
    /// locks are released (handing them to waiting sessions), and the
    /// implicit commit is accounted in `stats`. Runs *before* the DDL
    /// statement acquires its own lock, so only prior locks are released.
    fn ddl_prologue(&mut self, txn: TxnId) {
        if !self.profile.ddl_autocommits_prior {
            return;
        }
        let Some(t) = self.txns.get_mut(&txn) else { return };
        let undo = std::mem::take(&mut t.undo);
        let locks = std::mem::take(&mut t.locks);
        if undo.is_empty() && locks.is_empty() {
            return;
        }
        self.install_versions(undo);
        for key in &locks {
            self.release_lock(key);
        }
        self.signal.bump();
        self.stats.commits += 1;
        self.prune_versions();
    }

    fn absorb_stmt_undo<T>(
        &mut self,
        txn: TxnId,
        mut undo: Vec<UndoOp>,
        outcome: &Result<T, DbError>,
    ) {
        match outcome {
            Ok(_) => {
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.undo.append(&mut undo);
                }
            }
            Err(_) => {
                // Statement-level atomicity: undo partial effects immediately.
                self.apply_undo(undo);
            }
        }
    }

    /// Votes to commit: Active → Prepared. Only 2PC-capable profiles expose
    /// this; an injected prepare failure aborts the transaction.
    pub fn prepare(&mut self, txn: TxnId) -> Result<(), DbError> {
        if !self.profile.supports_2pc {
            return Err(DbError::TwoPhaseNotSupported(self.service_name.clone()));
        }
        self.require_state(txn, TxnState::Active, "prepare")?;
        if let Some(reason) = self.failure.check_prepare() {
            self.rollback(txn)?;
            return Err(DbError::InjectedFailure(reason));
        }
        // Drop any stale wait-queue entries: a prepared transaction runs no
        // further statements, so a later lock handoff to it would strand the
        // lock until the coordinator settles the branch.
        self.cancel_wait(txn);
        self.txns.get_mut(&txn).unwrap().state = TxnState::Prepared;
        self.stats.prepares += 1;
        Ok(())
    }

    /// Commits a transaction (from Active for one-phase, or Prepared for the
    /// second phase of 2PC). Installs the transaction's row-level changes as
    /// a committed version atomically under the engine lock, then hands its
    /// write locks to waiting sessions.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), DbError> {
        let t = self.txns.get_mut(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        match t.state {
            TxnState::Active | TxnState::Prepared => {
                t.state = TxnState::Committed;
                let undo = std::mem::take(&mut t.undo);
                let locks = std::mem::take(&mut t.locks);
                self.install_versions(undo);
                for key in &locks {
                    self.release_lock(key);
                }
                self.cancel_wait(txn);
                self.victims.remove(&txn);
                self.signal.bump();
                self.stats.commits += 1;
                self.active_txns -= 1;
                self.retire(txn);
                self.prune_versions();
                Ok(())
            }
            state => Err(DbError::InvalidTxnState { action: "commit", state: state.name() }),
        }
    }

    /// Rolls a transaction back (from Active or Prepared), restoring all
    /// undone state before its locks are handed over.
    pub fn rollback(&mut self, txn: TxnId) -> Result<(), DbError> {
        let t = self.txns.get_mut(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        match t.state {
            TxnState::Active | TxnState::Prepared => {
                t.state = TxnState::Aborted;
                let undo = std::mem::take(&mut t.undo);
                let locks = std::mem::take(&mut t.locks);
                self.apply_undo(undo);
                for key in &locks {
                    self.release_lock(key);
                }
                self.cancel_wait(txn);
                self.victims.remove(&txn);
                self.signal.bump();
                self.stats.aborts += 1;
                self.active_txns -= 1;
                self.retire(txn);
                self.prune_versions();
                Ok(())
            }
            state => Err(DbError::InvalidTxnState { action: "rollback", state: state.name() }),
        }
    }

    /// Bounded terminal-transaction retention: the most recent
    /// `terminal_cap` committed/aborted transactions stay queryable (for
    /// idempotent resolve / at-most-once retry paths); older ones are GC'd
    /// so `txns` stays flat over a long session.
    fn retire(&mut self, txn: TxnId) {
        self.terminal.push_back(txn);
        while self.terminal.len() > self.terminal_cap {
            if let Some(old) = self.terminal.pop_front() {
                self.txns.remove(&old);
                self.victims.remove(&old);
            }
        }
    }

    /// Retains a committed transaction's row-level undo as a versioned
    /// changeset so snapshot readers can reconstruct earlier table states.
    /// Structural (DDL) operations are not versioned: schema changes become
    /// visible to every snapshot immediately (see DESIGN.md §3a.6).
    fn install_versions(&mut self, undo: Vec<UndoOp>) {
        if undo.is_empty() {
            return;
        }
        let mut per_table: HashMap<(String, String), Vec<UndoOp>> = HashMap::new();
        for op in undo {
            let key = match &op {
                UndoOp::Insert { database, table, .. }
                | UndoOp::Delete { database, table, .. }
                | UndoOp::Update { database, table, .. } => (database.clone(), table.clone()),
                _ => continue,
            };
            per_table.entry(key).or_default().push(op);
        }
        if per_table.is_empty() {
            return;
        }
        self.commit_seq += 1;
        let ts = self.commit_seq;
        for (key, ops) in per_table {
            self.versions.entry(key).or_default().push_back((ts, ops));
        }
    }

    /// Drops version changesets no live snapshot can still need: the GC
    /// horizon is the oldest snapshot among Active/Prepared transactions.
    /// With no readers in flight everything goes — the common serial case
    /// keeps the version store empty.
    fn prune_versions(&mut self) {
        if self.versions.is_empty() {
            return;
        }
        if self.active_txns == 0 {
            self.versions.clear();
            return;
        }
        let horizon = self
            .txns
            .values()
            .filter(|t| !t.state.is_terminal())
            .map(|t| t.snapshot)
            .min()
            .unwrap_or(self.commit_seq);
        self.versions.retain(|_, chain| {
            chain.retain(|(ts, _)| *ts > horizon);
            !chain.is_empty()
        });
    }

    /// Reconstructs, for each table of `dbname` whose live contents differ
    /// from what `reader`'s snapshot should observe, a copy rolled back to
    /// that snapshot: an uncommitted writer's effects are undone first
    /// (they are the newest), then committed changesets newer than the
    /// snapshot, newest first. Tables untouched since the snapshot — the
    /// common case — produce no overlay and are read zero-copy. Tables the
    /// reader itself has write-locked are skipped entirely:
    /// read-your-own-writes takes precedence over the snapshot there.
    fn snapshot_overlays(
        &self,
        dbname: &str,
        reader: TxnId,
        snapshot: u64,
    ) -> Vec<(String, Table)> {
        if self.locks.is_empty() && self.versions.is_empty() {
            return Vec::new();
        }
        let mine = |table: &str| {
            self.locks
                .get(&(dbname.to_string(), table.to_string()))
                .is_some_and(|e| e.holder == reader)
        };
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for ((db, table), entry) in &self.locks {
            if db == dbname && entry.holder != reader {
                if let Some(t) = self.txns.get(&entry.holder) {
                    if !t.state.is_terminal() && !t.undo.is_empty() {
                        names.insert(table);
                    }
                }
            }
        }
        for ((db, table), chain) in &self.versions {
            if db == dbname && chain.back().is_some_and(|(ts, _)| *ts > snapshot) && !mine(table) {
                names.insert(table);
            }
        }
        if names.is_empty() {
            return Vec::new();
        }
        let Some(db) = self.databases.get(dbname) else { return Vec::new() };
        let mut out = Vec::new();
        for name in names {
            let Ok(live) = db.table(name) else { continue };
            let mut snap = live.clone();
            if let Some(entry) = self.locks.get(&(dbname.to_string(), name.to_string())) {
                if entry.holder != reader {
                    if let Some(t) = self.txns.get(&entry.holder) {
                        if !t.state.is_terminal() {
                            undo_rows_on_table(&mut snap, &t.undo, dbname, name);
                        }
                    }
                }
            }
            if let Some(chain) = self.versions.get(&(dbname.to_string(), name.to_string())) {
                for (ts, ops) in chain.iter().rev() {
                    if *ts > snapshot {
                        undo_rows_on_table(&mut snap, ops, dbname, name);
                    }
                }
            }
            out.push((name.to_string(), snap));
        }
        out
    }

    /// The observable state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Result<TxnState, DbError> {
        self.txns.get(&txn).map(|t| t.state).ok_or(DbError::UnknownTransaction(txn))
    }

    /// Transactions still sitting in the prepared state, in id order. After
    /// coordinator recovery this must be empty — a non-empty list means an
    /// in-doubt subtransaction was orphaned (it holds locks forever).
    pub fn prepared_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| t.state == TxnState::Prepared)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    fn require_state(
        &self,
        txn: TxnId,
        expected: TxnState,
        action: &'static str,
    ) -> Result<(), DbError> {
        let t = self.txns.get(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        if t.state != expected {
            return Err(DbError::InvalidTxnState { action, state: t.state.name() });
        }
        Ok(())
    }

    /// Applies undo operations newest-first.
    fn apply_undo(&mut self, undo: Vec<UndoOp>) {
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Insert { database, table, id } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            t.remove(id);
                        }
                    }
                }
                UndoOp::Delete { database, table, id, row } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            t.restore(id, row);
                        }
                    }
                }
                UndoOp::Update { database, table, id, old } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            let _ = t.replace(id, old);
                        }
                    }
                }
                UndoOp::CreateTable { database, table } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        let _ = db.remove_table(&table);
                    }
                }
                UndoOp::DropTable { database, table } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        db.insert_table(*table);
                    }
                }
                UndoOp::CreateIndex { database, table, name } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            let _ = t.drop_index(&name);
                        }
                    }
                }
                UndoOp::DropIndex { database, table, def } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            // Rebuilds the key map from the table contents,
                            // which the surrounding undo replay has already
                            // restored (newest-first order).
                            let _ = t.create_index(def);
                        }
                    }
                }
                UndoOp::Analyze { database, table, prev, prev_staleness } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            t.restore_stats(prev.map(|b| *b), prev_staleness);
                        }
                    }
                }
            }
        }
    }

    /// Commit capability this service advertises for a statement class.
    pub fn capability_for(&self, class: StatementClass) -> msql_lang::CommitCapability {
        self.profile.capability_for(class)
    }
}

/// Applies the row-level operations of an undo slice (newest first) to a
/// detached table copy, skipping structural operations and entries for
/// other tables. Used to roll a cloned table back to a snapshot state.
fn undo_rows_on_table(table: &mut Table, undo: &[UndoOp], database: &str, name: &str) {
    for op in undo.iter().rev() {
        match op {
            UndoOp::Insert { database: d, table: t, id } if d == database && t == name => {
                table.remove(*id);
            }
            UndoOp::Delete { database: d, table: t, id, row } if d == database && t == name => {
                table.restore(*id, row.clone());
            }
            UndoOp::Update { database: d, table: t, id, old } if d == database && t == name => {
                let _ = table.replace(*id, old.clone());
            }
            _ => {}
        }
    }
}

/// Parses SQL and checks it is *local*: no USE/LET/COMP attachments.
fn parse_local_sql(sql: &str) -> Result<Statement, DbError> {
    let stmt = parse_statement(sql)?;
    if let Statement::Query(q) = &stmt {
        if q.use_clause.is_some() || !q.lets.is_empty() || !q.comps.is_empty() {
            return Err(DbError::NotLocalSql(
                "USE/LET/COMP clauses must be resolved by the multidatabase layer".into(),
            ));
        }
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn engine_with_cars(profile: DbmsProfile) -> Engine {
        let mut e = Engine::new("svc", profile);
        e.create_database("avis").unwrap();
        e.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT, carst CHAR(10))").unwrap();
        e.execute("avis", "INSERT INTO cars VALUES (1, 40.0, 'available')").unwrap();
        e.execute("avis", "INSERT INTO cars VALUES (2, 60.0, 'rented')").unwrap();
        e
    }

    #[test]
    fn autocommit_select_and_update() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let out = e.execute("avis", "UPDATE cars SET rate = rate * 2 WHERE code = 1").unwrap();
        assert_eq!(out.affected(), 1);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(80.0));
    }

    #[test]
    fn explicit_txn_rollback_restores_state() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0").unwrap();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (3, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "DELETE FROM cars WHERE code = 2").unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT code, rate FROM cars ORDER BY code")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Float(40.0)]);
        assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Float(60.0)]);
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Aborted);
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 99 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Prepared);
        e.commit(txn).unwrap();
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Committed);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(99.0));
    }

    #[test]
    fn prepared_transaction_can_still_roll_back() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 99 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn autocommit_only_profile_rejects_prepare() {
        let mut e = engine_with_cars(DbmsProfile::autocommit_only());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        assert!(matches!(e.prepare(txn), Err(DbError::TwoPhaseNotSupported(_))));
    }

    #[test]
    fn terminal_states_reject_further_transitions() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.commit(txn).unwrap();
        assert!(matches!(e.rollback(txn), Err(DbError::InvalidTxnState { .. })));
        assert!(matches!(e.commit(txn), Err(DbError::InvalidTxnState { .. })));
        assert!(matches!(e.prepare(txn), Err(DbError::InvalidTxnState { .. })));
    }

    #[test]
    fn lock_conflict_between_transactions() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let t1 = e.begin();
        let t2 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        let err = e.execute_in(t2, "avis", "UPDATE cars SET rate = 2 WHERE code = 2");
        assert!(matches!(err, Err(DbError::LockWait { .. })));
        // t1's termination hands the lock straight to the enqueued t2.
        e.rollback(t1).unwrap();
        e.execute_in(t2, "avis", "UPDATE cars SET rate = 2 WHERE code = 2").unwrap();
        e.commit(t2).unwrap();
        assert_eq!(e.held_locks(), 0, "all locks released after both txns end");
    }

    #[test]
    fn deadlock_rolls_back_youngest_and_is_retriable() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.execute("avis", "CREATE TABLE vans (code INT, rate FLOAT)").unwrap();
        e.execute("avis", "INSERT INTO vans VALUES (1, 30.0)").unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        e.execute_in(t2, "avis", "UPDATE vans SET rate = 2 WHERE code = 1").unwrap();
        // t1 blocks behind t2's lock on vans: a plain wait, no cycle yet.
        assert!(matches!(
            e.execute_in(t1, "avis", "UPDATE vans SET rate = 3"),
            Err(DbError::LockWait { .. })
        ));
        // t2 requesting cars closes the cycle; t2 is younger and becomes
        // the victim, rolled back with the retriable error.
        let err = e.execute_in(t2, "avis", "UPDATE cars SET rate = 4");
        match &err {
            Err(DbError::Deadlock { .. }) => {}
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(err.unwrap_err().to_string().contains("deadlock"));
        assert_eq!(e.txn_state(t2).unwrap(), TxnState::Aborted);
        // t2's rollback handed vans to the waiting t1; its retry succeeds.
        e.execute_in(t1, "avis", "UPDATE vans SET rate = 3").unwrap();
        e.commit(t1).unwrap();
        assert_eq!(e.held_locks(), 0);
        // t2's effects were rolled back.
        let rs = e
            .execute("avis", "SELECT rate FROM vans WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(3.0));
    }

    #[test]
    fn deadlock_victim_marked_across_sessions_learns_on_next_statement() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.execute("avis", "CREATE TABLE vans (code INT, rate FLOAT)").unwrap();
        e.execute("avis", "INSERT INTO vans VALUES (1, 30.0)").unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        let t3 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 1").unwrap();
        e.execute_in(t2, "avis", "UPDATE vans SET rate = 2").unwrap();
        assert!(matches!(
            e.execute_in(t2, "avis", "UPDATE cars SET rate = 4"),
            Err(DbError::LockWait { .. })
        ));
        // t1 closes the cycle; t2 (younger than t1) is picked as victim and
        // t1 inherits vans via handoff immediately.
        e.execute_in(t1, "avis", "UPDATE vans SET rate = 3").unwrap();
        // t2's session discovers the verdict on its next statement.
        assert!(matches!(
            e.execute_in(t2, "avis", "UPDATE vans SET rate = 5"),
            Err(DbError::Deadlock { .. })
        ));
        e.commit(t1).unwrap();
        e.execute_in(t3, "avis", "UPDATE cars SET rate = 9").unwrap();
        e.commit(t3).unwrap();
        assert_eq!(e.held_locks(), 0);
    }

    #[test]
    fn snapshot_read_ignores_uncommitted_writer() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let writer = e.begin();
        e.execute_in(writer, "avis", "UPDATE cars SET rate = 999").unwrap();
        e.execute_in(writer, "avis", "INSERT INTO cars VALUES (3, 10.0, 'available')").unwrap();
        // An independent reader never blocks and sees the pre-write state.
        let rs = e
            .execute("avis", "SELECT code, rate FROM cars ORDER BY code")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Float(40.0)]);
        assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Float(60.0)]);
        // The writer itself reads its own writes.
        let own = e
            .execute_in(writer, "avis", "SELECT code FROM cars ORDER BY code")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(own.rows.len(), 3);
        e.commit(writer).unwrap();
        // After commit the new state is visible to fresh readers.
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(999.0));
    }

    #[test]
    fn pinned_snapshot_is_repeatable_across_other_commits() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let reader = e.begin();
        let before = e
            .execute_in(reader, "avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        // Another transaction commits a change after the reader's snapshot.
        e.execute("avis", "UPDATE cars SET rate = 777 WHERE code = 1").unwrap();
        let after = e
            .execute_in(reader, "avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(before, after, "pinned snapshot must not observe later commits");
        assert_eq!(after.rows[0][0], Value::Float(40.0));
        e.commit(reader).unwrap();
        let now = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(now.rows[0][0], Value::Float(777.0));
        assert!(e.versions.is_empty(), "version store drains once no snapshot needs it");
    }

    #[test]
    fn ddl_autocommit_releases_prior_locks_and_counts_commit() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let t1 = e.begin();
        let t2 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 0 WHERE code = 1").unwrap();
        let commits_before = e.stats().commits;
        // Oracle-style DDL commits the prior update implicitly …
        e.execute_in(t1, "avis", "CREATE TABLE extras (x INT)").unwrap();
        assert_eq!(e.stats().commits, commits_before + 1, "implicit commit accounted");
        // … so its lock on cars is released and another session can write.
        e.execute_in(t2, "avis", "UPDATE cars SET rate = 8 WHERE code = 2").unwrap();
        e.commit(t2).unwrap();
        e.rollback(t1).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars ORDER BY code")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(0.0), "pre-DDL work survives the rollback");
        assert_eq!(rs.rows[1][0], Value::Float(8.0));
    }

    #[test]
    fn failed_statement_releases_freshly_acquired_lock() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.execute("avis", "CREATE TABLE extras (x INT)").unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 5 WHERE code = 1").unwrap();
        // This statement acquires a fresh lock on extras, then errors
        // (unknown column); statement atomicity must give the lock back.
        assert!(e.execute_in(t1, "avis", "UPDATE extras SET nope = 1").is_err());
        e.execute_in(t2, "avis", "INSERT INTO extras VALUES (1)").unwrap();
        e.commit(t2).unwrap();
        // But a lock held from *before* the failed statement stays held.
        let t3 = e.begin();
        assert!(matches!(
            e.execute_in(t3, "avis", "UPDATE cars SET rate = 2"),
            Err(DbError::LockWait { .. })
        ));
        e.commit(t1).unwrap();
        e.rollback(t3).unwrap();
        assert_eq!(e.held_locks(), 0);
    }

    #[test]
    fn terminal_transactions_are_garbage_collected() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.set_terminal_retention(8);
        let tracked_after_setup = e.tracked_txns();
        for i in 0..1000 {
            let sql = format!("UPDATE cars SET rate = {} WHERE code = 1", i % 50);
            e.execute("avis", &sql).unwrap();
        }
        assert!(
            e.tracked_txns() <= tracked_after_setup + 8,
            "txn map must stay flat: {} tracked",
            e.tracked_txns()
        );
        // Recent terminal transactions stay queryable for retry paths.
        let txn = e.begin();
        e.commit(txn).unwrap();
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Committed);
    }

    #[test]
    fn injected_failure_aborts_statement_without_effects() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.failure_policy_mut().fail_writes_to("cars");
        let err = e.execute("avis", "UPDATE cars SET rate = 0");
        assert!(matches!(err, Err(DbError::InjectedFailure(_))));
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn injected_prepare_failure_auto_rolls_back() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.set_failure_policy(FailurePolicy::with_probabilities(1, 0.0, 1.0));
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0 WHERE code = 1").unwrap();
        assert!(matches!(e.prepare(txn), Err(DbError::InjectedFailure(_))));
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Aborted);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn ingres_like_rolls_back_ddl() {
        let mut e = engine_with_cars(DbmsProfile::ingres_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE TABLE extras (x INT)").unwrap();
        e.execute_in(txn, "avis", "INSERT INTO extras VALUES (1)").unwrap();
        e.rollback(txn).unwrap();
        assert!(e.execute("avis", "SELECT x FROM extras").is_err());
    }

    #[test]
    fn oracle_like_ddl_autocommits_prior_work() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0 WHERE code = 1").unwrap();
        // DDL flushes the undo log: the update becomes permanent.
        e.execute_in(txn, "avis", "CREATE TABLE extras (x INT)").unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(0.0));
        // And the created table also survives the rollback.
        assert!(e.execute("avis", "SELECT x FROM extras").is_ok());
    }

    #[test]
    fn noconnect_service_hosts_single_database() {
        let mut e = Engine::new("small", DbmsProfile::autocommit_only());
        e.create_database("main").unwrap();
        assert!(e.create_database("second").is_err());
    }

    #[test]
    fn failed_statement_in_txn_keeps_prior_work() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 5 WHERE code = 1").unwrap();
        // This statement fails (unknown column) but must not poison the txn.
        assert!(e.execute_in(txn, "avis", "UPDATE cars SET nope = 1").is_err());
        e.commit(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(5.0));
    }

    #[test]
    fn stats_count_outcomes() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let base = e.stats();
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        e.commit(txn).unwrap();
        let s = e.stats();
        assert_eq!(s.prepares, base.prepares + 1);
        assert_eq!(s.commits, base.commits + 1);
    }

    #[test]
    fn ingres_like_rolls_back_index_ddl() {
        let mut e = engine_with_cars(DbmsProfile::ingres_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        e.rollback(txn).unwrap();
        assert!(e
            .database("avis")
            .unwrap()
            .table("cars")
            .unwrap()
            .index_by_name("cars_code")
            .is_none());

        // DROP INDEX rolls back too: the index is rebuilt with its contents.
        e.execute("avis", "CREATE INDEX cars_code ON cars (code) USING HASH").unwrap();
        let txn = e.begin();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (7, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "DROP INDEX cars_code ON cars").unwrap();
        e.rollback(txn).unwrap();
        let idx = e.database("avis").unwrap().table("cars").unwrap().index_by_name("cars_code");
        let idx = idx.expect("rollback restores the dropped index");
        // The rolled-back insert is not in the rebuilt index.
        assert!(idx.probe_eq(&[Value::Int(7)]).is_empty());
        assert_eq!(idx.probe_eq(&[Value::Int(1)]).len(), 1);
    }

    #[test]
    fn oracle_like_index_ddl_autocommits() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        e.rollback(txn).unwrap();
        // DDL does not roll back on an Oracle-like profile.
        assert!(e
            .database("avis")
            .unwrap()
            .table("cars")
            .unwrap()
            .index_by_name("cars_code")
            .is_some());
    }

    #[test]
    fn aborted_dml_leaves_indexes_consistent() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.execute("avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        let txn = e.begin();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (3, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "UPDATE cars SET code = 9 WHERE code = 1").unwrap();
        e.execute_in(txn, "avis", "DELETE FROM cars WHERE code = 2").unwrap();
        e.rollback(txn).unwrap();
        let idx =
            e.database("avis").unwrap().table("cars").unwrap().index_by_name("cars_code").unwrap();
        assert!(idx.probe_eq(&[Value::Int(3)]).is_empty());
        assert!(idx.probe_eq(&[Value::Int(9)]).is_empty());
        assert_eq!(idx.probe_eq(&[Value::Int(1)]).len(), 1);
        assert_eq!(idx.probe_eq(&[Value::Int(2)]).len(), 1);
    }

    #[test]
    fn select_stats_and_access_label() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        assert_eq!(e.last_access(), None);
        e.execute("avis", "SELECT code FROM cars WHERE code = 1").unwrap();
        assert_eq!(e.last_access(), Some("scan"));
        let scanned_before = e.stats().rows_scanned;
        assert!(scanned_before >= 2, "full scan reads both rows");
        e.execute("avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        assert_eq!(e.last_access(), None, "DDL is not an access path");
        e.execute("avis", "SELECT code FROM cars WHERE code = 1").unwrap();
        assert_eq!(e.last_access(), Some("probe"));
        let s = e.stats();
        assert_eq!(s.index_hits, 1);
        assert_eq!(s.rows_scanned, scanned_before + 1, "probe materializes one candidate");
    }

    #[test]
    fn msql_constructs_rejected_as_local_sql() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        assert!(matches!(
            e.execute("avis", "USE avis SELECT code FROM cars"),
            Err(DbError::NotLocalSql(_))
        ));
        assert!(matches!(
            e.execute("avis", "SELECT %code FROM cars"),
            Err(DbError::NotLocalSql(_)) | Err(DbError::UnknownColumn(_))
        ));
    }

    use crate::failure::FailurePolicy;
}
