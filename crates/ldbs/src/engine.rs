//! The engine facade: databases, sessions, transactions, 2PC.
//!
//! One [`Engine`] models one LDBMS *service* in the paper's sense — it hosts
//! one or more databases (per `CONNECTMODE`), executes local SQL, and exposes
//! whatever commit interface its [`DbmsProfile`] advertises. The
//! multidatabase layer never touches tables directly; it drives engines
//! through this API exactly the way a DOL `TASK` block drives a remote
//! service.

use crate::error::DbError;
use crate::exec::{ddl, dml, select};
use crate::failure::FailurePolicy;
use crate::profile::{DbmsProfile, StatementClass};
use crate::table::{Row, Table};
use crate::txn::{Transaction, TxnId, TxnState, UndoOp};
use crate::value::DataType;
use msql_lang::{parse_statement, QueryBody, Statement};
use std::collections::HashMap;

/// Output column metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column display name.
    pub name: String,
    /// Best-effort data type.
    pub data_type: DataType,
}

/// A query result: column metadata plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// The output columns.
    pub columns: Vec<ColumnMeta>,
    /// The output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT produced rows.
    Rows(ResultSet),
    /// A DML/DDL statement affected this many rows.
    Affected(usize),
}

impl ExecOutcome {
    /// Unwraps a row outcome.
    pub fn into_result_set(self) -> Result<ResultSet, DbError> {
        match self {
            ExecOutcome::Rows(rs) => Ok(rs),
            ExecOutcome::Affected(_) => {
                Err(DbError::Internal("statement did not produce rows".into()))
            }
        }
    }

    /// Number of affected rows (0 for SELECT).
    pub fn affected(&self) -> usize {
        match self {
            ExecOutcome::Rows(_) => 0,
            ExecOutcome::Affected(n) => *n,
        }
    }
}

/// One named database hosted by a service: a set of tables.
#[derive(Debug, Default)]
pub struct Database {
    /// Database name (lowercase).
    pub name: String,
    tables: HashMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into().to_ascii_lowercase(), tables: HashMap::new() }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Adds (or replaces) a table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.schema.name.clone(), table);
    }

    /// Removes a table, returning it.
    pub fn remove_table(&mut self, name: &str) -> Result<Table, DbError> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted (deterministic for IMPORT).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Execution statistics, used by benchmarks and the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements executed (any kind).
    pub statements: u64,
    /// Transactions committed (including autocommits).
    pub commits: u64,
    /// Transactions rolled back or failed.
    pub aborts: u64,
    /// Successful prepares (votes of YES).
    pub prepares: u64,
    /// Rows materialized by top-level SELECT scans and probes (subquery
    /// re-evaluation is not counted — it reuses the outer row sets).
    pub rows_scanned: u64,
    /// Candidate rows returned by index probes in top-level SELECTs.
    pub index_hits: u64,
}

/// An LDBMS service: named databases plus transactional machinery.
#[derive(Debug)]
pub struct Engine {
    /// Service name (as registered in the Auxiliary Directory).
    pub service_name: String,
    /// Capability profile.
    pub profile: DbmsProfile,
    databases: HashMap<String, Database>,
    txns: HashMap<TxnId, Transaction>,
    locks: HashMap<(String, String), TxnId>,
    failure: FailurePolicy,
    next_txn: TxnId,
    stats: EngineStats,
    last_access: Option<&'static str>,
}

impl Engine {
    /// Creates a service with the given profile and no databases.
    pub fn new(service_name: impl Into<String>, profile: DbmsProfile) -> Self {
        Engine {
            service_name: service_name.into(),
            profile,
            databases: HashMap::new(),
            txns: HashMap::new(),
            locks: HashMap::new(),
            failure: FailurePolicy::none(),
            next_txn: 1,
            stats: EngineStats::default(),
            last_access: None,
        }
    }

    /// Replaces the failure-injection policy.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure = policy;
    }

    /// Mutable access to the failure policy (to arm per-table failures).
    pub fn failure_policy_mut(&mut self) -> &mut FailurePolicy {
        &mut self.failure
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The access path of the most recent statement: `Some("probe")` when at
    /// least one FROM source was served by an index, `Some("scan")` for a
    /// full-scan SELECT, `None` when the last statement was not a SELECT.
    pub fn last_access(&self) -> Option<&'static str> {
        self.last_access
    }

    /// Creates a database on this service, respecting `CONNECTMODE`.
    pub fn create_database(&mut self, name: &str) -> Result<(), DbError> {
        let lower = name.to_ascii_lowercase();
        if self.databases.contains_key(&lower) {
            return Err(DbError::AlreadyExists(lower));
        }
        if !self.profile.multi_database && !self.databases.is_empty() {
            return Err(DbError::Internal(format!(
                "service `{}` is CONNECTMODE NOCONNECT and already hosts its default database",
                self.service_name
            )));
        }
        self.databases.insert(lower.clone(), Database::new(lower));
        Ok(())
    }

    /// Drops a database.
    pub fn drop_database(&mut self, name: &str) -> Result<(), DbError> {
        self.databases
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Immutable access to a database (used by IMPORT and tests).
    pub fn database(&self, name: &str) -> Result<&Database, DbError> {
        self.databases
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Mutable access to a database (fixtures/seeding).
    pub fn database_mut(&mut self, name: &str) -> Result<&mut Database, DbError> {
        self.databases
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownDatabase(name.to_string()))
    }

    /// Names of hosted databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.databases.keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------ autocommit

    /// Executes one SQL statement in autocommit mode: an implicit transaction
    /// that commits on success and rolls back on failure.
    pub fn execute(&mut self, database: &str, sql: &str) -> Result<ExecOutcome, DbError> {
        let stmt = parse_local_sql(sql)?;
        self.execute_stmt(database, &stmt)
    }

    /// Executes a pre-parsed statement in autocommit mode.
    pub fn execute_stmt(
        &mut self,
        database: &str,
        stmt: &Statement,
    ) -> Result<ExecOutcome, DbError> {
        let txn = self.begin();
        match self.execute_stmt_in(txn, database, stmt) {
            Ok(out) => {
                self.commit(txn)?;
                Ok(out)
            }
            Err(e) => {
                let _ = self.rollback(txn);
                Err(e)
            }
        }
    }

    // ---------------------------------------------------------- transactions

    /// Starts an explicit transaction.
    pub fn begin(&mut self) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(id, Transaction::new(id));
        id
    }

    /// Executes one SQL statement inside a transaction.
    pub fn execute_in(
        &mut self,
        txn: TxnId,
        database: &str,
        sql: &str,
    ) -> Result<ExecOutcome, DbError> {
        let stmt = parse_local_sql(sql)?;
        self.execute_stmt_in(txn, database, &stmt)
    }

    /// Executes a pre-parsed statement inside a transaction.
    pub fn execute_stmt_in(
        &mut self,
        txn: TxnId,
        database: &str,
        stmt: &Statement,
    ) -> Result<ExecOutcome, DbError> {
        self.require_state(txn, TxnState::Active, "execute in")?;
        self.stats.statements += 1;
        self.last_access = None;
        let dbname = database.to_ascii_lowercase();

        match stmt {
            Statement::Query(q) => match &q.body {
                QueryBody::Select(sel) => {
                    let stats = select::AccessStats::default();
                    let db = self.database(&dbname)?;
                    let rs = select::execute_select_stats(db, sel, &[], &stats)?;
                    self.stats.rows_scanned += stats.rows_scanned.get();
                    self.stats.index_hits += stats.index_hits.get();
                    self.last_access = Some(if stats.probed.get() { "probe" } else { "scan" });
                    Ok(ExecOutcome::Rows(rs))
                }
                QueryBody::Insert(ins) => {
                    let table = ins.table.table.as_str().to_string();
                    self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_insert(db, ins, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    out.map(ExecOutcome::Affected)
                }
                QueryBody::Update(up) => {
                    let table = up.table.table.as_str().to_string();
                    self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_update(db, up, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    out.map(ExecOutcome::Affected)
                }
                QueryBody::Delete(del) => {
                    let table = del.table.table.as_str().to_string();
                    self.write_guard(txn, &dbname, &table)?;
                    let mut undo = Vec::new();
                    let db = self
                        .databases
                        .get_mut(&dbname)
                        .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                    let out = dml::execute_delete(db, del, &mut undo);
                    self.absorb_stmt_undo(txn, undo, &out);
                    out.map(ExecOutcome::Affected)
                }
            },
            Statement::CreateTable(ct) => {
                let table = ct.table.table.as_str().to_string();
                self.write_guard(txn, &dbname, &table)?;
                self.ddl_prologue(txn);
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_create_table(db, ct, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::DropTable(dt) => {
                let table = dt.table.table.as_str().to_string();
                self.write_guard(txn, &dbname, &table)?;
                self.ddl_prologue(txn);
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_drop_table(db, dt, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::CreateIndex(ci) => {
                let table = ci.table.table.as_str().to_string();
                self.write_guard(txn, &dbname, &table)?;
                self.ddl_prologue(txn);
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_create_index(db, ci, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::DropIndex(di) => {
                let table = di.table.table.as_str().to_string();
                self.write_guard(txn, &dbname, &table)?;
                self.ddl_prologue(txn);
                let log_undo = self.profile.ddl_rollbackable;
                let db = self
                    .databases
                    .get_mut(&dbname)
                    .ok_or_else(|| DbError::UnknownDatabase(dbname.clone()))?;
                let mut undo = Vec::new();
                let out = ddl::execute_drop_index(db, di, log_undo.then_some(&mut undo));
                self.absorb_stmt_undo(
                    txn,
                    undo,
                    &out.as_ref().map(|_| 0usize).map_err(Clone::clone),
                );
                out.map(|_| ExecOutcome::Affected(0))
            }
            Statement::CreateDatabase(name) => {
                self.ddl_prologue(txn);
                self.create_database(name)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::DropDatabase(name) => {
                self.ddl_prologue(txn);
                self.drop_database(name)?;
                Ok(ExecOutcome::Affected(0))
            }
            other => Err(DbError::NotLocalSql(format!(
                "statement is handled at the multidatabase level: {other:?}"
            ))),
        }
    }

    /// Injected-failure and lock check before a write statement. The failure
    /// check runs before any mutation, so a failed statement has no effects.
    fn write_guard(&mut self, txn: TxnId, dbname: &str, table: &str) -> Result<(), DbError> {
        if let Some(reason) = self.failure.check_statement(table) {
            return Err(DbError::InjectedFailure(reason));
        }
        let key = (dbname.to_string(), table.to_ascii_lowercase());
        match self.locks.get(&key) {
            Some(holder) if *holder != txn => {
                Err(DbError::LockConflict { table: table.to_string() })
            }
            Some(_) => Ok(()),
            None => {
                self.locks.insert(key.clone(), txn);
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.locks.push(key);
                }
                Ok(())
            }
        }
    }

    /// Models Oracle-style "DDL commits all previously issued uncommitted
    /// statements": the transaction's undo log so far is discarded.
    fn ddl_prologue(&mut self, txn: TxnId) {
        if self.profile.ddl_autocommits_prior {
            if let Some(t) = self.txns.get_mut(&txn) {
                t.flush_undo();
            }
        }
    }

    fn absorb_stmt_undo<T>(
        &mut self,
        txn: TxnId,
        mut undo: Vec<UndoOp>,
        outcome: &Result<T, DbError>,
    ) {
        match outcome {
            Ok(_) => {
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.undo.append(&mut undo);
                }
            }
            Err(_) => {
                // Statement-level atomicity: undo partial effects immediately.
                self.apply_undo(undo);
            }
        }
    }

    /// Votes to commit: Active → Prepared. Only 2PC-capable profiles expose
    /// this; an injected prepare failure aborts the transaction.
    pub fn prepare(&mut self, txn: TxnId) -> Result<(), DbError> {
        if !self.profile.supports_2pc {
            return Err(DbError::TwoPhaseNotSupported(self.service_name.clone()));
        }
        self.require_state(txn, TxnState::Active, "prepare")?;
        if let Some(reason) = self.failure.check_prepare() {
            self.rollback(txn)?;
            return Err(DbError::InjectedFailure(reason));
        }
        self.txns.get_mut(&txn).unwrap().state = TxnState::Prepared;
        self.stats.prepares += 1;
        Ok(())
    }

    /// Commits a transaction (from Active for one-phase, or Prepared for the
    /// second phase of 2PC).
    pub fn commit(&mut self, txn: TxnId) -> Result<(), DbError> {
        let t = self.txns.get_mut(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        match t.state {
            TxnState::Active | TxnState::Prepared => {
                t.state = TxnState::Committed;
                t.undo.clear();
                let locks = std::mem::take(&mut t.locks);
                for key in locks {
                    self.locks.remove(&key);
                }
                self.stats.commits += 1;
                Ok(())
            }
            state => Err(DbError::InvalidTxnState { action: "commit", state: state.name() }),
        }
    }

    /// Rolls a transaction back (from Active or Prepared), restoring all
    /// undone state.
    pub fn rollback(&mut self, txn: TxnId) -> Result<(), DbError> {
        let t = self.txns.get_mut(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        match t.state {
            TxnState::Active | TxnState::Prepared => {
                t.state = TxnState::Aborted;
                let undo = std::mem::take(&mut t.undo);
                let locks = std::mem::take(&mut t.locks);
                self.apply_undo(undo);
                for key in locks {
                    self.locks.remove(&key);
                }
                self.stats.aborts += 1;
                Ok(())
            }
            state => Err(DbError::InvalidTxnState { action: "rollback", state: state.name() }),
        }
    }

    /// The observable state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Result<TxnState, DbError> {
        self.txns.get(&txn).map(|t| t.state).ok_or(DbError::UnknownTransaction(txn))
    }

    /// Transactions still sitting in the prepared state, in id order. After
    /// coordinator recovery this must be empty — a non-empty list means an
    /// in-doubt subtransaction was orphaned (it holds locks forever).
    pub fn prepared_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| t.state == TxnState::Prepared)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    fn require_state(
        &self,
        txn: TxnId,
        expected: TxnState,
        action: &'static str,
    ) -> Result<(), DbError> {
        let t = self.txns.get(&txn).ok_or(DbError::UnknownTransaction(txn))?;
        if t.state != expected {
            return Err(DbError::InvalidTxnState { action, state: t.state.name() });
        }
        Ok(())
    }

    /// Applies undo operations newest-first.
    fn apply_undo(&mut self, undo: Vec<UndoOp>) {
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Insert { database, table, id } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            t.remove(id);
                        }
                    }
                }
                UndoOp::Delete { database, table, id, row } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            t.restore(id, row);
                        }
                    }
                }
                UndoOp::Update { database, table, id, old } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            let _ = t.replace(id, old);
                        }
                    }
                }
                UndoOp::CreateTable { database, table } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        let _ = db.remove_table(&table);
                    }
                }
                UndoOp::DropTable { database, table } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        db.insert_table(*table);
                    }
                }
                UndoOp::CreateIndex { database, table, name } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            let _ = t.drop_index(&name);
                        }
                    }
                }
                UndoOp::DropIndex { database, table, def } => {
                    if let Some(db) = self.databases.get_mut(&database) {
                        if let Ok(t) = db.table_mut(&table) {
                            // Rebuilds the key map from the table contents,
                            // which the surrounding undo replay has already
                            // restored (newest-first order).
                            let _ = t.create_index(def);
                        }
                    }
                }
            }
        }
    }

    /// Commit capability this service advertises for a statement class.
    pub fn capability_for(&self, class: StatementClass) -> msql_lang::CommitCapability {
        self.profile.capability_for(class)
    }
}

/// Parses SQL and checks it is *local*: no USE/LET/COMP attachments.
fn parse_local_sql(sql: &str) -> Result<Statement, DbError> {
    let stmt = parse_statement(sql)?;
    if let Statement::Query(q) = &stmt {
        if q.use_clause.is_some() || !q.lets.is_empty() || !q.comps.is_empty() {
            return Err(DbError::NotLocalSql(
                "USE/LET/COMP clauses must be resolved by the multidatabase layer".into(),
            ));
        }
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn engine_with_cars(profile: DbmsProfile) -> Engine {
        let mut e = Engine::new("svc", profile);
        e.create_database("avis").unwrap();
        e.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT, carst CHAR(10))").unwrap();
        e.execute("avis", "INSERT INTO cars VALUES (1, 40.0, 'available')").unwrap();
        e.execute("avis", "INSERT INTO cars VALUES (2, 60.0, 'rented')").unwrap();
        e
    }

    #[test]
    fn autocommit_select_and_update() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let out = e.execute("avis", "UPDATE cars SET rate = rate * 2 WHERE code = 1").unwrap();
        assert_eq!(out.affected(), 1);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(80.0));
    }

    #[test]
    fn explicit_txn_rollback_restores_state() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0").unwrap();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (3, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "DELETE FROM cars WHERE code = 2").unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT code, rate FROM cars ORDER BY code")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Float(40.0)]);
        assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Float(60.0)]);
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Aborted);
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 99 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Prepared);
        e.commit(txn).unwrap();
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Committed);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(99.0));
    }

    #[test]
    fn prepared_transaction_can_still_roll_back() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 99 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn autocommit_only_profile_rejects_prepare() {
        let mut e = engine_with_cars(DbmsProfile::autocommit_only());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        assert!(matches!(e.prepare(txn), Err(DbError::TwoPhaseNotSupported(_))));
    }

    #[test]
    fn terminal_states_reject_further_transitions() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.commit(txn).unwrap();
        assert!(matches!(e.rollback(txn), Err(DbError::InvalidTxnState { .. })));
        assert!(matches!(e.commit(txn), Err(DbError::InvalidTxnState { .. })));
        assert!(matches!(e.prepare(txn), Err(DbError::InvalidTxnState { .. })));
    }

    #[test]
    fn lock_conflict_between_transactions() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let t1 = e.begin();
        let t2 = e.begin();
        e.execute_in(t1, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        let err = e.execute_in(t2, "avis", "UPDATE cars SET rate = 2 WHERE code = 2");
        assert!(matches!(err, Err(DbError::LockConflict { .. })));
        // After t1 terminates, t2 can proceed.
        e.rollback(t1).unwrap();
        e.execute_in(t2, "avis", "UPDATE cars SET rate = 2 WHERE code = 2").unwrap();
        e.commit(t2).unwrap();
    }

    #[test]
    fn injected_failure_aborts_statement_without_effects() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.failure_policy_mut().fail_writes_to("cars");
        let err = e.execute("avis", "UPDATE cars SET rate = 0");
        assert!(matches!(err, Err(DbError::InjectedFailure(_))));
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn injected_prepare_failure_auto_rolls_back() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.set_failure_policy(FailurePolicy::with_probabilities(1, 0.0, 1.0));
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0 WHERE code = 1").unwrap();
        assert!(matches!(e.prepare(txn), Err(DbError::InjectedFailure(_))));
        assert_eq!(e.txn_state(txn).unwrap(), TxnState::Aborted);
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(40.0));
    }

    #[test]
    fn ingres_like_rolls_back_ddl() {
        let mut e = engine_with_cars(DbmsProfile::ingres_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE TABLE extras (x INT)").unwrap();
        e.execute_in(txn, "avis", "INSERT INTO extras VALUES (1)").unwrap();
        e.rollback(txn).unwrap();
        assert!(e.execute("avis", "SELECT x FROM extras").is_err());
    }

    #[test]
    fn oracle_like_ddl_autocommits_prior_work() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 0 WHERE code = 1").unwrap();
        // DDL flushes the undo log: the update becomes permanent.
        e.execute_in(txn, "avis", "CREATE TABLE extras (x INT)").unwrap();
        e.rollback(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(0.0));
        // And the created table also survives the rollback.
        assert!(e.execute("avis", "SELECT x FROM extras").is_ok());
    }

    #[test]
    fn noconnect_service_hosts_single_database() {
        let mut e = Engine::new("small", DbmsProfile::autocommit_only());
        e.create_database("main").unwrap();
        assert!(e.create_database("second").is_err());
    }

    #[test]
    fn failed_statement_in_txn_keeps_prior_work() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 5 WHERE code = 1").unwrap();
        // This statement fails (unknown column) but must not poison the txn.
        assert!(e.execute_in(txn, "avis", "UPDATE cars SET nope = 1").is_err());
        e.commit(txn).unwrap();
        let rs = e
            .execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(5.0));
    }

    #[test]
    fn stats_count_outcomes() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let base = e.stats();
        let txn = e.begin();
        e.execute_in(txn, "avis", "UPDATE cars SET rate = 1 WHERE code = 1").unwrap();
        e.prepare(txn).unwrap();
        e.commit(txn).unwrap();
        let s = e.stats();
        assert_eq!(s.prepares, base.prepares + 1);
        assert_eq!(s.commits, base.commits + 1);
    }

    #[test]
    fn ingres_like_rolls_back_index_ddl() {
        let mut e = engine_with_cars(DbmsProfile::ingres_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        e.rollback(txn).unwrap();
        assert!(e
            .database("avis")
            .unwrap()
            .table("cars")
            .unwrap()
            .index_by_name("cars_code")
            .is_none());

        // DROP INDEX rolls back too: the index is rebuilt with its contents.
        e.execute("avis", "CREATE INDEX cars_code ON cars (code) USING HASH").unwrap();
        let txn = e.begin();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (7, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "DROP INDEX cars_code ON cars").unwrap();
        e.rollback(txn).unwrap();
        let idx = e.database("avis").unwrap().table("cars").unwrap().index_by_name("cars_code");
        let idx = idx.expect("rollback restores the dropped index");
        // The rolled-back insert is not in the rebuilt index.
        assert!(idx.probe_eq(&[Value::Int(7)]).is_empty());
        assert_eq!(idx.probe_eq(&[Value::Int(1)]).len(), 1);
    }

    #[test]
    fn oracle_like_index_ddl_autocommits() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        let txn = e.begin();
        e.execute_in(txn, "avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        e.rollback(txn).unwrap();
        // DDL does not roll back on an Oracle-like profile.
        assert!(e
            .database("avis")
            .unwrap()
            .table("cars")
            .unwrap()
            .index_by_name("cars_code")
            .is_some());
    }

    #[test]
    fn aborted_dml_leaves_indexes_consistent() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        e.execute("avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        let txn = e.begin();
        e.execute_in(txn, "avis", "INSERT INTO cars VALUES (3, 10.0, 'available')").unwrap();
        e.execute_in(txn, "avis", "UPDATE cars SET code = 9 WHERE code = 1").unwrap();
        e.execute_in(txn, "avis", "DELETE FROM cars WHERE code = 2").unwrap();
        e.rollback(txn).unwrap();
        let idx =
            e.database("avis").unwrap().table("cars").unwrap().index_by_name("cars_code").unwrap();
        assert!(idx.probe_eq(&[Value::Int(3)]).is_empty());
        assert!(idx.probe_eq(&[Value::Int(9)]).is_empty());
        assert_eq!(idx.probe_eq(&[Value::Int(1)]).len(), 1);
        assert_eq!(idx.probe_eq(&[Value::Int(2)]).len(), 1);
    }

    #[test]
    fn select_stats_and_access_label() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        assert_eq!(e.last_access(), None);
        e.execute("avis", "SELECT code FROM cars WHERE code = 1").unwrap();
        assert_eq!(e.last_access(), Some("scan"));
        let scanned_before = e.stats().rows_scanned;
        assert!(scanned_before >= 2, "full scan reads both rows");
        e.execute("avis", "CREATE INDEX cars_code ON cars (code)").unwrap();
        assert_eq!(e.last_access(), None, "DDL is not an access path");
        e.execute("avis", "SELECT code FROM cars WHERE code = 1").unwrap();
        assert_eq!(e.last_access(), Some("probe"));
        let s = e.stats();
        assert_eq!(s.index_hits, 1);
        assert_eq!(s.rows_scanned, scanned_before + 1, "probe materializes one candidate");
    }

    #[test]
    fn msql_constructs_rejected_as_local_sql() {
        let mut e = engine_with_cars(DbmsProfile::oracle_like());
        assert!(matches!(
            e.execute("avis", "USE avis SELECT code FROM cars"),
            Err(DbError::NotLocalSql(_))
        ));
        assert!(matches!(
            e.execute("avis", "SELECT %code FROM cars"),
            Err(DbError::NotLocalSql(_)) | Err(DbError::UnknownColumn(_))
        ));
    }

    use crate::failure::FailurePolicy;
}
