//! Error type for the local database engine.

use std::fmt;

/// Errors raised by the local engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Unknown database name.
    UnknownDatabase(String),
    /// Unknown table name.
    UnknownTable(String),
    /// Unknown column name.
    UnknownColumn(String),
    /// A column reference matched more than one binding.
    AmbiguousColumn(String),
    /// Type error during evaluation or insertion.
    TypeError(String),
    /// An object with that name already exists.
    AlreadyExists(String),
    /// Transaction handle is unknown or already terminated.
    UnknownTransaction(u64),
    /// Illegal transaction state transition (e.g. committing an aborted
    /// transaction).
    InvalidTxnState {
        /// What was attempted.
        action: &'static str,
        /// The state the transaction was in.
        state: &'static str,
    },
    /// The local system does not expose a prepared-to-commit state
    /// (autocommit-only LDBMS).
    TwoPhaseNotSupported(String),
    /// A write lock was held by another transaction (simulated local
    /// conflict).
    LockConflict {
        /// The contended table.
        table: String,
    },
    /// A write lock is held by another transaction and the requester has
    /// been enqueued behind it. The failed statement had no effects; the
    /// caller may wait on the engine's lock signal and retry it verbatim.
    LockWait {
        /// The contended table.
        table: String,
    },
    /// The transaction was chosen as a deadlock (or lock-wait-timeout)
    /// victim and has been rolled back, releasing its locks. Retriable:
    /// re-running the whole transaction from the top is safe.
    Deadlock {
        /// The table whose lock completed the cycle.
        table: String,
    },
    /// An injected local failure (crash, deadlock victim, media error).
    InjectedFailure(String),
    /// A scalar subquery produced more than one row.
    SubqueryCardinality,
    /// SQL that reached the engine still contained MSQL constructs (wildcards
    /// or multidatabase scope) — the translator must resolve those first.
    NotLocalSql(String),
    /// A parse error from the SQL front end.
    Parse(String),
    /// NOT NULL constraint violation.
    NullViolation(String),
    /// An index with that name already exists on the table.
    DuplicateIndex(String),
    /// Unknown index name.
    UnknownIndex(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownDatabase(n) => write!(f, "unknown database `{n}`"),
            DbError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            DbError::UnknownColumn(n) => write!(f, "unknown column `{n}`"),
            DbError::AmbiguousColumn(n) => write!(f, "ambiguous column `{n}`"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
            DbError::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            DbError::UnknownTransaction(id) => write!(f, "unknown transaction {id}"),
            DbError::InvalidTxnState { action, state } => {
                write!(f, "cannot {action} a transaction in state {state}")
            }
            DbError::TwoPhaseNotSupported(svc) => {
                write!(f, "service `{svc}` does not support two-phase commit")
            }
            DbError::LockConflict { table } => {
                write!(f, "write lock conflict on table `{table}`")
            }
            DbError::LockWait { table } => {
                write!(f, "waiting for write lock on table `{table}`")
            }
            DbError::Deadlock { table } => {
                write!(
                    f,
                    "deadlock victim: transaction rolled back (conflict on table `{table}`); \
                     safe to retry"
                )
            }
            DbError::InjectedFailure(m) => write!(f, "injected local failure: {m}"),
            DbError::SubqueryCardinality => {
                write!(f, "scalar subquery returned more than one row")
            }
            DbError::NotLocalSql(m) => write!(f, "statement is not local SQL: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NullViolation(c) => write!(f, "column `{c}` is NOT NULL"),
            DbError::DuplicateIndex(n) => write!(f, "index `{n}` already exists"),
            DbError::UnknownIndex(n) => write!(f, "unknown index `{n}`"),
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<msql_lang::ParseError> for DbError {
    fn from(e: msql_lang::ParseError) -> Self {
        DbError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::UnknownTable("cars".into()).to_string().contains("cars"));
        assert!(DbError::LockConflict { table: "flights".into() }.to_string().contains("flights"));
        let e = DbError::InvalidTxnState { action: "commit", state: "Aborted" };
        assert!(e.to_string().contains("commit"));
        assert!(e.to_string().contains("Aborted"));
    }
}
